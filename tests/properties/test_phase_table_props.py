"""Property-based tests for phase classification."""

from hypothesis import given, strategies as st

from repro.core.phases import PhaseTable

TABLE = PhaseTable()

mem_values = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

# Edges built from strictly positive increments, so consecutive bins
# always have a representable interior (degenerate 1-ulp-wide bins have
# no midpoint and are not meaningful phase definitions).
edge_lists = st.lists(
    st.floats(min_value=1e-4, max_value=0.1, allow_nan=False),
    min_size=1,
    max_size=8,
).map(lambda increments: [sum(increments[: i + 1]) for i in range(len(increments))])


@given(mem_values)
def test_classification_is_total_and_in_range(value):
    phase = TABLE.classify(value)
    assert 1 <= phase <= TABLE.num_phases


@given(mem_values, mem_values)
def test_classification_is_monotone(a, b):
    low, high = min(a, b), max(a, b)
    assert TABLE.classify(low) <= TABLE.classify(high)


@given(mem_values)
def test_classified_phase_contains_the_value(value):
    phase = TABLE.classify(value)
    assert TABLE.definition(phase).contains(value)


@given(mem_values)
def test_exactly_one_definition_contains_each_value(value):
    containing = [
        d for d in TABLE.definitions if d.contains(value)
    ]
    assert len(containing) == 1


@given(edge_lists)
def test_custom_tables_have_consistent_structure(edges):
    table = PhaseTable(edges)
    assert table.num_phases == len(edges) + 1
    for phase_id in table.phase_ids:
        representative = table.representative_value(phase_id)
        assert table.classify(representative) == phase_id


@given(edge_lists, mem_values)
def test_custom_tables_classify_totally(edges, value):
    table = PhaseTable(edges)
    assert 1 <= table.classify(value) <= table.num_phases


@given(st.floats(min_value=0.0, max_value=0.0049))
def test_phase1_below_first_edge(value):
    assert TABLE.classify(value) == 1


@given(st.floats(min_value=0.03, max_value=10.0))
def test_phase6_at_and_above_last_edge(value):
    assert TABLE.classify(value) == 6
