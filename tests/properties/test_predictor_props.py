"""Property-based tests shared by every phase predictor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
    VariableWindowPredictor,
)

TABLE = PhaseTable()

PREDICTOR_FACTORIES = [
    LastValuePredictor,
    lambda: FixedWindowPredictor(8),
    lambda: FixedWindowPredictor(8, selector="mean"),
    lambda: VariableWindowPredictor(16, 0.005),
    lambda: GPHTPredictor(4, 32),
]

phase_sequences = st.lists(
    st.integers(min_value=1, max_value=6), min_size=2, max_size=60
)


def observations(phases):
    return [
        PhaseObservation(
            phase=p, mem_per_uop=TABLE.representative_value(p)
        )
        for p in phases
    ]


@pytest.mark.parametrize("factory", PREDICTOR_FACTORIES)
@given(phases=phase_sequences)
@settings(max_examples=40, deadline=None)
def test_predictions_always_valid_phases(factory, phases):
    predictor = factory()
    for observation in observations(phases):
        predictor.observe(observation)
        assert 1 <= predictor.predict() <= 6


@pytest.mark.parametrize("factory", PREDICTOR_FACTORIES)
@given(phases=phase_sequences)
@settings(max_examples=40, deadline=None)
def test_reset_restores_cold_behaviour(factory, phases):
    predictor = factory()
    for observation in observations(phases):
        predictor.observe(observation)
    predictor.reset()
    assert predictor.predict() == predictor.DEFAULT_PHASE


@pytest.mark.parametrize("factory", PREDICTOR_FACTORIES)
@given(phase=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_constant_behaviour_is_predicted_perfectly(factory, phase):
    """Every sensible predictor nails a constant phase sequence."""
    series = [TABLE.representative_value(phase)] * 30
    result = evaluate_predictor(factory(), series)
    assert result.accuracy == 1.0


@pytest.mark.parametrize("factory", PREDICTOR_FACTORIES)
@given(phases=phase_sequences)
@settings(max_examples=40, deadline=None)
def test_evaluation_is_deterministic(factory, phases):
    series = [TABLE.representative_value(p) for p in phases]
    first = evaluate_predictor(factory(), series)
    second = evaluate_predictor(factory(), series)
    assert first.predictions == second.predictions


@given(phases=st.lists(st.integers(min_value=1, max_value=6),
                       min_size=10, max_size=80))
@settings(max_examples=60, deadline=None)
def test_gpht_observe_predict_never_corrupts_structure(phases):
    predictor = GPHTPredictor(gphr_depth=3, pht_entries=4)
    for observation in observations(phases):
        predictor.observe(observation)
        predictor.predict()
        assert predictor.pht_occupancy <= 4
        assert len(predictor.gphr) == 3
