"""Property-based tests for the timing and power models."""

from hypothesis import given, settings, strategies as st

from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.power.model import PowerModel
from repro.workloads.segments import SegmentSpec

TABLE = SpeedStepTable()
TIMING = TimingModel()
POWER = PowerModel()

segments = st.builds(
    SegmentSpec,
    uops=st.integers(min_value=1, max_value=10**9),
    mem_per_uop=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    upc_core=st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
    uops_per_instruction=st.floats(
        min_value=1.0, max_value=2.0, allow_nan=False
    ),
    mem_overlap=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)

points = st.sampled_from(list(TABLE))


@given(segments, points)
@settings(max_examples=100, deadline=None)
def test_execution_quantities_positive_and_consistent(segment, point):
    execution = TIMING.execute(segment, point)
    assert execution.cycles > 0
    assert execution.seconds > 0
    assert 0 < execution.duty <= 1.0
    assert execution.upc > 0
    assert execution.cycles * execution.upc == segment.uops or abs(
        execution.cycles * execution.upc - segment.uops
    ) / segment.uops < 1e-9


@given(segments)
@settings(max_examples=100, deadline=None)
def test_time_monotone_in_frequency(segment):
    """Slower clocks never finish the same work sooner."""
    seconds = [TIMING.seconds(segment, p) for p in TABLE]
    # TABLE is fastest-first.
    assert all(b >= a for a, b in zip(seconds, seconds[1:]))


@given(segments)
@settings(max_examples=100, deadline=None)
def test_slowdown_bounded_by_frequency_ratio(segment):
    """Slowdown at any point lies in [1, f_max / f]."""
    for point in TABLE:
        slowdown = TIMING.slowdown(segment, point, TABLE.fastest)
        ratio = TABLE.fastest.frequency_mhz / point.frequency_mhz
        assert 1.0 - 1e-9 <= slowdown <= ratio + 1e-9


@given(segments)
@settings(max_examples=100, deadline=None)
def test_upc_never_decreases_as_frequency_drops(segment):
    upcs = [TIMING.upc(segment, p) for p in TABLE]
    assert all(b >= a - 1e-12 for a, b in zip(upcs, upcs[1:]))


@given(segments)
@settings(max_examples=100, deadline=None)
def test_observed_upc_never_exceeds_core_upc(segment):
    for point in TABLE:
        assert TIMING.upc(segment, point) <= segment.upc_core + 1e-9


@given(segments, points)
@settings(max_examples=100, deadline=None)
def test_power_positive_and_bounded_by_peak(segment, point):
    execution = TIMING.execute(segment, point)
    power = POWER.power(point, execution.duty)
    assert 0 < power <= POWER.max_power(point) + 1e-12


@given(points, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_energy_rate_monotone_in_duty(point, duty):
    assert POWER.power(point, duty) >= POWER.power(point, 0.0)


@given(
    segments,
    st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_split_conserves_work(segment, cut):
    if not 0 < cut < segment.uops:
        return
    head, tail = segment.split(cut)
    assert head.uops + tail.uops == segment.uops
    for point in (TABLE.fastest, TABLE.slowest):
        whole = TIMING.cycles(segment, point)
        parts = TIMING.cycles(head, point) + TIMING.cycles(tail, point)
        assert abs(whole - parts) / whole < 1e-9
