"""Property-based tests for the full machine's accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.workloads.segments import SegmentSpec, WorkloadTrace

GRANULARITY = 1_000_000

segments = st.builds(
    SegmentSpec,
    uops=st.sampled_from(
        [250_000, 500_000, 1_000_000, 1_500_000, 4_000_000]
    ),
    mem_per_uop=st.floats(min_value=0.0, max_value=0.12, allow_nan=False),
    upc_core=st.floats(min_value=0.2, max_value=2.0, allow_nan=False),
    uops_per_instruction=st.floats(
        min_value=1.0, max_value=1.5, allow_nan=False
    ),
)

traces = st.lists(segments, min_size=1, max_size=12).map(
    lambda segs: WorkloadTrace("prop", segs)
)

governor_factories = st.sampled_from(
    [
        lambda m: StaticGovernor(m.speedstep.fastest),
        lambda m: ReactiveGovernor(),
        lambda m: PhasePredictionGovernor(GPHTPredictor(4, 32)),
    ]
)


@given(trace=traces, make_governor=governor_factories)
@settings(max_examples=60, deadline=None)
def test_work_and_time_conservation(trace, make_governor):
    """Uops, instructions and interval counts always reconcile."""
    machine = Machine(granularity_uops=GRANULARITY)
    result = machine.run(trace, make_governor(machine))

    assert result.total_uops == trace.total_uops
    assert abs(result.total_instructions - trace.total_instructions) < 1e-6

    # One interval per completed granularity quantum.
    assert len(result.intervals) == trace.total_uops // GRANULARITY

    # Every completed interval retired exactly the granularity.
    for interval in result.intervals:
        assert interval.record.uops == GRANULARITY


@given(trace=traces, make_governor=governor_factories)
@settings(max_examples=60, deadline=None)
def test_energy_accounting_reconciles(trace, make_governor):
    """Total energy equals interval energy plus handler energy, and the
    average power stays within the power model's physical envelope."""
    machine = Machine(granularity_uops=GRANULARITY)
    result = machine.run(trace, make_governor(machine))

    interval_energy = sum(m.energy_j for m in result.intervals)
    assert interval_energy <= result.total_energy_j + 1e-12

    peak = machine.power_model.max_power(machine.speedstep.fastest)
    floor = machine.power_model.power(machine.speedstep.slowest, 0.0)
    if result.total_seconds > 0:
        assert floor - 1e-9 <= result.average_power_w <= peak + 1e-9


@given(trace=traces)
@settings(max_examples=40, deadline=None)
def test_baseline_dominates_managed_performance(trace):
    """No governor can finish faster than the pinned-fastest baseline
    (frequencies only go down from there)."""
    machine = Machine(granularity_uops=GRANULARITY)
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    managed = machine.run(
        trace, PhasePredictionGovernor(GPHTPredictor(4, 32))
    )
    assert managed.total_seconds >= baseline.total_seconds - 1e-12
    # And it never consumes more energy than the baseline's ceiling
    # would allow for its own (longer) runtime at peak power.
    peak = machine.power_model.max_power(machine.speedstep.fastest)
    assert managed.total_energy_j <= peak * managed.total_seconds + 1e-9


@given(trace=traces)
@settings(max_examples=40, deadline=None)
def test_runs_are_deterministic(trace):
    machine = Machine(granularity_uops=GRANULARITY)
    first = machine.run(trace, ReactiveGovernor())
    second = machine.run(trace, ReactiveGovernor())
    assert first.total_seconds == second.total_seconds
    assert first.total_energy_j == second.total_energy_j
    assert first.frequency_series() == second.frequency_series()
