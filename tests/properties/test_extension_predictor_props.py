"""Property-based tests for the extension predictors."""

from hypothesis import given, settings, strategies as st

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import (
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
    PhaseObservation,
)
from repro.core.predictors.confidence import ConfidenceGPHTPredictor
from repro.core.predictors.duration import DurationPredictor

TABLE = PhaseTable()

phase_sequences = st.lists(
    st.integers(min_value=1, max_value=6), min_size=2, max_size=80
)

EXTENSION_FACTORIES = [
    MarkovPredictor,
    DurationPredictor,
    lambda: ConfidenceGPHTPredictor(4, 32),
]


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


@given(phases=phase_sequences)
@settings(max_examples=50, deadline=None)
def test_extension_predictions_always_valid(phases):
    for factory in EXTENSION_FACTORIES:
        predictor = factory()
        for phase in phases:
            predictor.observe(
                PhaseObservation(
                    phase=phase,
                    mem_per_uop=TABLE.representative_value(phase),
                )
            )
            assert 1 <= predictor.predict() <= 6


@given(phases=phase_sequences)
@settings(max_examples=50, deadline=None)
def test_oracle_is_a_ceiling_for_every_predictor(phases):
    """No causal predictor beats the oracle on any sequence."""
    series = series_for(phases)
    oracle = evaluate_predictor(OraclePredictor(phases), series)
    assert oracle.accuracy == 1.0
    for factory in EXTENSION_FACTORIES + [LastValuePredictor]:
        result = evaluate_predictor(factory(), series)
        assert result.accuracy <= oracle.accuracy


@given(phases=phase_sequences)
@settings(max_examples=50, deadline=None)
def test_extension_predictors_reset_cleanly(phases):
    for factory in EXTENSION_FACTORIES:
        predictor = factory()
        for phase in phases:
            predictor.observe(
                PhaseObservation(
                    phase=phase,
                    mem_per_uop=TABLE.representative_value(phase),
                )
            )
        predictor.reset()
        assert predictor.predict() == predictor.DEFAULT_PHASE


@given(
    phase=st.integers(min_value=1, max_value=6),
    length=st.integers(min_value=10, max_value=60),
)
@settings(max_examples=30, deadline=None)
def test_extensions_perfect_on_constant_sequences(phase, length):
    series = [TABLE.representative_value(phase)] * length
    for factory in EXTENSION_FACTORIES:
        result = evaluate_predictor(factory(), series)
        assert result.accuracy == 1.0


@given(
    motif=st.lists(st.integers(min_value=1, max_value=6),
                   min_size=2, max_size=4),
    repeats=st.integers(min_value=15, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_confidence_gpht_learns_periodic_sequences(motif, repeats):
    phases = motif * repeats
    predictor = ConfidenceGPHTPredictor(8, 128, max_confidence=3)
    result = evaluate_predictor(predictor, series_for(phases))
    train = len(motif) * 8
    tail = [
        (p, a)
        for i, (p, a) in enumerate(zip(result.predictions, result.actuals))
        if i >= train
    ]
    assert tail
    hits = sum(1 for p, a in tail if p == a)
    assert hits / len(tail) == 1.0
