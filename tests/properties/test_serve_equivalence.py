"""Property: the online service is bit-for-bit the offline evaluator.

A :class:`PhaseSession` fed a generated ``Mem/Uop`` workload must emit
exactly the prediction sequence :func:`evaluate_predictor` produces for
the same predictor configuration — for every supported governor, and
even when the session is snapshotted, JSON-round-tripped and restored
mid-stream.  This is the serving layer's foundational guarantee: the
deployed service *is* the evaluated predictor, not an approximation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.serve import PhaseSession, SessionConfig, checkpoint_from_json, checkpoint_to_json

TABLE = PhaseTable()

CONFIGS = [
    SessionConfig(governor="gpht", gphr_depth=4, pht_entries=16),
    SessionConfig(governor="gpht", gphr_depth=2, pht_entries=4),
    SessionConfig(governor="reactive"),
    SessionConfig(governor="fixed_window", window_size=4),
]

# Mem/Uop values spanning all six paper phases, plus exact boundary
# values, drawn per interval.
mem_values = st.one_of(
    st.floats(min_value=0.0, max_value=0.06, allow_nan=False),
    st.sampled_from([edge for edge in TABLE.edges]),
)
mem_series = st.lists(mem_values, min_size=2, max_size=80)


def run_session(config, series, snapshot_at=None):
    """Feed a session; optionally checkpoint/restore at ``snapshot_at``."""
    session = PhaseSession(config)
    predictions, actuals, pending = [], [], None
    for index, value in enumerate(series):
        outcome = session.feed(index, value)
        if pending is not None:
            predictions.append(pending)
            actuals.append(outcome.actual_phase)
        pending = outcome.predicted_phase
        if snapshot_at is not None and index + 1 == snapshot_at:
            checkpoint = checkpoint_from_json(
                checkpoint_to_json(session.snapshot())
            )
            session = PhaseSession.from_snapshot(checkpoint)
    return tuple(predictions), tuple(actuals), session


@pytest.mark.parametrize("config", CONFIGS)
@given(series=mem_series)
@settings(max_examples=40, deadline=None)
def test_session_equals_offline_evaluator(config, series):
    predictions, actuals, session = run_session(config, series)
    offline = evaluate_predictor(config.build_predictor(), series, TABLE)
    assert predictions == offline.predictions
    assert actuals == offline.actuals
    assert session.correct == offline.correct
    assert session.accuracy == offline.accuracy


@pytest.mark.parametrize("config", CONFIGS)
@given(
    series=st.lists(mem_values, min_size=3, max_size=80),
    cut=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=40, deadline=None)
def test_snapshot_restore_mid_stream_changes_nothing(config, series, cut):
    snapshot_at = max(1, min(len(series) - 1, int(len(series) * cut)))
    straight, _, _ = run_session(config, series)
    resumed, _, _ = run_session(config, series, snapshot_at=snapshot_at)
    assert resumed == straight
    offline = evaluate_predictor(config.build_predictor(), series, TABLE)
    assert resumed == offline.predictions


@pytest.mark.parametrize("config", CONFIGS)
@given(series=mem_series)
@settings(max_examples=25, deadline=None)
def test_snapshot_is_stable_under_round_trip(config, series):
    _, _, session = run_session(config, series)
    snapshot = session.snapshot()
    assert checkpoint_from_json(checkpoint_to_json(snapshot)) == snapshot
    restored = PhaseSession.from_snapshot(snapshot)
    assert restored.snapshot() == snapshot
