"""Property-based tests specific to the GPHT predictor."""

from hypothesis import given, settings, strategies as st

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, LastValuePredictor

TABLE = PhaseTable()


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


motifs = st.lists(
    st.integers(min_value=1, max_value=6), min_size=2, max_size=6
)


@given(motif=motifs, repeats=st.integers(min_value=12, max_value=30))
@settings(max_examples=50, deadline=None)
def test_periodic_sequences_eventually_predicted_perfectly(motif, repeats):
    """Any deterministic periodic phase sequence is learned: after a
    training prefix, the GPHT predicts it without error."""
    phases = motif * repeats
    predictor = GPHTPredictor(gphr_depth=8, pht_entries=128)
    result = evaluate_predictor(predictor, series_for(phases))
    train = len(motif) * 6
    tail_pairs = [
        (p, a)
        for i, (p, a) in enumerate(zip(result.predictions, result.actuals))
        if i >= train
    ]
    assert tail_pairs
    assert all(p == a for p, a in tail_pairs)


@given(motif=motifs, repeats=st.integers(min_value=10, max_value=25))
@settings(max_examples=50, deadline=None)
def test_gpht_at_least_matches_last_value_on_periodic_input(motif, repeats):
    phases = motif * repeats
    gpht = evaluate_predictor(
        GPHTPredictor(8, 128), series_for(phases)
    )
    last = evaluate_predictor(LastValuePredictor(), series_for(phases))
    # A small allowance covers the training prefix.
    assert gpht.accuracy >= last.accuracy - 0.1


@given(
    phases=st.lists(
        st.integers(min_value=1, max_value=6), min_size=5, max_size=120
    ),
    depth=st.integers(min_value=1, max_value=10),
    entries=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_structural_invariants_hold_for_any_geometry(phases, depth, entries):
    predictor = GPHTPredictor(gphr_depth=depth, pht_entries=entries)
    result = evaluate_predictor(predictor, series_for(phases))
    assert predictor.pht_occupancy <= entries
    assert predictor.hits + predictor.misses == len(phases)
    assert len(result.predictions) == len(phases) - 1


@given(
    phases=st.lists(
        st.integers(min_value=1, max_value=6), min_size=2, max_size=60
    )
)
@settings(max_examples=40, deadline=None)
def test_gphr_holds_most_recent_suffix(phases):
    predictor = GPHTPredictor(gphr_depth=4, pht_entries=16)
    for value in series_for(phases):
        phase = TABLE.classify(value)
        from repro.core.predictors import PhaseObservation

        predictor.observe(PhaseObservation(phase=phase, mem_per_uop=value))
    expected = tuple(reversed(phases[-4:]))
    assert predictor.gphr[: len(expected)] == expected
