"""Property-based tests for the DAQ sampling and sensing path."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.power.daq import DataAcquisitionSystem, LoggingMachine
from repro.power.sensors import PowerDeliverySensors

powers = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
voltages = st.floats(min_value=0.5, max_value=2.0, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=0.01, allow_nan=False)


@given(power=powers, v_cpu=voltages)
@settings(max_examples=200, deadline=None)
def test_sense_round_trip(power, v_cpu):
    reading = PowerDeliverySensors().sense(power, v_cpu)
    assert abs(reading.power_watts() - power) <= max(1e-9, power * 1e-9)


@given(
    slices=st.lists(
        st.tuples(durations, powers, voltages), min_size=1, max_size=20
    )
)
@settings(max_examples=100, deadline=None)
def test_sample_count_matches_total_duration(slices):
    daq = DataAcquisitionSystem(sample_period_s=40e-6)
    time = 0.0
    for duration, power, v_cpu in slices:
        daq.observe_slice(time, duration, power, v_cpu, 0b100)
        time += duration
    expected = int(np.ceil(time / 40e-6)) if time > 0 else 0
    assert abs(daq.sample_count - expected) <= len(slices) + 1


@given(
    slices=st.lists(
        st.tuples(durations, powers, voltages), min_size=1, max_size=10
    )
)
@settings(max_examples=100, deadline=None)
def test_sample_times_strictly_increase_on_grid(slices):
    daq = DataAcquisitionSystem(sample_period_s=40e-6)
    time = 0.0
    for duration, power, v_cpu in slices:
        daq.observe_slice(time, duration, power, v_cpu, 0b100)
        time += duration
    times, *_ = daq.raw_arrays()
    if times.size > 1:
        deltas = np.diff(times)
        assert np.all(deltas > 0)
        # Every delta is an integer multiple of the sampling period.
        multiples = deltas / 40e-6
        assert np.allclose(multiples, np.round(multiples), atol=1e-6)


@given(power=powers, v_cpu=voltages)
@settings(max_examples=100, deadline=None)
def test_recovered_power_series_matches_input(power, v_cpu):
    daq = DataAcquisitionSystem()
    daq.observe_slice(0.0, 0.001, power, v_cpu, 0b100)
    recovered = LoggingMachine().recover_power(daq)
    assert np.allclose(recovered, power, atol=1e-9)
