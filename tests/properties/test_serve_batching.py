"""Property: batching is invisible — any partition feeds identically.

Protocol v2's ``sample_batch`` promises that splitting a sample stream
into batches of *any* sizes yields bit-for-bit the outcomes of feeding
the same stream one ``sample`` at a time: identical outcome sequence,
identical hit/miss ledger, identical checkpoint afterwards.  Combined
with the online == offline property (``test_serve_equivalence``), this
closes the chain: batched wire traffic *is* the offline evaluator.

The degradation case is covered with a scripted clock: when a latency
budget is set, the state machine runs per sample inside a batch, so
mid-batch degradation entry/exit also matches single-sample feeding.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phases import PhaseTable
from repro.serve import PhaseSession, SessionConfig

TABLE = PhaseTable()

CONFIGS = [
    SessionConfig(governor="gpht", gphr_depth=4, pht_entries=16),
    SessionConfig(governor="reactive"),
    SessionConfig(governor="fixed_window", window_size=4),
]

mem_values = st.one_of(
    st.floats(min_value=0.0, max_value=0.06, allow_nan=False),
    st.sampled_from([edge for edge in TABLE.edges]),
)
mem_series = st.lists(mem_values, min_size=1, max_size=60)

# A partition of n items into contiguous batches: draw cut points.
cut_fractions = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=10
)


def partition(series, fractions):
    """Split ``series`` at the (deduplicated) fractional cut points."""
    cuts = sorted({int(len(series) * f) for f in fractions})
    cuts = [c for c in cuts if 0 < c < len(series)]
    batches, start = [], 0
    for cut in cuts + [len(series)]:
        batches.append(series[start:cut])
        start = cut
    return [batch for batch in batches if batch]


def feed_singly(config, series, clock=None):
    session = PhaseSession(config, clock=clock)
    outcomes = [session.feed(i, value) for i, value in enumerate(series)]
    return outcomes, session


def feed_batched(config, series, fractions, clock=None):
    session = PhaseSession(config, clock=clock)
    outcomes, start = [], 0
    for batch in partition(series, fractions):
        outcomes.extend(
            session.feed_batch(start, [(value, 0.0) for value in batch])
        )
        start += len(batch)
    return outcomes, session


@pytest.mark.parametrize("config", CONFIGS)
@given(series=mem_series, fractions=cut_fractions)
@settings(max_examples=40, deadline=None)
def test_any_partition_feeds_identically(config, series, fractions):
    single_outcomes, single_session = feed_singly(config, series)
    batch_outcomes, batch_session = feed_batched(config, series, fractions)
    assert batch_outcomes == single_outcomes
    assert [o.hit for o in batch_outcomes] == [o.hit for o in single_outcomes]
    assert batch_session.scored == single_session.scored
    assert batch_session.correct == single_session.correct
    assert batch_session.snapshot() == single_session.snapshot()


class ScriptedClock:
    """Returns queued tick values, then repeats the last one."""

    def __init__(self, values):
        self._values = list(values)

    def __call__(self):
        if len(self._values) > 1:
            return self._values.pop(0)
        return self._values[0]


@given(
    series=st.lists(mem_values, min_size=2, max_size=40),
    fractions=cut_fractions,
    latencies=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_partition_invariant_under_degradation(series, fractions, latencies):
    # Per-sample latencies straddling the budget, so degradation can
    # enter and exit anywhere — including mid-batch.
    budget = 1.0
    per_sample = [
        latencies.draw(st.sampled_from([0.1, 5.0]), label=f"latency{i}")
        for i in range(len(series))
    ]
    ticks = []
    t = 0.0
    for latency in per_sample:
        ticks.extend([t, t + latency])
        t += latency + 1.0
    config = SessionConfig(
        governor="gpht", latency_budget_s=budget, cooldown=2
    )
    single_outcomes, single_session = feed_singly(
        config, series, clock=ScriptedClock(list(ticks))
    )
    batch_outcomes, batch_session = feed_batched(
        config, series, fractions, clock=ScriptedClock(list(ticks))
    )
    assert batch_outcomes == single_outcomes
    assert [o.degraded for o in batch_outcomes] == [
        o.degraded for o in single_outcomes
    ]
    assert batch_session.degraded == single_session.degraded
    assert batch_session.degraded_events == single_session.degraded_events
    assert batch_session.snapshot() == single_session.snapshot()
