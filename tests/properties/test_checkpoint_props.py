"""Property: every zoo checkpoint is lossless, for every predictor.

``export_state`` / ``restore_state`` promise that a snapshot taken after
*any* observation prefix, serialized through JSON and restored into a
freshly constructed twin, yields a predictor whose entire observable
future — predictions under any continuation — is bit-identical to the
original's.  PR by PR the zoo grew checkpointing one predictor at a
time; this suite holds every entry (including the trained
:mod:`repro.learn` models) to the same contract, so a predictor whose
export forgets a mutable field fails here before it can corrupt a serve
checkpoint.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phases import PhaseTable
from repro.core.predictors import (
    ConfidenceGPHTPredictor,
    DirectMappedGPHTPredictor,
    DurationPredictor,
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
    PhaseObservation,
    TournamentPredictor,
    VariableWindowPredictor,
)
from repro.errors import ConfigurationError
from repro.learn import (
    DecisionTreePhasePredictor,
    MarkovKPredictor,
    phase_dataset_from_series,
    train_markov,
    train_phase_tree,
)

TABLE = PhaseTable()

ORACLE_SCRIPT = tuple(1 + (i * 3) % 6 for i in range(300))

_TRAIN_SERIES = [
    TABLE.representative_value(1 + (i * 5) % 6) for i in range(120)
]
_TRAINED_TREE_STATE = train_phase_tree(
    phase_dataset_from_series(_TRAIN_SERIES, history_length=3)
)[1].state
_TRAINED_MARKOV_STATE = train_markov(
    phase_dataset_from_series(_TRAIN_SERIES, history_length=3), order=3
)[1].state


def _trained_tree():
    predictor = DecisionTreePhasePredictor(history_length=3)
    predictor.restore_state(_TRAINED_TREE_STATE)
    return predictor


def _trained_markov_k():
    predictor = MarkovKPredictor(order=3, alpha=0.5)
    predictor.restore_state(_TRAINED_MARKOV_STATE)
    return predictor


# (name, factory): factory() builds the restore target too, so exports
# must be self-contained given an identically-configured fresh twin.
CHECKPOINT_ZOO = [
    ("last_value", LastValuePredictor),
    ("fixed_window", lambda: FixedWindowPredictor(4)),
    ("variable_window", lambda: VariableWindowPredictor(6, 0.005)),
    ("gpht_lru", lambda: GPHTPredictor(4, 8)),
    ("gpht_fifo", lambda: GPHTPredictor(3, 4, replacement="fifo")),
    ("markov", MarkovPredictor),
    ("tournament", lambda: TournamentPredictor(4, 16, chooser_bits=2)),
    ("confidence", lambda: ConfidenceGPHTPredictor(4, 16, max_confidence=2)),
    ("duration", lambda: DurationPredictor(continuation_threshold=0.5)),
    ("direct_mapped", lambda: DirectMappedGPHTPredictor(4, 16)),
    ("oracle", lambda: OraclePredictor(ORACLE_SCRIPT)),
    ("markov_k", lambda: MarkovKPredictor(order=2, alpha=0.5)),
    ("markov_k_trained", _trained_markov_k),
    ("learned_tree", lambda: DecisionTreePhasePredictor(history_length=3)),
    ("learned_tree_trained", _trained_tree),
]
ZOO_IDS = [name for name, _ in CHECKPOINT_ZOO]
ZOO_FACTORIES = [factory for _, factory in CHECKPOINT_ZOO]

observations = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=0.06, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)


def _drive(predictor, samples):
    predictions = []
    for phase, mem in samples:
        predictor.observe(PhaseObservation(phase=phase, mem_per_uop=mem))
        predictions.append(predictor.predict())
    return predictions


@pytest.mark.parametrize("factory", ZOO_FACTORIES, ids=ZOO_IDS)
@given(prefix=observations, future=observations)
@settings(max_examples=30, deadline=None)
def test_snapshot_restore_preserves_every_future_prediction(
    factory, prefix, future
):
    original = factory()
    _drive(original, prefix)

    # The checkpoint must survive a real JSON round trip (what serve's
    # CheckpointStore and the model artifacts actually persist).
    state = json.loads(json.dumps(original.export_state()))
    restored = factory()
    restored.restore_state(state)

    assert restored.export_state() == original.export_state()
    assert _drive(restored, future) == _drive(original, future)
    assert restored.export_state() == original.export_state()


@pytest.mark.parametrize("factory", ZOO_FACTORIES, ids=ZOO_IDS)
def test_checkpoint_kind_mismatch_is_rejected(factory):
    predictor = factory()
    state = dict(predictor.export_state())
    state["kind"] = "not-a-predictor"
    fresh = factory()
    with pytest.raises(ConfigurationError):
        fresh.restore_state(state)


@pytest.mark.parametrize("factory", ZOO_FACTORIES, ids=ZOO_IDS)
def test_reset_then_restore_resumes_from_checkpoint(factory):
    """A snapshot taken mid-stream survives the receiver's reset()."""
    left = factory()
    samples = [
        (1 + (i % 6), TABLE.representative_value(1 + (i % 6)))
        for i in range(25)
    ]
    _drive(left, samples)
    state = left.export_state()

    right = factory()
    _drive(right, samples[:7])
    right.reset()
    right.restore_state(state)
    assert right.export_state() == state

    probe = [(1 + (i * 2) % 6, 0.012) for i in range(12)]
    assert _drive(right, probe) == _drive(left, probe)
