"""Property-based tests for workload construction, scheduling and
serialisation."""

from hypothesis import given, settings, strategies as st

from repro.workloads.multiprogram import round_robin
from repro.workloads.segments import SegmentSpec, WorkloadTrace
from repro.workloads.serialization import trace_from_json, trace_to_json

segments = st.builds(
    SegmentSpec,
    uops=st.integers(min_value=1, max_value=5_000_000),
    mem_per_uop=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    upc_core=st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
    uops_per_instruction=st.floats(
        min_value=1.0, max_value=2.0, allow_nan=False
    ),
    mem_overlap=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)

traces = st.lists(segments, min_size=1, max_size=10).map(
    lambda segs: WorkloadTrace("t", segs)
)


@given(trace=traces)
@settings(max_examples=80, deadline=None)
def test_serialization_round_trip_is_lossless(trace):
    rebuilt = trace_from_json(trace_to_json(trace))
    assert rebuilt.name == trace.name
    assert rebuilt.segments == trace.segments


@given(
    trace_list=st.lists(traces, min_size=1, max_size=4),
    quantum=st.integers(min_value=50_000, max_value=3_000_000),
)
@settings(max_examples=60, deadline=None)
def test_round_robin_conserves_work(trace_list, quantum):
    combined = round_robin(trace_list, quantum_uops=quantum)
    assert combined.total_uops == sum(t.total_uops for t in trace_list)
    expected_instructions = sum(t.total_instructions for t in trace_list)
    # Tolerance is relative: tiny-quantum schedules split segments into
    # thousands of pieces and accumulate float rounding.
    assert abs(combined.total_instructions - expected_instructions) <= max(
        1e-6, 1e-9 * expected_instructions
    )


@given(
    trace_list=st.lists(traces, min_size=1, max_size=3),
    quantum=st.integers(min_value=50_000, max_value=3_000_000),
)
@settings(max_examples=60, deadline=None)
def test_round_robin_preserves_per_app_order(trace_list, quantum):
    """Within each application, work is executed in its original order:
    the subsequence of (mem, upc) rates attributed to app i matches the
    app's own expansion."""
    tagged = [
        WorkloadTrace(
            f"app{i}",
            [
                SegmentSpec(
                    uops=s.uops,
                    # Tag each app's behaviour with a distinctive rate.
                    mem_per_uop=round(0.01 * (i + 1), 6),
                    upc_core=s.upc_core,
                )
                for s in trace
            ],
        )
        for i, trace in enumerate(trace_list)
    ]
    combined = round_robin(tagged, quantum_uops=quantum)
    for i, trace in enumerate(tagged):
        tag = round(0.01 * (i + 1), 6)
        uops = sum(s.uops for s in combined if s.mem_per_uop == tag)
        assert uops == trace.total_uops
