"""Property: the batch predictor API is bit-identical to the scalar one.

``PhasePredictor.observe_batch``/``predict_batch`` promise exactly the
scalar ``observe``/``predict`` cycle — same predictions, same mutable
state (checkpoints after any prefix), same hit/miss accounting — for
*every* predictor in the zoo.  The kernelized trio (GPHT, last-value,
fixed-window) overrides the defaults with vectorized replay; everything
else exercises the base-class scalar-loop fallback.  Both paths must be
indistinguishable from the scalar twin under any partition of the
sample stream into batches.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phases import PhaseTable
from repro.core.predictors import (
    ConfidenceGPHTPredictor,
    DirectMappedGPHTPredictor,
    DurationPredictor,
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
    PhaseObservation,
    TournamentPredictor,
    VariableWindowPredictor,
)
from repro.errors import ConfigurationError
from repro.learn import (
    DecisionTreePhasePredictor,
    MarkovKPredictor,
    phase_dataset_from_series,
    train_markov,
    train_phase_tree,
)

TABLE = PhaseTable()

ORACLE_SCRIPT = tuple(1 + (i * 5) % 6 for i in range(200))

# Learned-predictor twins restore the same trained artifact state, so
# the batch kernels are exercised with a non-trivial trained stratum.
_TRAIN_SERIES = [
    TABLE.representative_value(1 + (i * 5) % 6) for i in range(120)
]
_TRAINED_TREE_STATE = train_phase_tree(
    phase_dataset_from_series(_TRAIN_SERIES, history_length=3)
)[1].state
_TRAINED_MARKOV_STATE = train_markov(
    phase_dataset_from_series(_TRAIN_SERIES, history_length=3), order=3
)[1].state


def _trained_tree():
    predictor = DecisionTreePhasePredictor(history_length=3)
    predictor.restore_state(_TRAINED_TREE_STATE)
    return predictor


def _trained_markov_k():
    predictor = MarkovKPredictor(order=3, alpha=0.5)
    predictor.restore_state(_TRAINED_MARKOV_STATE)
    return predictor


# The full zoo: the three kernelized predictors plus every scalar-loop
# fallback (markov, hybrid, confidence, duration, variable-window, ...),
# plus the repro.learn predictors (markov_k overrides the batch kernels;
# the tree predictor rides the base-class scalar loop).
ZOO = [
    ("last_value", LastValuePredictor),
    ("fixed_window_majority", lambda: FixedWindowPredictor(4)),
    ("fixed_window_mean", lambda: FixedWindowPredictor(4, selector="mean")),
    ("gpht_lru", lambda: GPHTPredictor(4, 8)),
    ("gpht_fifo", lambda: GPHTPredictor(3, 4, replacement="fifo")),
    ("variable_window", lambda: VariableWindowPredictor(8, 0.005)),
    ("markov", MarkovPredictor),
    ("tournament", lambda: TournamentPredictor(4, 16, chooser_bits=2)),
    ("confidence", lambda: ConfidenceGPHTPredictor(4, 16, max_confidence=2)),
    ("duration", lambda: DurationPredictor(continuation_threshold=0.5)),
    ("direct_mapped", lambda: DirectMappedGPHTPredictor(4, 16)),
    ("oracle", lambda: OraclePredictor(ORACLE_SCRIPT)),
    ("markov_k_untrained", lambda: MarkovKPredictor(order=2, alpha=0.5)),
    ("markov_k_trained", _trained_markov_k),
    (
        "learned_tree_untrained",
        lambda: DecisionTreePhasePredictor(history_length=3),
    ),
    ("learned_tree_trained", _trained_tree),
]
ZOO_IDS = [name for name, _ in ZOO]
ZOO_FACTORIES = [factory for _, factory in ZOO]

phases_and_mems = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=6),
        st.one_of(
            st.floats(min_value=0.0, max_value=0.06, allow_nan=False),
            st.sampled_from(list(TABLE.edges)),
        ),
    ),
    min_size=1,
    max_size=50,
)

cut_fractions = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=8
)


def partition(n, fractions):
    """Contiguous batch lengths covering ``n`` samples."""
    cuts = sorted({int(n * f) for f in fractions})
    cuts = [c for c in cuts if 0 < c < n]
    bounds = [0] + cuts + [n]
    return [
        (start, stop)
        for start, stop in zip(bounds, bounds[1:])
        if stop > start
    ]


def scalar_cycle(predictor, phases, mems):
    """The reference cycle: observe then predict, one sample at a time."""
    predictions = []
    for phase, mem in zip(phases, mems):
        predictor.observe(PhaseObservation(phase=phase, mem_per_uop=mem))
        predictions.append(predictor.predict())
    return predictions


def states_match(left, right):
    """Compare checkpoints when supported; probe-free predictors pass."""
    try:
        left_state = left.export_state()
    except ConfigurationError:
        return True
    return left_state == right.export_state()


@pytest.mark.parametrize("factory", ZOO_FACTORIES, ids=ZOO_IDS)
@given(samples=phases_and_mems, fractions=cut_fractions)
@settings(max_examples=40, deadline=None)
def test_predict_batch_is_bit_identical_under_any_partition(
    factory, samples, fractions
):
    phases = [phase for phase, _ in samples]
    mems = [mem for _, mem in samples]
    scalar_twin = factory()
    batch_twin = factory()

    batch_predictions = []
    for start, stop in partition(len(samples), fractions):
        batch_predictions.extend(
            batch_twin.predict_batch(phases[start:stop], mems[start:stop])
        )
        # Checkpoint state after this prefix must equal the scalar
        # twin's at the same point (predictors without checkpointing
        # are behaviourally compared via the probe tail below).
        prefix = scalar_cycle(
            scalar_twin, phases[start:stop], mems[start:stop]
        )
        assert prefix == batch_predictions[start:stop]
        assert states_match(scalar_twin, batch_twin)

    # Behavioural state equality: both twins must continue identically.
    probe_phases = [1 + (i % 6) for i in range(10)]
    probe_mems = [TABLE.representative_value(p) for p in probe_phases]
    assert scalar_cycle(
        scalar_twin, probe_phases, probe_mems
    ) == scalar_cycle(batch_twin, probe_phases, probe_mems)


@pytest.mark.parametrize("factory", ZOO_FACTORIES, ids=ZOO_IDS)
@given(samples=phases_and_mems)
@settings(max_examples=40, deadline=None)
def test_observe_batch_is_bit_identical_to_scalar_observe(factory, samples):
    phases = [phase for phase, _ in samples]
    mems = [mem for _, mem in samples]
    scalar_twin = factory()
    batch_twin = factory()
    for phase, mem in zip(phases, mems):
        scalar_twin.observe(PhaseObservation(phase=phase, mem_per_uop=mem))
    batch_twin.observe_batch(phases, mems)
    assert states_match(scalar_twin, batch_twin)
    probe_phases = [1 + (i % 6) for i in range(10)]
    probe_mems = [TABLE.representative_value(p) for p in probe_phases]
    assert scalar_cycle(
        scalar_twin, probe_phases, probe_mems
    ) == scalar_cycle(batch_twin, probe_phases, probe_mems)


@pytest.mark.parametrize(
    "factory",
    [lambda: GPHTPredictor(4, 8), lambda: GPHTPredictor(3, 4, "fifo")],
    ids=["gpht_lru", "gpht_fifo"],
)
@given(samples=phases_and_mems, fractions=cut_fractions)
@settings(max_examples=40, deadline=None)
def test_gpht_kernel_preserves_hit_miss_accounting(
    factory, samples, fractions
):
    phases = [phase for phase, _ in samples]
    mems = [mem for _, mem in samples]
    scalar_twin = factory()
    batch_twin = factory()
    scalar_cycle(scalar_twin, phases, mems)
    for start, stop in partition(len(samples), fractions):
        batch_twin.predict_batch(phases[start:stop], mems[start:stop])
    assert batch_twin.export_state() == scalar_twin.export_state()
