"""Tests for the performance counter bank."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pmc.counters import PMCBank, PerformanceCounter
from repro.pmc.events import PAPER_COUNTER_CONFIG, PMCEvent


class TestPerformanceCounter:
    def test_accumulates(self):
        counter = PerformanceCounter(PMCEvent.UOPS_RETIRED)
        counter.advance(10)
        counter.advance(5)
        assert counter.value == 15

    def test_overflow_reported_once_at_crossing(self):
        counter = PerformanceCounter(
            PMCEvent.UOPS_RETIRED, overflow_threshold=100
        )
        assert not counter.advance(99)
        assert counter.advance(1)
        # Already past the threshold: no second report.
        assert not counter.advance(50)

    def test_no_overflow_without_threshold(self):
        counter = PerformanceCounter(PMCEvent.UOPS_RETIRED)
        assert not counter.advance(1e12)

    def test_restart_keeps_threshold(self):
        counter = PerformanceCounter(
            PMCEvent.UOPS_RETIRED, overflow_threshold=100
        )
        counter.advance(100)
        counter.restart()
        assert counter.value == 0
        assert counter.advance(100)

    def test_rejects_negative_delta(self):
        counter = PerformanceCounter(PMCEvent.UOPS_RETIRED)
        with pytest.raises(SimulationError):
            counter.advance(-1)


class TestPMCBankConfiguration:
    def test_paper_config(self):
        bank = PMCBank(PAPER_COUNTER_CONFIG)
        assert bank.events == (PMCEvent.UOPS_RETIRED, PMCEvent.BUS_TRAN_MEM)

    def test_rejects_too_many_counters(self):
        with pytest.raises(ConfigurationError, match="programmable"):
            PMCBank(
                (
                    PMCEvent.UOPS_RETIRED,
                    PMCEvent.BUS_TRAN_MEM,
                    PMCEvent.INSTR_RETIRED,
                )
            )

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            PMCBank((PMCEvent.UOPS_RETIRED, PMCEvent.UOPS_RETIRED))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PMCBank(())

    def test_overflow_config_validation(self):
        bank = PMCBank(PAPER_COUNTER_CONFIG)
        with pytest.raises(ConfigurationError):
            bank.set_overflow(PMCEvent.UOPS_RETIRED, 0)
        with pytest.raises(ConfigurationError):
            bank.set_overflow(PMCEvent.INSTR_RETIRED, 100)


class TestPMCBankOperation:
    def make_bank(self, threshold=100.0):
        bank = PMCBank(PAPER_COUNTER_CONFIG)
        bank.set_overflow(PMCEvent.UOPS_RETIRED, threshold)
        return bank

    def test_advance_accumulates_configured_events(self):
        bank = self.make_bank()
        bank.advance({PMCEvent.UOPS_RETIRED: 50, PMCEvent.BUS_TRAN_MEM: 2}, 40)
        assert bank.read(PMCEvent.UOPS_RETIRED) == 50
        assert bank.read(PMCEvent.BUS_TRAN_MEM) == 2
        assert bank.tsc_cycles == 40

    def test_unconfigured_events_are_invisible(self):
        bank = self.make_bank()
        bank.advance({PMCEvent.INSTR_RETIRED: 1000}, 10)
        with pytest.raises(ConfigurationError, match="not configured"):
            bank.read(PMCEvent.INSTR_RETIRED)

    def test_overflow_reporting(self):
        bank = self.make_bank(threshold=100)
        assert bank.advance({PMCEvent.UOPS_RETIRED: 60}, 1) == ()
        overflowed = bank.advance({PMCEvent.UOPS_RETIRED: 60}, 1)
        assert overflowed == (PMCEvent.UOPS_RETIRED,)

    def test_uops_until_overflow(self):
        bank = self.make_bank(threshold=100)
        assert bank.uops_until_overflow(PMCEvent.UOPS_RETIRED) == 100
        bank.advance({PMCEvent.UOPS_RETIRED: 30}, 1)
        assert bank.uops_until_overflow(PMCEvent.UOPS_RETIRED) == 70

    def test_uops_until_overflow_without_threshold(self):
        bank = PMCBank(PAPER_COUNTER_CONFIG)
        assert bank.uops_until_overflow(PMCEvent.UOPS_RETIRED) is None

    def test_uops_until_overflow_clamps_at_zero(self):
        bank = self.make_bank(threshold=100)
        bank.advance({PMCEvent.UOPS_RETIRED: 150}, 1)
        assert bank.uops_until_overflow(PMCEvent.UOPS_RETIRED) == 0

    def test_stop_read_restart_protocol(self):
        """The handler's stop -> read -> restart sequence (Figure 8)."""
        bank = self.make_bank()
        bank.advance({PMCEvent.UOPS_RETIRED: 100, PMCEvent.BUS_TRAN_MEM: 3}, 80)
        bank.stop()
        assert not bank.running
        readings = bank.read_all()
        assert readings[PMCEvent.BUS_TRAN_MEM] == 3
        bank.restart()
        assert bank.running
        assert bank.read(PMCEvent.UOPS_RETIRED) == 0
        assert bank.tsc_cycles == 0

    def test_advance_while_stopped_raises(self):
        bank = self.make_bank()
        bank.stop()
        with pytest.raises(SimulationError):
            bank.advance({PMCEvent.UOPS_RETIRED: 1}, 1)

    def test_negative_cycles_rejected(self):
        bank = self.make_bank()
        with pytest.raises(SimulationError):
            bank.advance({}, -1)
