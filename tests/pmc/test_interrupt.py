"""Tests for the PMI controller."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pmc.interrupt import DEFAULT_PMI_GRANULARITY_UOPS, PMIController


class TestRegistration:
    def test_register_and_unregister(self):
        pmi = PMIController()
        assert not pmi.handler_registered
        pmi.register(lambda t: 0.0)
        assert pmi.handler_registered
        pmi.unregister()
        assert not pmi.handler_registered

    def test_double_register_raises(self):
        pmi = PMIController(handler=lambda t: 0.0)
        with pytest.raises(ConfigurationError, match="already registered"):
            pmi.register(lambda t: 0.0)

    def test_unregister_clears_pending(self):
        pmi = PMIController(handler=lambda t: 0.0)
        pmi.raise_interrupt()
        pmi.unregister()
        assert not pmi.pending


class TestDispatch:
    def test_dispatch_without_pending_is_noop(self):
        calls = []
        pmi = PMIController(handler=lambda t: calls.append(t) or 0.0)
        assert pmi.dispatch(1.0) == 0.0
        assert calls == []
        assert pmi.dispatch_count == 0

    def test_dispatch_delivers_time_and_returns_cost(self):
        seen = []

        def handler(time_s):
            seen.append(time_s)
            return 5e-6

        pmi = PMIController(handler=handler)
        pmi.raise_interrupt()
        assert pmi.pending
        cost = pmi.dispatch(2.5)
        assert cost == 5e-6
        assert seen == [2.5]
        assert not pmi.pending
        assert pmi.dispatch_count == 1

    def test_pending_without_handler_raises(self):
        pmi = PMIController()
        pmi.raise_interrupt()
        with pytest.raises(SimulationError, match="no handler"):
            pmi.dispatch(0.0)

    def test_clear_drops_pending(self):
        pmi = PMIController(handler=lambda t: 0.0)
        pmi.raise_interrupt()
        pmi.clear()
        assert pmi.dispatch(0.0) == 0.0
        assert pmi.dispatch_count == 0

    def test_multiple_dispatches_counted(self):
        pmi = PMIController(handler=lambda t: 0.0)
        for _ in range(4):
            pmi.raise_interrupt()
            pmi.dispatch(0.0)
        assert pmi.dispatch_count == 4


def test_paper_granularity_constant():
    assert DEFAULT_PMI_GRANULARITY_UOPS == 100_000_000
