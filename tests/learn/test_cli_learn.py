"""End-to-end tests for the `repro learn` CLI group."""

import json
import pathlib

from repro.cli import main

FIXTURE_TRACE = str(
    pathlib.Path(__file__).parent / "fixtures" / "tiny_trace.jsonl"
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLearnTrain:
    def test_train_tree_from_fixture_trace(self, capsys, tmp_path):
        out = tmp_path / "tree.json"
        code, stdout, _ = run_cli(
            capsys, "learn", "train", "--trace", FIXTURE_TRACE,
            "--out", str(out),
        )
        assert code == 0
        assert "learn train: tree" in stdout
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["kind"] == "phase_tree"
        assert payload["training"]["source"] == {"trace": FIXTURE_TRACE}

    def test_two_train_runs_are_byte_identical(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for out in (first, second):
            code, _, _ = run_cli(
                capsys, "learn", "train", "--trace", FIXTURE_TRACE,
                "--out", str(out),
            )
            assert code == 0
        assert first.read_bytes() == second.read_bytes()

    def test_train_markov_from_benchmark_json(self, capsys, tmp_path):
        out = tmp_path / "markov.json"
        code, stdout, _ = run_cli(
            capsys, "learn", "train", "--model", "markov",
            "--benchmark", "applu_in", "--intervals", "128",
            "--order", "2", "--out", str(out), "--format", "json",
        )
        assert code == 0
        summary = json.loads(stdout)
        assert summary["kind"] == "markov_k"
        assert summary["out"] == str(out)
        assert len(summary["digest"]) == 64
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["config"] == {"order": 2, "alpha": 0.5}

    def test_train_power_from_benchmark(self, capsys, tmp_path):
        out = tmp_path / "power.json"
        code, _, _ = run_cli(
            capsys, "learn", "train", "--model", "power",
            "--benchmark", "applu_in", "--intervals", "64",
            "--out", str(out),
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["kind"] == "power_tree"

    def test_train_power_from_trace_refuses(self, capsys, tmp_path):
        code, _, stderr = run_cli(
            capsys, "learn", "train", "--model", "power",
            "--trace", FIXTURE_TRACE, "--out", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "no measured power" in stderr

    def test_requires_a_source(self, capsys, tmp_path):
        try:
            main(["learn", "train", "--out", str(tmp_path / "x.json")])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("argparse should reject a missing source")


class TestLearnEval:
    def _train(self, capsys, tmp_path, *extra):
        out = tmp_path / "model.json"
        code, _, _ = run_cli(
            capsys, "learn", "train", "--trace", FIXTURE_TRACE,
            "--out", str(out), *extra,
        )
        assert code == 0
        return out

    def test_eval_above_floor_passes(self, capsys, tmp_path):
        artifact = self._train(capsys, tmp_path)
        code, stdout, _ = run_cli(
            capsys, "learn", "eval", str(artifact),
            "--trace", FIXTURE_TRACE, "--min-accuracy", "0.5",
            "--format", "json",
        )
        assert code == 0
        payload = json.loads(stdout)
        assert payload["passed"] is True
        assert payload["accuracy"] >= 0.5

    def test_eval_below_floor_fails(self, capsys, tmp_path):
        artifact = self._train(capsys, tmp_path)
        code, stdout, _ = run_cli(
            capsys, "learn", "eval", str(artifact),
            "--trace", FIXTURE_TRACE, "--min-accuracy", "1.01",
        )
        assert code == 1
        assert "FAIL" in stdout

    def test_eval_power_model_mae_ceiling(self, capsys, tmp_path):
        out = tmp_path / "power.json"
        code, _, _ = run_cli(
            capsys, "learn", "train", "--model", "power",
            "--benchmark", "applu_in", "--intervals", "64",
            "--out", str(out),
        )
        assert code == 0
        code, stdout, _ = run_cli(
            capsys, "learn", "eval", str(out),
            "--benchmark", "applu_in", "--intervals", "64",
            "--max-mae-w", "2.0", "--format", "json",
        )
        assert code == 0
        payload = json.loads(stdout)
        assert payload["passed"] is True
        assert payload["mae_w"] <= 2.0

    def test_eval_missing_artifact_fails_cleanly(self, capsys, tmp_path):
        code, _, stderr = run_cli(
            capsys, "learn", "eval", str(tmp_path / "absent.json"),
            "--trace", FIXTURE_TRACE,
        )
        assert code == 2
        assert "cannot read artifact" in stderr


class TestLearnCompare:
    def test_compare_table(self, capsys):
        code, stdout, _ = run_cli(
            capsys, "learn", "compare",
            "--benchmarks", "applu_in", "swim_in",
            "--intervals", "96", "--no-cache",
        )
        assert code == 0
        assert "tree" in stdout
        assert "gpht" in stdout
        assert "last_value" in stdout

    def test_compare_json_is_jobs_invariant(self, capsys):
        argv = (
            "learn", "compare", "--benchmarks", "applu_in",
            "--intervals", "96", "--models", "tree", "gpht",
            "--no-cache", "--format", "json",
        )
        code, serial, _ = run_cli(capsys, *argv)
        assert code == 0
        code, parallel, _ = run_cli(capsys, *argv, "--jobs", "2")
        assert code == 0
        assert serial == parallel
        payload = json.loads(serial)
        assert payload["models"] == ["tree", "gpht"]
        assert set(payload["summary"]) == {"tree", "gpht"}
        cell = payload["cells"]["applu_in"]["tree"]
        assert 0.0 <= cell["accuracy"] <= 1.0
