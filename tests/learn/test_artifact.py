"""Unit tests for versioned model artifacts and trainers."""

import json

import numpy as np
import pytest

from repro.core.phases import PhaseTable
from repro.errors import ConfigurationError
from repro.learn import (
    DecisionTreePhasePredictor,
    LearnedPowerModel,
    MarkovKPredictor,
    ModelArtifact,
    build_model,
    phase_dataset_from_series,
    power_dataset_from_benchmark,
    session_config_params,
    train_markov,
    train_phase_tree,
    train_power_model,
)

TABLE = PhaseTable()


def _phase_dataset(history_length=4):
    series = [
        TABLE.representative_value(1 + (i * 5) % 6) for i in range(150)
    ]
    return phase_dataset_from_series(series, history_length=history_length)


class TestTrainers:
    def test_phase_tree_training_is_byte_reproducible(self):
        dataset = _phase_dataset()
        _, first = train_phase_tree(dataset, source={"benchmark": "x"})
        _, second = train_phase_tree(dataset, source={"benchmark": "x"})
        assert first.to_json() == second.to_json()
        assert first.digest() == second.digest()

    def test_markov_training_is_byte_reproducible(self):
        dataset = _phase_dataset(history_length=3)
        _, first = train_markov(dataset, order=3, alpha=0.5)
        _, second = train_markov(dataset, order=3, alpha=0.5)
        assert first.to_json() == second.to_json()

    def test_power_training_is_byte_reproducible(self):
        dataset = power_dataset_from_benchmark("applu_in", 48, seed=3)
        _, first = train_power_model(dataset)
        _, second = train_power_model(dataset)
        assert first.to_json() == second.to_json()

    def test_provenance_records_dataset_digest(self):
        dataset = _phase_dataset()
        _, artifact = train_phase_tree(
            dataset, max_depth=5, source={"seed": 7}
        )
        assert artifact.training["dataset_digest"] == dataset.digest()
        assert artifact.training["examples"] == len(dataset)
        assert artifact.training["max_depth"] == 5
        assert artifact.training["source"] == {"seed": 7}

    def test_artifact_never_carries_wall_clock(self):
        _, artifact = train_phase_tree(_phase_dataset())
        text = artifact.to_json()
        for banned in ("time", "date", "host"):
            assert banned not in json.loads(text)["training"]

    def test_source_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError):
            train_phase_tree(_phase_dataset(), source={"bad": [1, 2]})


class TestBuildModel:
    def test_phase_tree_round_trip(self):
        model, artifact = train_phase_tree(_phase_dataset())
        rebuilt = build_model(artifact)
        assert isinstance(rebuilt, DecisionTreePhasePredictor)
        assert rebuilt.export_state() == model.export_state()

    def test_markov_round_trip(self):
        model, artifact = train_markov(
            _phase_dataset(history_length=3), order=2, alpha=0.25
        )
        rebuilt = build_model(artifact)
        assert isinstance(rebuilt, MarkovKPredictor)
        assert rebuilt.order == 2
        assert rebuilt.alpha == 0.25
        assert rebuilt.export_state() == model.export_state()

    def test_power_round_trip(self):
        dataset = power_dataset_from_benchmark("applu_in", 48, seed=3)
        model, artifact = train_power_model(dataset, max_depth=6)
        rebuilt = build_model(artifact)
        assert isinstance(rebuilt, LearnedPowerModel)
        probe = np.asarray(dataset.features)
        assert rebuilt.predict(probe).tolist() == model.predict(probe).tolist()

    def test_file_round_trip(self, tmp_path):
        _, artifact = train_phase_tree(_phase_dataset())
        path = artifact.save(tmp_path / "model.json")
        loaded = ModelArtifact.load(path)
        assert loaded == artifact
        assert loaded.to_json() == artifact.to_json()


class TestValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ModelArtifact(
                version=1, kind="mystery", name="m", config={}, state={},
                training={},
            )

    def test_rejects_unknown_version(self):
        with pytest.raises(ConfigurationError):
            ModelArtifact(
                version=2, kind="phase_tree", name="m", config={},
                state={}, training={},
            )

    def test_from_payload_rejects_non_dict_sections(self):
        _, artifact = train_markov(_phase_dataset(history_length=2), order=2)
        payload = artifact.to_payload()
        payload["training"] = "nope"
        with pytest.raises(ConfigurationError):
            ModelArtifact.from_payload(payload)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ModelArtifact.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            ModelArtifact.load(tmp_path / "absent.json")


class TestSessionConfigParams:
    def test_phase_tree_maps_to_learned_tree_governor(self):
        _, artifact = train_phase_tree(_phase_dataset(history_length=5))
        params = session_config_params(artifact)
        assert params == {"governor": "learned_tree", "history_length": 5}

    def test_markov_maps_to_markov_governor(self):
        _, artifact = train_markov(
            _phase_dataset(history_length=3), order=2, alpha=0.75
        )
        params = session_config_params(artifact)
        assert params == {
            "governor": "markov",
            "markov_order": 2,
            "markov_alpha": 0.75,
        }

    def test_power_artifact_cannot_serve(self):
        dataset = power_dataset_from_benchmark("applu_in", 32, seed=5)
        _, artifact = train_power_model(dataset)
        with pytest.raises(ConfigurationError, match="not a phase predictor"):
            session_config_params(artifact)
