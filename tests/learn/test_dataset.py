"""Unit tests for supervised dataset extraction (repro.learn.dataset)."""

import json
import pathlib

import numpy as np
import pytest

from repro.core.phases import PhaseTable
from repro.errors import ConfigurationError
from repro.learn import (
    POWER_FEATURES,
    phase_dataset_from_benchmark,
    phase_dataset_from_events,
    phase_dataset_from_series,
    power_dataset_from_benchmark,
)
from repro.learn.dataset import power_dataset_from_events
from repro.serve.replay import load_trace

FIXTURE_TRACE = (
    pathlib.Path(__file__).parent / "fixtures" / "tiny_trace.jsonl"
)

TABLE = PhaseTable()


def _series(n=40):
    return [TABLE.representative_value(1 + (i * 5) % 6) for i in range(n)]


class TestPhaseWindowLayout:
    def test_shapes_and_label_alignment(self):
        series = _series(40)
        dataset = phase_dataset_from_series(series, history_length=3)
        assert dataset.features.shape == (39, 5)
        assert dataset.labels.shape == (39,)
        phases = TABLE.classify_batch(series)
        # Label t is the phase of sample t+1; the first feature column
        # is the phase of sample t itself.
        assert dataset.labels.tolist() == phases[1:]
        assert dataset.features[:, 0].tolist() == [
            float(p) for p in phases[:-1]
        ]

    def test_padding_before_stream_start(self):
        series = _series(10)
        dataset = phase_dataset_from_series(series, history_length=4)
        # At t=0 only the current phase is known: lags and mem_prev pad 0.
        first = dataset.features[0]
        assert first[1] == 0.0 and first[2] == 0.0 and first[3] == 0.0
        assert first[4] == series[0]
        assert first[5] == 0.0
        # At t=1 the previous mem sample fills in.
        assert dataset.features[1, 5] == series[0]

    def test_arrays_are_frozen(self):
        dataset = phase_dataset_from_series(_series(), history_length=2)
        with pytest.raises(ValueError):
            dataset.features[0, 0] = 9.0
        with pytest.raises(ValueError):
            dataset.labels[0] = 9

    def test_rejects_short_series(self):
        with pytest.raises(ConfigurationError):
            phase_dataset_from_series([0.01], history_length=2)

    def test_rejects_bad_history(self):
        with pytest.raises(ConfigurationError):
            phase_dataset_from_series(_series(), history_length=0)


class TestDeterminism:
    def test_digest_is_stable_across_extractions(self):
        first = phase_dataset_from_series(_series(), history_length=4)
        second = phase_dataset_from_series(_series(), history_length=4)
        assert first.digest() == second.digest()
        assert first.to_json() == second.to_json()

    def test_benchmark_extraction_is_deterministic(self):
        first = phase_dataset_from_benchmark("applu_in", 64, seed=7)
        second = phase_dataset_from_benchmark("applu_in", 64, seed=7)
        assert first.digest() == second.digest()

    def test_canonical_json_round_trips(self):
        dataset = phase_dataset_from_series(_series(), history_length=3)
        payload = json.loads(dataset.to_json())
        assert payload["type"] == "phase_window"
        assert payload["history_length"] == 3
        assert np.asarray(payload["features"]).shape == dataset.features.shape

    def test_split_is_seeded_and_disjoint(self):
        dataset = phase_dataset_from_series(_series(60), history_length=2)
        train_a, hold_a = dataset.split(0.8, seed=13)
        train_b, hold_b = dataset.split(0.8, seed=13)
        assert train_a.to_json() == train_b.to_json()
        assert hold_a.to_json() == hold_b.to_json()
        assert len(train_a) + len(hold_a) == len(dataset)
        # A different seed shuffles differently.
        train_c, _ = dataset.split(0.8, seed=14)
        assert train_c.to_json() != train_a.to_json()

    def test_split_rejects_degenerate_fraction(self):
        dataset = phase_dataset_from_series(_series(), history_length=2)
        with pytest.raises(ConfigurationError):
            dataset.split(1.0, seed=1)


class TestTraceExtraction:
    def test_fixture_trace_matches_series_extraction(self):
        events = load_trace(FIXTURE_TRACE)
        from_events = phase_dataset_from_events(events, history_length=4)
        mem_values = [
            event.mem_per_uop
            for event in events
            if type(event).__name__ == "IntervalSampled"
        ]
        from_series = phase_dataset_from_series(
            mem_values, history_length=4
        )
        assert from_events.to_json() == from_series.to_json()
        assert len(from_events) == len(mem_values) - 1

    def test_empty_trace_is_rejected(self):
        with pytest.raises(ConfigurationError):
            phase_dataset_from_events([], history_length=4)


class TestPowerDataset:
    def test_benchmark_power_extraction(self):
        dataset = power_dataset_from_benchmark("applu_in", 48, seed=3)
        assert dataset.features.shape == (48, len(POWER_FEATURES))
        assert dataset.power_w.shape == (48,)
        assert (dataset.power_w > 0.0).all()
        # The managed run must exercise more than one frequency, so the
        # frequency feature carries signal.
        assert len(set(dataset.features[:, 2].tolist())) > 1

    def test_power_extraction_is_deterministic(self):
        first = power_dataset_from_benchmark("applu_in", 32, seed=5)
        second = power_dataset_from_benchmark("applu_in", 32, seed=5)
        assert first.digest() == second.digest()

    def test_trace_power_extraction_refuses_with_reason(self):
        events = load_trace(FIXTURE_TRACE)
        with pytest.raises(ConfigurationError, match="no measured power"):
            power_dataset_from_events(events)
