"""repro analyze guards the learned models' checkpoint contract.

Satellite of the repro.learn PR: the ``checkpoint-completeness``
analysis must cover the trainable predictors exactly like the
hand-written zoo — a mutation that drops the trained-tree field from
``export_state`` (the field a serve checkpoint cannot reconstruct) has
to produce a finding.
"""

from pathlib import Path

from repro.devtools.analyze import AnalyzeEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
LEARN = REPO_ROOT / "src" / "repro" / "learn"
PREDICTORS = LEARN / "predictors.py"
POWER = LEARN / "power.py"


class TestLearnSourcesAreClean:
    def test_learn_package_is_clean(self):
        report = AnalyzeEngine().run([str(LEARN)])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"analyze regressions:\n{formatted}"
        assert report.errors == []
        assert report.files_checked >= 8


class TestMutationCatchesDroppedTreeField:
    """Dropping the trained tree from export_state must be flagged."""

    TREE_EXPORT_LINE = (
        '            "tree": self._tree.to_payload() '
        "if self._tree is not None else None,"
    )

    def test_pristine_copy_is_clean(self, tmp_path):
        (tmp_path / "predictors.py").write_text(PREDICTORS.read_text())
        report = AnalyzeEngine().run([str(tmp_path)])
        assert report.findings == []

    def test_dropped_tree_field_is_flagged(self, tmp_path):
        source = PREDICTORS.read_text()
        mutated = source.replace(self.TREE_EXPORT_LINE + "\n", "")
        assert mutated != source, (
            "predictors.py export_state no longer carries the tree line "
            "this mutation targets"
        )
        (tmp_path / "predictors.py").write_text(mutated)
        report = AnalyzeEngine().run([str(tmp_path)])
        checkpoint = [
            f for f in report.findings
            if f.rule == "checkpoint-completeness"
        ]
        assert len(checkpoint) == 1
        finding = checkpoint[0]
        assert finding.path.endswith("predictors.py")
        assert finding.line > 0
        assert "_tree" in finding.message
        assert report.exit_code == 1

    def test_dropped_markov_counts_field_is_flagged(self, tmp_path):
        source = PREDICTORS.read_text()
        mutated = source.replace(
            '            "counts": _counts_payload(self._counts),\n', ""
        )
        assert mutated != source
        (tmp_path / "predictors.py").write_text(mutated)
        report = AnalyzeEngine().run([str(tmp_path)])
        checkpoint = [
            f for f in report.findings
            if f.rule == "checkpoint-completeness"
        ]
        assert len(checkpoint) == 1
        assert "_counts" in checkpoint[0].message

    def test_dropped_power_tree_field_is_flagged(self, tmp_path):
        source = POWER.read_text()
        mutated = source.replace(
            '            "tree": self._tree.to_payload() '
            "if self._tree is not None else None,\n",
            "",
        )
        assert mutated != source
        (tmp_path / "power.py").write_text(mutated)
        report = AnalyzeEngine().run([str(tmp_path)])
        checkpoint = [
            f for f in report.findings
            if f.rule == "checkpoint-completeness"
        ]
        assert len(checkpoint) == 1
        assert "_tree" in checkpoint[0].message
