"""Unit tests for the deterministic CART implementation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn.tree import DecisionTree


def _grid_features():
    """A small problem needing one split per feature (depth 2)."""
    features = np.array(
        [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 8,
        dtype=np.float64,
    )
    labels = np.array([1, 1, 2, 3] * 8, dtype=np.int64)
    return features, labels


class TestFit:
    def test_learns_grid_exactly(self):
        features, labels = _grid_features()
        tree = DecisionTree.fit(
            features, labels, task="classification", max_depth=3,
            min_samples_leaf=1,
        )
        assert tree.predict(features).tolist() == labels.tolist()
        assert tree.depth == 2

    def test_regression_fits_step_function(self):
        features = np.linspace(0.0, 1.0, 64).reshape(-1, 1)
        targets = np.where(features[:, 0] < 0.5, 2.0, 7.0)
        tree = DecisionTree.fit(
            features, targets, task="regression", max_depth=4,
            min_samples_leaf=1,
        )
        predicted = tree.predict(features)
        assert np.allclose(predicted, targets)

    def test_fit_is_deterministic(self):
        rng = np.random.default_rng(3)
        features = rng.random((200, 5))
        labels = (features[:, 0] * 4).astype(np.int64) + 1
        first = DecisionTree.fit(
            features, labels, task="classification", max_depth=6,
            min_samples_leaf=2,
        )
        second = DecisionTree.fit(
            features, labels, task="classification", max_depth=6,
            min_samples_leaf=2,
        )
        assert first.to_payload() == second.to_payload()

    def test_max_depth_bounds_the_tree(self):
        rng = np.random.default_rng(5)
        features = rng.random((300, 3))
        targets = rng.random(300)
        tree = DecisionTree.fit(
            features, targets, task="regression", max_depth=3,
            min_samples_leaf=1,
        )
        assert tree.depth <= 3

    def test_min_samples_leaf_is_respected(self):
        rng = np.random.default_rng(7)
        features = rng.random((100, 2))
        labels = (features[:, 0] > 0.5).astype(np.int64) + 1
        tree = DecisionTree.fit(
            features, labels, task="classification", max_depth=10,
            min_samples_leaf=10,
        )
        # Walk every row to a leaf and count occupancy per leaf node.
        nodes = tree.to_payload()["nodes"]
        leaf_counts = {}
        for row in features:
            node = 0
            while nodes[node][0] >= 0:
                feat, threshold, left, right, _ = nodes[node]
                node = left if row[feat] <= threshold else right
            leaf_counts[node] = leaf_counts.get(node, 0) + 1
        assert leaf_counts
        assert min(leaf_counts.values()) >= 10

    def test_pure_node_becomes_leaf(self):
        features = np.array([[0.0], [1.0], [2.0]], dtype=np.float64)
        labels = np.array([3, 3, 3], dtype=np.int64)
        tree = DecisionTree.fit(
            features, labels, task="classification", max_depth=5,
            min_samples_leaf=1,
        )
        assert tree.node_count == 1
        assert tree.predict_one([1.5]) == 3

    def test_rejects_bad_task(self):
        features, labels = _grid_features()
        with pytest.raises(ConfigurationError):
            DecisionTree.fit(features, labels, task="ranking")

    def test_rejects_empty_dataset(self):
        with pytest.raises(ConfigurationError):
            DecisionTree.fit(
                np.zeros((0, 2)), np.zeros(0), task="regression"
            )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            DecisionTree.fit(
                np.zeros((4, 2)), np.zeros(3), task="regression"
            )


class TestPredict:
    def test_vectorized_matches_scalar_walk(self):
        rng = np.random.default_rng(11)
        features = rng.random((150, 4))
        labels = ((features[:, 1] + features[:, 2]) * 3).astype(np.int64)
        tree = DecisionTree.fit(
            features, labels, task="classification", max_depth=8,
            min_samples_leaf=1,
        )
        probe = rng.random((64, 4))
        vectorized = tree.predict(probe)
        scalar = [tree.predict_one(list(row)) for row in probe]
        assert vectorized.tolist() == scalar

    def test_classification_predictions_are_ints(self):
        features, labels = _grid_features()
        tree = DecisionTree.fit(features, labels, task="classification")
        assert tree.predict(features).dtype == np.int64
        assert isinstance(tree.predict_one([0.0, 1.0]), int)


class TestPayload:
    def test_round_trip_is_lossless(self):
        features, labels = _grid_features()
        tree = DecisionTree.fit(features, labels, task="classification")
        rebuilt = DecisionTree.from_payload(tree.to_payload())
        assert rebuilt == tree
        assert rebuilt.to_payload() == tree.to_payload()

    def test_rejects_unknown_version(self):
        features, labels = _grid_features()
        payload = DecisionTree.fit(
            features, labels, task="classification"
        ).to_payload()
        payload["version"] = 99
        with pytest.raises(ConfigurationError):
            DecisionTree.from_payload(payload)

    def test_rejects_dangling_child_index(self):
        payload = {
            "version": 1,
            "task": "classification",
            "n_features": 1,
            "nodes": [[0, 0.5, 1, 5, 0]],  # right child out of range
        }
        with pytest.raises(ConfigurationError):
            DecisionTree.from_payload(payload)

    def test_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            DecisionTree.from_payload([1, 2, 3])
