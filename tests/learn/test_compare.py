"""Unit tests for the accuracy-vs-overhead comparison grid."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import make_engine
from repro.learn import compare_models, comparison_specs


class TestComparisonSpecs:
    def test_grid_covers_every_benchmark_model_pair(self):
        specs = comparison_specs(("applu_in", "swim_in"), 64)
        assert len(specs) == 2 * 4
        kinds = {spec.kind for spec in specs}
        assert kinds == {"learned_accuracy"}

    def test_rejects_empty_benchmarks(self):
        with pytest.raises(ConfigurationError):
            comparison_specs((), 64)

    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            comparison_specs(("applu_in",), 64, models=("svm",))


class TestCompareModels:
    def test_payload_shape_and_summary(self):
        engine = make_engine(jobs=1, cache=None)
        payload = compare_models(
            engine,
            benchmarks=("applu_in",),
            n_intervals=96,
            models=("tree", "last_value"),
        )
        assert payload["benchmarks"] == ["applu_in"]
        assert payload["models"] == ["tree", "last_value"]
        cells = payload["cells"]["applu_in"]
        assert set(cells) == {"tree", "last_value"}
        summary = payload["summary"]
        for model in ("tree", "last_value"):
            stats = summary[model]
            assert 0.0 <= stats["mean_accuracy"] <= 1.0
            assert stats["benchmarks_won"] in (0, 1)
        # Exactly one strict winner on a single benchmark (or none on
        # an exact tie).
        assert sum(s["benchmarks_won"] for s in summary.values()) <= 1

    def test_serial_and_parallel_runs_are_byte_identical(self):
        kwargs = {
            "benchmarks": ("applu_in",),
            "n_intervals": 96,
            "models": ("markov", "gpht"),
        }
        serial = compare_models(make_engine(jobs=1, cache=None), **kwargs)
        parallel = compare_models(make_engine(jobs=2, cache=None), **kwargs)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )
