"""Unit tests for the trainable predictors (repro.learn.predictors)."""

import pytest

from repro.analysis import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import PhaseObservation
from repro.errors import ConfigurationError
from repro.learn import (
    DecisionTreePhasePredictor,
    MarkovKPredictor,
    phase_dataset_from_series,
)

TABLE = PhaseTable()


def _series(n=200, stride=5):
    return [
        TABLE.representative_value(1 + (i * stride) % 6) for i in range(n)
    ]


def _observe(predictor, phase):
    predictor.observe(
        PhaseObservation(
            phase=phase, mem_per_uop=TABLE.representative_value(phase)
        )
    )


class TestDecisionTreePhasePredictor:
    def test_fresh_predictor_predicts_default(self):
        assert DecisionTreePhasePredictor().predict() == 1

    def test_untrained_falls_back_to_last_value(self):
        predictor = DecisionTreePhasePredictor(history_length=3)
        _observe(predictor, 4)
        assert predictor.predict() == 4
        _observe(predictor, 2)
        assert predictor.predict() == 2

    def test_trained_predictor_learns_cyclic_pattern(self):
        series = _series()
        predictor = DecisionTreePhasePredictor(history_length=4)
        predictor.fit(phase_dataset_from_series(series, history_length=4))
        assert predictor.is_trained
        result = evaluate_predictor(predictor, series, TABLE)
        assert result.accuracy > 0.9

    def test_fit_rejects_history_mismatch(self):
        predictor = DecisionTreePhasePredictor(history_length=4)
        dataset = phase_dataset_from_series(_series(), history_length=3)
        with pytest.raises(ConfigurationError):
            predictor.fit(dataset)

    def test_reset_keeps_trained_stratum(self):
        predictor = DecisionTreePhasePredictor(history_length=4)
        tree = predictor.fit(
            phase_dataset_from_series(_series(), history_length=4)
        )
        for phase in (1, 2, 3):
            _observe(predictor, phase)
        predictor.reset()
        assert predictor.tree is tree
        state = predictor.export_state()
        assert state["history"] == []
        assert state["seen"] == 0
        assert state["tree"] is not None

    def test_restore_rejects_regression_tree(self):
        predictor = DecisionTreePhasePredictor(history_length=2)
        state = predictor.export_state()
        state["tree"] = {
            "version": 1,
            "task": "regression",
            "n_features": 4,
            "nodes": [[-1, 0.0, -1, -1, 2.5]],
        }
        with pytest.raises(ConfigurationError, match="classifier"):
            predictor.restore_state(state)

    def test_restore_rejects_feature_count_mismatch(self):
        trained = DecisionTreePhasePredictor(history_length=4)
        trained.fit(phase_dataset_from_series(_series(), history_length=4))
        narrow = DecisionTreePhasePredictor(history_length=2)
        state = dict(trained.export_state())
        state["history_length"] = 2  # get past the config check
        with pytest.raises(ConfigurationError, match="features"):
            narrow.restore_state(state)

    def test_restore_rejects_oversized_history(self):
        predictor = DecisionTreePhasePredictor(history_length=2)
        state = dict(predictor.export_state())
        state["history"] = [1, 2, 3]
        with pytest.raises(ConfigurationError, match="history"):
            predictor.restore_state(state)

    def test_rejects_bad_history_length(self):
        with pytest.raises(ConfigurationError):
            DecisionTreePhasePredictor(history_length=0)


class TestMarkovKPredictor:
    def test_fresh_predictor_predicts_default(self):
        assert MarkovKPredictor().predict() == 1

    def test_untrained_single_observation_is_last_value(self):
        predictor = MarkovKPredictor(order=2)
        _observe(predictor, 5)
        assert predictor.predict() == 5

    def test_trained_predictor_learns_cyclic_pattern(self):
        series = _series()
        predictor = MarkovKPredictor(order=3)
        predictor.fit(phase_dataset_from_series(series, history_length=3))
        assert predictor.is_trained
        result = evaluate_predictor(predictor, series, TABLE)
        assert result.accuracy > 0.9

    def test_online_learning_without_prior(self):
        # A strictly repeating pattern becomes predictable online.
        predictor = MarkovKPredictor(order=2, alpha=0.5)
        pattern = [1, 2, 3] * 20
        correct = 0
        for i, phase in enumerate(pattern):
            _observe(predictor, phase)
            if i + 1 < len(pattern):
                correct += predictor.predict() == pattern[i + 1]
        assert correct / (len(pattern) - 1) > 0.8

    def test_tie_break_prefers_current_phase(self):
        # No counts at all beyond support: every symbol is uniform, so
        # the argmax ties and persistence must win.
        predictor = MarkovKPredictor(order=2, alpha=0.5)
        state = predictor.export_state()
        state["prior_support"] = [1, 2, 3]
        state["history"] = [2]
        predictor.restore_state(state)
        assert predictor.predict() == 2

    def test_reset_keeps_prior_counts(self):
        predictor = MarkovKPredictor(order=2)
        predictor.fit(phase_dataset_from_series(_series(), history_length=2))
        _observe(predictor, 1)
        _observe(predictor, 2)
        predictor.reset()
        state = predictor.export_state()
        assert state["counts"] == []
        assert state["history"] == []
        assert state["prior"] != []
        assert predictor.is_trained

    def test_restore_rejects_long_context(self):
        predictor = MarkovKPredictor(order=2)
        state = dict(predictor.export_state())
        state["counts"] = [[[1, 2, 3], [[1, 4]]]]
        with pytest.raises(ConfigurationError, match="length"):
            predictor.restore_state(state)

    def test_restore_rejects_nonpositive_count(self):
        predictor = MarkovKPredictor(order=2)
        state = dict(predictor.export_state())
        state["prior"] = [[[1], [[2, 0]]]]
        with pytest.raises(ConfigurationError, match=">= 1"):
            predictor.restore_state(state)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MarkovKPredictor(order=0)
        with pytest.raises(ConfigurationError):
            MarkovKPredictor(alpha=0.0)

    def test_fit_stops_context_at_padding(self):
        # history [3, 0]: the padded lag must not produce a length-2
        # context containing phase 0.
        predictor = MarkovKPredictor(order=2)
        predictor.fit(
            phase_dataset_from_series(
                [
                    TABLE.representative_value(3),
                    TABLE.representative_value(4),
                ],
                history_length=2,
            )
        )
        state = predictor.export_state()
        contexts = [tuple(context) for context, _ in state["prior"]]
        assert all(0 not in context for context in contexts)
        assert 0 not in state["prior_support"]
