"""Tests for the synthetic SPEC2000 registry — including the statistical
properties the paper reports per benchmark."""

import numpy as np
import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.variability import sample_variation_pct
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.errors import ConfigurationError
from repro.workloads.spec2000 import (
    FIG4_BENCHMARK_ORDER,
    FIG5_BENCHMARKS,
    FIG12_BENCHMARKS,
    FIG13_BENCHMARKS,
    SPEC2000_BENCHMARKS,
    VARIABLE_BENCHMARKS,
    benchmark,
    benchmark_names,
)


class TestRegistryCompleteness:
    def test_thirty_three_benchmarks(self):
        """The paper evaluates 33 benchmark/input pairs."""
        assert len(SPEC2000_BENCHMARKS) == 33

    def test_fig4_order_covers_registry_exactly(self):
        assert set(FIG4_BENCHMARK_ORDER) == set(SPEC2000_BENCHMARKS)
        assert len(FIG4_BENCHMARK_ORDER) == 33

    def test_subset_lists_are_subsets(self):
        for subset in (FIG5_BENCHMARKS, FIG12_BENCHMARKS, FIG13_BENCHMARKS,
                       VARIABLE_BENCHMARKS):
            assert set(subset) <= set(SPEC2000_BENCHMARKS)

    def test_fig5_is_the_harder_right_half(self):
        assert len(FIG5_BENCHMARKS) == 18
        assert FIG5_BENCHMARKS[0] == "gzip_log"
        assert FIG5_BENCHMARKS[-1] == "equake_in"

    def test_variable_benchmarks_are_the_last_six(self):
        assert set(VARIABLE_BENCHMARKS) == set(FIG4_BENCHMARK_ORDER[-6:])

    def test_lookup_helpers(self):
        assert benchmark("applu_in").name == "applu_in"
        assert benchmark_names() == FIG4_BENCHMARK_ORDER

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            benchmark("nosuchthing")


class TestDeterminism:
    def test_traces_are_reproducible(self):
        a = benchmark("applu_in").mem_series(100)
        b = benchmark("applu_in").mem_series(100)
        assert np.array_equal(a, b)

    def test_different_benchmarks_differ(self):
        a = benchmark("applu_in").mem_series(100)
        b = benchmark("equake_in").mem_series(100)
        assert not np.array_equal(a, b)

    def test_explicit_seed_changes_the_draw(self):
        spec = benchmark("applu_in")
        assert not np.array_equal(
            spec.mem_series(100), spec.mem_series(100, seed=1)
        )

    def test_seed_is_name_derived(self):
        assert benchmark("applu_in").seed != benchmark("swim_in").seed


class TestTraces:
    def test_trace_segment_fields(self):
        spec = benchmark("swim_in")
        trace = spec.trace(n_intervals=10, uops_per_interval=1_000_000)
        assert len(trace) == 10
        assert trace[0].uops == 1_000_000
        assert trace[0].uops_per_instruction == spec.uops_per_instruction
        assert trace.name == "swim_in"

    def test_trace_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            benchmark("swim_in").trace(n_intervals=0)


class TestPaperStatistics:
    """The properties that make the synthetic suite a faithful stand-in."""

    def test_q1_benchmarks_are_stable(self):
        for name in ("crafty_in", "eon_cook", "mesa_ref", "sixtrack_in"):
            variation = sample_variation_pct(benchmark(name).mem_series(400))
            assert variation < 5.0, name

    def test_q2_benchmarks_stable_and_memory_bound(self):
        for name in ("swim_in", "mcf_inp"):
            series = benchmark(name).mem_series(400)
            assert sample_variation_pct(series) < 15.0, name
            assert series.mean() > 0.02, name

    def test_q3_benchmarks_variable_and_memory_bound(self):
        for name in ("applu_in", "equake_in", "mgrid_in"):
            series = benchmark(name).mem_series(400)
            assert sample_variation_pct(series) > 20.0, name
            assert series.mean() > 0.012, name

    def test_q4_benchmarks_variable_with_low_savings(self):
        for name in ("bzip2_program", "bzip2_source", "bzip2_graphic"):
            series = benchmark(name).mem_series(400)
            assert sample_variation_pct(series) > 20.0, name
            assert series.mean() < 0.012, name

    def test_mcf_is_the_most_memory_bound(self):
        means = {
            name: benchmark(name).mem_series(400).mean()
            for name in FIG4_BENCHMARK_ORDER
        }
        assert max(means, key=means.get) == "mcf_inp"
        assert means["mcf_inp"] > 0.09

    def test_fig4_ordering_roughly_holds(self):
        """Figure 4 sorts by decreasing last-value accuracy.  The
        synthetic registry must preserve the coarse structure: the first
        third clearly easier than the last six."""
        accuracies = {}
        for name in FIG4_BENCHMARK_ORDER:
            series = benchmark(name).mem_series(400)
            accuracies[name] = evaluate_predictor(
                LastValuePredictor(), series
            ).accuracy
        easy = [accuracies[n] for n in FIG4_BENCHMARK_ORDER[:11]]
        hard = [accuracies[n] for n in FIG4_BENCHMARK_ORDER[-6:]]
        assert min(easy) > 0.95
        assert max(hard) < 0.85
        assert accuracies["applu_in"] < 0.55
        assert accuracies["equake_in"] < 0.55

    def test_gpht_dominates_on_variable_benchmarks(self):
        for name in VARIABLE_BENCHMARKS:
            series = benchmark(name).mem_series(600)
            last = evaluate_predictor(LastValuePredictor(), series)
            gpht = evaluate_predictor(GPHTPredictor(8, 1024), series)
            assert gpht.accuracy > last.accuracy + 0.1, name

    def test_all_upc_values_within_issue_width(self):
        for name in FIG4_BENCHMARK_ORDER:
            behavior = benchmark(name).behavior(200)
            assert np.all(behavior[:, 1] <= 2.0), name
            assert np.all(behavior[:, 1] > 0.0), name
