"""Tests for the IPCxMEM configuration solver and grid."""

import pytest

from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.workloads.ipcxmem import (
    MAX_MEM_OVERLAP,
    PAPER_GRID_MEM,
    PAPER_GRID_UPC,
    ipcxmem_grid,
    solve_configuration,
)

TABLE = SpeedStepTable()
FASTEST = TABLE.fastest
TIMING = TimingModel()


class TestSolver:
    @pytest.mark.parametrize(
        "upc,mem",
        [(0.1, 0.0475), (0.5, 0.0225), (0.9, 0.0075), (1.9, 0.0)],
    )
    def test_hits_target_at_reference_point(self, upc, mem):
        config = solve_configuration(upc, mem, TIMING, FASTEST)
        observed = TIMING.upc(config.segment, FASTEST)
        assert observed == pytest.approx(upc, rel=1e-9)
        assert config.segment.mem_per_uop == mem

    def test_prefers_zero_overlap(self):
        config = solve_configuration(0.1, 0.0475, TIMING, FASTEST)
        assert config.segment.mem_overlap == 0.0

    def test_uses_overlap_when_needed(self):
        """The paper's (UPC=1.3, Mem/Uop=0.0075) legend point needs
        memory-level parallelism under this timing model."""
        config = solve_configuration(1.3, 0.0075, TIMING, FASTEST)
        assert config.segment.mem_overlap > 0.0
        observed = TIMING.upc(config.segment, FASTEST)
        assert observed == pytest.approx(1.3, rel=1e-9)

    def test_unreachable_coordinate_raises(self):
        with pytest.raises(ConfigurationError, match="boundary"):
            solve_configuration(1.9, 0.0475, TIMING, FASTEST)

    def test_rejects_bad_targets(self):
        with pytest.raises(ConfigurationError):
            solve_configuration(0.0, 0.01)
        with pytest.raises(ConfigurationError):
            solve_configuration(5.0, 0.01)
        with pytest.raises(ConfigurationError):
            solve_configuration(1.0, -0.01)

    def test_label_format(self):
        config = solve_configuration(0.5, 0.0225, TIMING, FASTEST)
        assert config.label == "UPC=0.5, Mem/Uop=0.0225"


class TestDVFSVarianceProperties:
    """The Section 4 conclusions, verified on solved configurations."""

    def test_mem_per_uop_invariant_across_frequencies(self):
        config = solve_configuration(0.5, 0.0225, TIMING, FASTEST)
        seg = config.segment
        for point in TABLE:
            # The counters count the same events at any frequency.
            assert seg.memory_transactions / seg.uops == pytest.approx(0.0225)

    def test_memory_bound_upc_varies_with_frequency(self):
        config = solve_configuration(0.1, 0.0475, TIMING, FASTEST)
        upcs = [TIMING.upc(config.segment, p) for p in TABLE]
        change = max(upcs) / min(upcs) - 1.0
        assert change > 0.3

    def test_cpu_bound_upc_does_not_vary(self):
        config = solve_configuration(1.9, 0.0, TIMING, FASTEST)
        upcs = [TIMING.upc(config.segment, p) for p in TABLE]
        assert max(upcs) == pytest.approx(min(upcs))


class TestGrid:
    def test_grid_covers_a_substantial_region(self):
        """The paper runs ~50 configurations."""
        configs = ipcxmem_grid()
        assert 40 <= len(configs) <= len(PAPER_GRID_UPC) * len(PAPER_GRID_MEM)

    def test_grid_excludes_the_infeasible_corner(self):
        configs = ipcxmem_grid()
        coords = {(c.target_upc, c.target_mem_per_uop) for c in configs}
        assert (1.9, 0.0475) not in coords
        assert (0.1, 0.0475) in coords

    def test_all_grid_configs_hit_their_targets(self):
        for config in ipcxmem_grid():
            observed = TIMING.upc(config.segment, FASTEST)
            assert observed == pytest.approx(config.target_upc, rel=1e-9)

    def test_all_overlaps_bounded(self):
        for config in ipcxmem_grid():
            assert 0.0 <= config.segment.mem_overlap <= MAX_MEM_OVERLAP

    def test_custom_grid(self):
        configs = ipcxmem_grid(upc_values=[0.5], mem_values=[0.0, 0.01])
        assert len(configs) == 2


class TestConfigTrace:
    def test_trace_builds_runnable_workload(self):
        config = solve_configuration(0.5, 0.0225, TIMING, FASTEST)
        trace = config.trace(n_segments=3)
        assert len(trace) == 3
        assert trace.name == config.label
        assert trace[0] == config.segment

    def test_trace_rejects_bad_length(self):
        config = solve_configuration(0.5, 0.0225, TIMING, FASTEST)
        with pytest.raises(ConfigurationError):
            config.trace(n_segments=0)
