"""Tests for workload segments and traces."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec, WorkloadTrace, uniform_trace


def segment(**kwargs):
    defaults = dict(uops=1_000_000, mem_per_uop=0.01, upc_core=1.5)
    defaults.update(kwargs)
    return SegmentSpec(**defaults)


class TestSegmentSpec:
    def test_derived_quantities(self):
        seg = segment(uops=1000, mem_per_uop=0.02, uops_per_instruction=1.25)
        assert seg.memory_transactions == pytest.approx(20.0)
        assert seg.instructions == pytest.approx(800.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            segment(uops=0)
        with pytest.raises(ConfigurationError):
            segment(mem_per_uop=-0.01)
        with pytest.raises(ConfigurationError):
            segment(upc_core=0.0)
        with pytest.raises(ConfigurationError):
            segment(upc_core=3.5)
        with pytest.raises(ConfigurationError):
            segment(uops_per_instruction=0.9)
        with pytest.raises(ConfigurationError):
            segment(mem_overlap=1.0)

    def test_split_preserves_rates_and_total(self):
        seg = segment(uops=1000)
        head, tail = seg.split(300)
        assert head.uops == 300
        assert tail.uops == 700
        assert head.mem_per_uop == tail.mem_per_uop == seg.mem_per_uop
        assert head.upc_core == tail.upc_core == seg.upc_core

    def test_split_bounds(self):
        seg = segment(uops=1000)
        with pytest.raises(ConfigurationError):
            seg.split(0)
        with pytest.raises(ConfigurationError):
            seg.split(1000)

    def test_immutability(self):
        with pytest.raises(Exception):
            segment().uops = 5


class TestWorkloadTrace:
    def test_aggregates(self):
        trace = WorkloadTrace(
            "t",
            [
                segment(uops=1000, mem_per_uop=0.01),
                segment(uops=3000, mem_per_uop=0.03),
            ],
        )
        assert trace.total_uops == 4000
        # Uop-weighted mean: (10 + 90) / 4000
        assert trace.mean_mem_per_uop() == pytest.approx(0.025)

    def test_sequence_protocol(self):
        trace = WorkloadTrace("t", [segment(), segment()])
        assert len(trace) == 2
        assert trace[0] == trace.segments[0]
        assert list(iter(trace)) == list(trace.segments)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace("empty", [])

    def test_mem_series(self):
        trace = WorkloadTrace(
            "t", [segment(mem_per_uop=0.01), segment(mem_per_uop=0.02)]
        )
        assert trace.mem_per_uop_series() == [0.01, 0.02]

    def test_repr(self):
        trace = WorkloadTrace("applu_in", [segment()])
        assert "applu_in" in repr(trace)


class TestUniformTrace:
    def test_builds_from_level_pairs(self):
        trace = uniform_trace(
            "u", [(0.01, 1.0), (0.02, 0.8)], uops_per_segment=500
        )
        assert len(trace) == 2
        assert trace[0].uops == 500
        assert trace[1].mem_per_uop == 0.02
        assert trace[1].upc_core == 0.8

    def test_shared_upi(self):
        trace = uniform_trace(
            "u", [(0.0, 1.0)], uops_per_segment=100, uops_per_instruction=1.3
        )
        assert trace[0].uops_per_instruction == 1.3
