"""Tests for round-robin multiprogramming (extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.multiprogram import round_robin
from repro.workloads.segments import uniform_trace
from repro.workloads.spec2000 import benchmark


def trace_a(n=4, uops=1000):
    return uniform_trace("a", [(0.001, 1.5)] * n, uops_per_segment=uops)


def trace_b(n=4, uops=1000):
    return uniform_trace("b", [(0.04, 1.0)] * n, uops_per_segment=uops)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            round_robin([], 100)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ConfigurationError):
            round_robin([trace_a()], 0)


class TestScheduling:
    def test_conserves_all_work(self):
        combined = round_robin([trace_a(), trace_b()], quantum_uops=700)
        assert combined.total_uops == trace_a().total_uops + trace_b().total_uops

    def test_alternates_at_quantum_boundaries(self):
        combined = round_robin([trace_a(), trace_b()], quantum_uops=1000)
        mems = combined.mem_per_uop_series()
        assert mems[:4] == [0.001, 0.04, 0.001, 0.04]

    def test_quantum_splits_segments(self):
        combined = round_robin([trace_a(uops=1000)], quantum_uops=300)
        # 4000 uops in 300-uop pieces with per-segment remainder splits.
        assert combined.total_uops == 4000
        assert all(segment.uops <= 1000 for segment in combined)

    def test_finished_apps_drop_out(self):
        short = trace_a(n=1)
        long = trace_b(n=4)
        combined = round_robin([short, long], quantum_uops=1000)
        mems = combined.mem_per_uop_series()
        # After the first rotation only b's behaviour remains.
        assert mems[0] == 0.001
        assert all(m == 0.04 for m in mems[2:])

    def test_default_name(self):
        combined = round_robin([trace_a(), trace_b()], quantum_uops=500)
        assert combined.name == "rr(a+b)"

    def test_custom_name(self):
        combined = round_robin([trace_a()], 500, name="mix")
        assert combined.name == "mix"

    def test_single_trace_is_passthrough(self):
        original = trace_a()
        combined = round_robin([original], quantum_uops=1000)
        assert combined.mem_per_uop_series() == original.mem_per_uop_series()
        assert combined.total_uops == original.total_uops


class TestWithBenchmarks:
    def test_spec_interleaving_preserves_totals(self):
        a = benchmark("gzip_log").trace(n_intervals=20)
        b = benchmark("swim_in").trace(n_intervals=20)
        combined = round_robin([a, b], quantum_uops=300_000_000)
        assert combined.total_uops == a.total_uops + b.total_uops
        assert combined.total_instructions == pytest.approx(
            a.total_instructions + b.total_instructions
        )

    def test_interleaved_phases_are_learnable(self):
        """Deterministic quantum switching produces patterned phase
        sequences the GPHT can learn far better than last value."""
        from repro.analysis.accuracy import evaluate_predictor
        from repro.core.predictors import GPHTPredictor, LastValuePredictor

        a = benchmark("crafty_in").trace(n_intervals=150)
        b = benchmark("swim_in").trace(n_intervals=150)
        combined = round_robin([a, b], quantum_uops=200_000_000)
        series = combined.mem_per_uop_series()
        gpht = evaluate_predictor(GPHTPredictor(8, 128), series)
        last = evaluate_predictor(LastValuePredictor(), series)
        assert gpht.accuracy > last.accuracy + 0.2
