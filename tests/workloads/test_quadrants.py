"""Tests for Figure 3 quadrant categorisation."""

import pytest

from repro.workloads.quadrants import (
    BenchmarkPlacement,
    Quadrant,
    QuadrantThresholds,
    categorize,
    place_all,
    place_benchmark,
)
from repro.workloads.spec2000 import SPEC2000_BENCHMARKS, benchmark


class TestCategorize:
    @pytest.mark.parametrize(
        "variability,savings,expected",
        [
            (5.0, 0.003, Quadrant.Q1),
            (5.0, 0.030, Quadrant.Q2),
            (50.0, 0.030, Quadrant.Q3),
            (50.0, 0.003, Quadrant.Q4),
        ],
    )
    def test_four_quadrants(self, variability, savings, expected):
        assert categorize(variability, savings) == expected

    def test_thresholds_are_exclusive(self):
        thresholds = QuadrantThresholds(
            variability_pct=20.0, savings_potential=0.012
        )
        assert categorize(20.0, 0.012, thresholds) == Quadrant.Q1

    def test_custom_thresholds(self):
        thresholds = QuadrantThresholds(
            variability_pct=1.0, savings_potential=0.001
        )
        assert categorize(2.0, 0.002, thresholds) == Quadrant.Q3

    def test_str(self):
        assert "stable" in str(Quadrant.Q1)


class TestPlacement:
    def test_placement_fields(self):
        placement = place_benchmark(benchmark("swim_in"))
        assert isinstance(placement, BenchmarkPlacement)
        assert placement.name == "swim_in"
        assert placement.savings_potential > 0.02

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("crafty_in", Quadrant.Q1),
            ("gzip_program", Quadrant.Q1),
            ("swim_in", Quadrant.Q2),
            ("mcf_inp", Quadrant.Q2),
            ("applu_in", Quadrant.Q3),
            ("equake_in", Quadrant.Q3),
            ("mgrid_in", Quadrant.Q3),
            ("bzip2_program", Quadrant.Q4),
            ("bzip2_graphic", Quadrant.Q4),
        ],
    )
    def test_paper_quadrant_membership(self, name, expected):
        """Figure 3's categorisation of the key benchmarks."""
        assert place_benchmark(benchmark(name)).quadrant == expected

    def test_place_all_covers_registry(self):
        placements = place_all(SPEC2000_BENCHMARKS, n_intervals=200)
        assert set(placements) == set(SPEC2000_BENCHMARKS)

    def test_majority_of_spec_is_q1(self):
        """'Many of the SPEC applications lie very close to the origin.'"""
        placements = place_all(SPEC2000_BENCHMARKS, n_intervals=300)
        q1 = [p for p in placements.values() if p.quadrant == Quadrant.Q1]
        assert len(q1) >= 20
