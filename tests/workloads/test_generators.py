"""Tests for the behaviour-pattern generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    BurstPattern,
    CyclePattern,
    FlatPattern,
    MarkovPattern,
    MotifElement,
    MotifPattern,
    RampPattern,
)


def rng(seed=42):
    return np.random.default_rng(seed)


class TestDeterminism:
    @pytest.mark.parametrize(
        "pattern",
        [
            FlatPattern(0.01, 1.0, mem_sigma=0.001),
            MotifPattern(
                (MotifElement(0.001, 1.8, 2), MotifElement(0.03, 1.2, 1)),
                mem_sigma=0.0005,
                duration_jitter=0.2,
            ),
            BurstPattern((0.002, 1.5), (0.01, 1.2), 0.1),
            MarkovPattern(
                [(0.001, 1.5), (0.03, 1.0)], [[0.8, 0.2], [0.3, 0.7]]
            ),
        ],
    )
    def test_same_seed_same_series(self, pattern):
        a = pattern.generate(200, rng(7))
        b = pattern.generate(200, rng(7))
        assert np.array_equal(a, b)


class TestShapeAndBounds:
    @pytest.mark.parametrize(
        "pattern",
        [
            FlatPattern(0.01, 1.0, mem_sigma=0.05, upc_sigma=3.0),
            RampPattern((0.0, 0.1), (0.1, 2.5), 10),
            BurstPattern((0.0, 0.1), (0.5, 3.0), 0.5),
        ],
    )
    def test_output_shape_and_physical_bounds(self, pattern):
        series = pattern.generate(300, rng())
        assert series.shape == (300, 2)
        assert np.all(series[:, 0] >= 0.0)
        assert np.all(series[:, 0] <= 0.2)
        assert np.all(series[:, 1] >= 0.05)
        assert np.all(series[:, 1] <= 2.0)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ConfigurationError):
            FlatPattern(0.01, 1.0).generate(0, rng())


class TestFlatPattern:
    def test_noise_free_is_constant(self):
        series = FlatPattern(0.012, 1.3).generate(50, rng())
        assert np.all(series[:, 0] == 0.012)
        assert np.all(series[:, 1] == 1.3)

    def test_noise_has_requested_scale(self):
        series = FlatPattern(0.05, 1.0, mem_sigma=0.005).generate(5000, rng())
        assert series[:, 0].std() == pytest.approx(0.005, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlatPattern(-0.01, 1.0)
        with pytest.raises(ConfigurationError):
            FlatPattern(0.01, 0.0)
        with pytest.raises(ConfigurationError):
            FlatPattern(0.01, 1.0, mem_sigma=-1)


class TestMotifPattern:
    def test_repeats_elements_in_order(self):
        pattern = MotifPattern(
            (MotifElement(0.001, 1.5, 2), MotifElement(0.03, 1.0, 1))
        )
        series = pattern.generate(6, rng())
        assert series[:, 0].tolist() == [0.001, 0.001, 0.03, 0.001, 0.001, 0.03]

    def test_period(self):
        pattern = MotifPattern(
            (MotifElement(0.001, 1.5, 3), MotifElement(0.03, 1.0, 2))
        )
        assert pattern.period == 5

    def test_duration_jitter_changes_lengths(self):
        pattern = MotifPattern(
            (MotifElement(0.001, 1.5, 3), MotifElement(0.03, 1.0, 3)),
            duration_jitter=1.0,
        )
        series = pattern.generate(60, rng())
        run_lengths = []
        current = 1
        for a, b in zip(series[:-1, 0], series[1:, 0]):
            if a == b:
                current += 1
            else:
                run_lengths.append(current)
                current = 1
        assert set(run_lengths) - {3} != set()

    def test_jitter_never_drops_element(self):
        pattern = MotifPattern(
            (MotifElement(0.001, 1.5, 1), MotifElement(0.03, 1.0, 1)),
            duration_jitter=1.0,
        )
        series = pattern.generate(100, rng())
        assert 0.001 in series[:, 0]
        assert 0.03 in series[:, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MotifPattern(())
        with pytest.raises(ConfigurationError):
            MotifElement(0.01, 1.0, duration=0)
        with pytest.raises(ConfigurationError):
            MotifPattern((MotifElement(0.01, 1.0, 1),), duration_jitter=1.5)


class TestCyclePattern:
    def test_blocks_visited_round_robin(self):
        pattern = CyclePattern(
            [
                (FlatPattern(0.001, 1.0), 3),
                (FlatPattern(0.03, 1.0), 2),
            ]
        )
        series = pattern.generate(10, rng())
        assert series[:, 0].tolist() == [
            0.001, 0.001, 0.001, 0.03, 0.03,
            0.001, 0.001, 0.001, 0.03, 0.03,
        ]

    def test_truncates_final_block(self):
        pattern = CyclePattern([(FlatPattern(0.01, 1.0), 7)])
        assert pattern.generate(5, rng()).shape == (5, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CyclePattern([])
        with pytest.raises(ConfigurationError):
            CyclePattern([(FlatPattern(0.01, 1.0), 0)])


class TestBurstPattern:
    def test_no_bursts_with_zero_probability(self):
        pattern = BurstPattern((0.002, 1.5), (0.02, 1.0), 0.0)
        series = pattern.generate(100, rng())
        assert np.all(series[:, 0] == 0.002)

    def test_always_bursting_with_probability_one(self):
        pattern = BurstPattern((0.002, 1.5), (0.02, 1.0), 1.0)
        series = pattern.generate(100, rng())
        assert np.all(series[:, 0] == 0.02)

    def test_bursts_have_requested_length(self):
        pattern = BurstPattern((0.0, 1.5), (0.02, 1.0), 0.05, burst_length=3)
        series = pattern.generate(2000, rng())
        in_burst = series[:, 0] == 0.02
        # Count maximal runs of burst samples; all should be 3 except a
        # possibly truncated final one.
        runs = []
        count = 0
        for flag in in_burst:
            if flag:
                count += 1
            elif count:
                runs.append(count)
                count = 0
        assert runs
        # Back-to-back bursts can chain, so runs are multiples of 3.
        assert all(r % 3 == 0 for r in runs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstPattern((0.0, 1.0), (0.1, 1.0), 1.5)
        with pytest.raises(ConfigurationError):
            BurstPattern((0.0, 1.0), (0.1, 1.0), 0.5, burst_length=0)


class TestMarkovPattern:
    def test_transition_statistics(self):
        pattern = MarkovPattern(
            [(0.001, 1.5), (0.03, 1.0)], [[0.9, 0.1], [0.5, 0.5]]
        )
        series = pattern.generate(20_000, rng())
        state = (series[:, 0] == 0.03).astype(int)
        leave_zero = np.mean(state[1:][state[:-1] == 0])
        assert leave_zero == pytest.approx(0.1, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MarkovPattern([], [])
        with pytest.raises(ConfigurationError):
            MarkovPattern([(0.0, 1.0)], [[0.5]])
        with pytest.raises(ConfigurationError):
            MarkovPattern(
                [(0.0, 1.0), (0.1, 1.0)], [[0.9, 0.2], [0.5, 0.5]]
            )


class TestRampPattern:
    def test_linear_interpolation(self):
        pattern = RampPattern((0.0, 1.0), (0.01, 2.0), length=5)
        series = pattern.generate(5, rng())
        assert series[0, 0] == pytest.approx(0.0)
        assert series[-1, 0] == pytest.approx(0.01)
        diffs = np.diff(series[:, 0])
        assert np.allclose(diffs, diffs[0])

    def test_repeats(self):
        pattern = RampPattern((0.0, 1.0), (0.01, 1.0), length=4)
        series = pattern.generate(8, rng())
        assert np.allclose(series[:4, 0], series[4:, 0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RampPattern((0.0, 1.0), (0.01, 1.0), length=1)
