"""Tests for workload trace serialisation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads.serialization import (
    SCHEMA_VERSION,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.workloads.segments import SegmentSpec, WorkloadTrace
from repro.workloads.spec2000 import benchmark


@pytest.fixture
def trace():
    return WorkloadTrace(
        "sample",
        [
            SegmentSpec(
                uops=1_000_000,
                mem_per_uop=0.0123,
                upc_core=1.4,
                uops_per_instruction=1.2,
                mem_overlap=0.25,
            ),
            SegmentSpec(uops=2_000_000, mem_per_uop=0.0, upc_core=1.9),
        ],
    )


class TestRoundTrip:
    def test_dict_round_trip(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.name == trace.name
        assert rebuilt.segments == trace.segments

    def test_json_round_trip(self, trace):
        rebuilt = trace_from_json(trace_to_json(trace))
        assert rebuilt.segments == trace.segments

    def test_benchmark_trace_round_trip(self):
        original = benchmark("applu_in").trace(n_intervals=50)
        rebuilt = trace_from_json(trace_to_json(original))
        assert rebuilt.total_uops == original.total_uops
        assert rebuilt.mem_per_uop_series() == original.mem_per_uop_series()

    def test_document_shape(self, trace):
        document = trace_to_dict(trace)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["name"] == "sample"
        assert len(document["segments"]) == 2
        assert len(document["segments"][0]) == len(document["fields"])


class TestValidation:
    def test_rejects_wrong_version(self, trace):
        document = trace_to_dict(trace)
        document["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema version"):
            trace_from_dict(document)

    def test_rejects_wrong_fields(self, trace):
        document = trace_to_dict(trace)
        document["fields"] = ["uops"]
        with pytest.raises(ConfigurationError, match="field layout"):
            trace_from_dict(document)

    def test_rejects_missing_name(self, trace):
        document = trace_to_dict(trace)
        document["name"] = ""
        with pytest.raises(ConfigurationError, match="name"):
            trace_from_dict(document)

    def test_rejects_empty_segments(self, trace):
        document = trace_to_dict(trace)
        document["segments"] = []
        with pytest.raises(ConfigurationError, match="no segments"):
            trace_from_dict(document)

    def test_rejects_short_rows(self, trace):
        document = trace_to_dict(trace)
        document["segments"][0] = [1, 2]
        with pytest.raises(ConfigurationError, match="fields"):
            trace_from_dict(document)

    def test_rejects_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid trace JSON"):
            trace_from_json("{not json")

    def test_rejects_non_object_json(self):
        with pytest.raises(ConfigurationError, match="object"):
            trace_from_json(json.dumps([1, 2, 3]))

    def test_segment_validation_still_applies(self, trace):
        document = trace_to_dict(trace)
        document["segments"][0][0] = 0  # zero uops
        with pytest.raises(ConfigurationError):
            trace_from_dict(document)
