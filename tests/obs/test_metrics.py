"""Tests for the metrics registry and trace-derived metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    CellFinished,
    DVFSTransition,
    IntervalSampled,
    PhaseClassified,
    PMIHandled,
    PredictionMade,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    trace_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_gauge_keeps_last_value(self):
        gauge = Gauge("g")
        gauge.set(1.5)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_empty_histogram_mean(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3
        assert registry.names() == ("a", "b", "c")
        assert "a" in registry and "z" not in registry

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("a")

    def test_to_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("rate").set(0.75)
        registry.histogram("t").observe(2.0)
        snapshot = registry.to_dict()
        assert snapshot["hits"] == {"kind": "counter", "value": 3.0}
        assert snapshot["rate"] == {"kind": "gauge", "value": 0.75}
        assert snapshot["t"]["kind"] == "histogram"
        assert snapshot["t"]["count"] == 1.0
        assert snapshot["t"]["mean"] == 2.0

    def test_empty_histogram_snapshot_has_finite_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("t")
        snapshot = registry.to_dict()["t"]
        assert snapshot["min"] == 0.0
        assert snapshot["max"] == 0.0

    def test_rows_render_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("empty")
        rows = dict(registry.rows())
        assert rows["hits"] == "3"
        assert rows["empty"] == "n=0"


def interval(index, mem_per_uop=0.002, upc=1.0):
    return IntervalSampled(
        interval=index,
        time_s=0.05 * (index + 1),
        uops=100_000_000,
        mem_transactions=200_000,
        instructions=0,
        tsc_cycles=80_000_000,
        mem_per_uop=mem_per_uop,
        upc=upc,
        frequency_mhz=3000.0,
    )


def prediction(index, hit, warmup=False, installed=False, evicted=False):
    return PredictionMade(
        interval=index,
        predictor="GPHT_8_128",
        predicted_phase=1,
        pht_hit=hit,
        installed=installed,
        evicted=evicted,
        warmup=warmup,
        occupancy=index,
    )


class TestTraceMetrics:
    def test_event_counts(self):
        registry = trace_metrics([interval(0), interval(1)])
        assert registry.counter("events.interval_sampled").value == 2

    def test_predictor_metrics(self):
        events = [
            prediction(0, hit=False, warmup=True),
            prediction(1, hit=False, installed=True),
            prediction(2, hit=True),
            prediction(3, hit=True),
        ]
        registry = trace_metrics(events)
        assert registry.counter("predictor.pht_hits").value == 2
        assert registry.counter("predictor.pht_misses").value == 2
        assert registry.counter("predictor.warmup_lookups").value == 1
        assert registry.counter("predictor.pht_installs").value == 1
        assert "predictor.pht_evictions" not in registry
        assert registry.gauge("predictor.pht_hit_rate").value == 0.5
        assert registry.gauge("predictor.pht_occupancy").value == 3.0

    def test_phase_residency(self):
        events = [
            PhaseClassified(interval=i, governor="g", metric=0.001, phase=p)
            for i, p in enumerate([1, 1, 5])
        ]
        registry = trace_metrics(events)
        assert registry.counter("phase.residency.1").value == 2
        assert registry.counter("phase.residency.5").value == 1

    def test_transitions_per_1k_intervals(self):
        events = [interval(i) for i in range(100)]
        events.append(
            DVFSTransition(
                interval=10,
                from_mhz=3000.0,
                to_mhz=1500.0,
                from_voltage_v=1.4,
                to_voltage_v=1.2,
                transition_s=1e-05,
                predicted_phase=5,
            )
        )
        registry = trace_metrics(events)
        assert registry.counter("dvfs.transitions").value == 1
        assert registry.gauge("dvfs.transitions_per_1k_intervals").value == 10.0

    def test_cell_cache_hit_rate_and_wall_time(self):
        def cell(index, cached, seconds):
            return CellFinished(
                interval=index,
                label=f"cell-{index}",
                kind="comparison",
                benchmark="applu_in",
                cached=cached,
                seconds=seconds,
            )

        registry = trace_metrics(
            [cell(0, True, 0.0), cell(1, False, 0.5), cell(2, False, 1.5)]
        )
        assert registry.counter("cells.total").value == 3
        assert registry.counter("cells.cached").value == 1
        assert registry.gauge("cells.cache_hit_rate").value == pytest.approx(
            1 / 3
        )
        assert registry.histogram("cells.seconds").count == 2
        assert registry.histogram("cells.seconds").mean == 1.0

    def test_pmi_handler_histogram(self):
        events = [
            PMIHandled(
                interval=i, time_s=0.05, handler_seconds=1e-05, transition_s=0.0
            )
            for i in range(3)
        ]
        registry = trace_metrics(events)
        assert registry.histogram("pmi.handler_seconds").count == 3

    def test_empty_stream(self):
        registry = trace_metrics([])
        assert registry.counter("predictor.pht_hits").value == 0
        assert "predictor.pht_hit_rate" not in registry
