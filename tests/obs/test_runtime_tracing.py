"""End-to-end tracing properties: reconciliation and zero perturbation.

Two contracts hold the whole observability layer together:

* **Reconciliation** — the event stream is an exact account of the
  simulation: ``PredictionMade`` events match the predictor's own
  hit/miss counters one for one, ``IntervalSampled``/``PMIHandled``
  match the interval count, and ``DVFSTransition`` matches the managed
  run's transition count.
* **Zero perturbation** — recording a trace never changes a result:
  a traced sweep is bit-identical (over ``to_json``) to an untraced
  one, serially and across worker processes.
"""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.sweeps import sweep_pht_entries
from repro.core.governor import PhasePredictionGovernor
from repro.core.predictors import GPHTPredictor
from repro.exec.engine import make_engine
from repro.obs.events import DVFSTransition, PMIHandled, PredictionMade
from repro.obs.tracer import RingBufferTracer
from repro.system.machine import Machine
from repro.workloads.spec2000 import benchmark

INTERVALS = 120


def traced_run(name="applu_in", n_intervals=INTERVALS):
    machine = Machine()
    trace = benchmark(name).trace(n_intervals=n_intervals)
    governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
    tracer = RingBufferTracer()
    run = machine.run(trace, governor, tracer=tracer)
    return run, governor, tracer


def by_type(tracer, cls):
    return [e for e in tracer.events() if isinstance(e, cls)]


class TestReconciliation:
    @pytest.mark.parametrize("name", ["applu_in", "mcf_inp", "swim_in"])
    def test_prediction_events_match_predictor_counters(self, name):
        _, governor, tracer = traced_run(name)
        predictions = by_type(tracer, PredictionMade)
        predictor = governor.predictor
        assert len(predictions) == predictor.hits + predictor.misses
        assert sum(e.pht_hit for e in predictions) == predictor.hits
        assert sum(not e.pht_hit for e in predictions) == predictor.misses

    def test_warmup_lookups_never_install(self):
        _, _, tracer = traced_run()
        for event in by_type(tracer, PredictionMade):
            if event.warmup:
                assert not event.pht_hit
                assert not event.installed
                assert event.occupancy == 0

    def test_final_occupancy_matches_pht(self):
        _, governor, tracer = traced_run()
        last = by_type(tracer, PredictionMade)[-1]
        assert last.occupancy == governor.predictor.pht_occupancy

    def test_one_pmi_event_per_interval(self):
        run, _, tracer = traced_run()
        handled = by_type(tracer, PMIHandled)
        assert len(handled) == len(run.intervals) == INTERVALS
        assert [e.interval for e in handled] == list(range(INTERVALS))

    def test_transition_events_match_run_count(self):
        run, _, tracer = traced_run()
        transitions = by_type(tracer, DVFSTransition)
        assert len(transitions) == run.transition_count
        for event in transitions:
            assert event.from_mhz != event.to_mhz

    def test_offline_replay_reconciles_too(self):
        series = benchmark("equake_in").mem_series(400)
        predictor = GPHTPredictor(8, 128)
        tracer = RingBufferTracer()
        evaluate_predictor(predictor, series, tracer=tracer)
        predictions = by_type(tracer, PredictionMade)
        assert sum(e.pht_hit for e in predictions) == predictor.hits
        assert sum(not e.pht_hit for e in predictions) == predictor.misses


class TestZeroPerturbation:
    def test_traced_run_is_bit_identical(self):
        machine = Machine()
        trace = benchmark("applu_in").trace(n_intervals=60)
        untraced = machine.run(trace, PhasePredictionGovernor(GPHTPredictor()))
        traced = machine.run(
            trace,
            PhasePredictionGovernor(GPHTPredictor()),
            tracer=RingBufferTracer(),
        )
        assert traced == untraced

    def pht_sweep(self, tracer=None, jobs=1):
        engine = make_engine(jobs=jobs, tracer=tracer)
        result = sweep_pht_entries(
            ["applu_in", "swim_in"],
            pht_sizes=[1, 128],
            n_intervals=200,
            engine=engine,
        )
        # Provenance carries wall-clock accounting; the determinism
        # contract is over the measured payload.
        return result.with_provenance(None).to_json()

    def test_traced_sweep_to_json_bit_identical_serial(self):
        tracer = RingBufferTracer()
        assert self.pht_sweep(tracer) == self.pht_sweep(None)
        assert len(tracer) > 0  # the trace actually recorded

    def test_traced_sweep_to_json_bit_identical_parallel(self):
        tracer = RingBufferTracer()
        assert self.pht_sweep(tracer, jobs=2) == self.pht_sweep(None, jobs=2)
        assert self.pht_sweep(None, jobs=2) == self.pht_sweep(None, jobs=1)
