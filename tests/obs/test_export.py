"""Tests for trace export: JSONL round trip, CSV flattening, summaries."""

import csv
import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import IntervalSampled, PhaseClassified, PredictionMade
from repro.obs.export import (
    events_from_jsonl,
    events_to_csv,
    events_to_jsonl,
    summary_text,
    trace_columns,
)


def sample_events():
    return (
        IntervalSampled(
            interval=0,
            time_s=0.05457195569088904,
            uops=100_000_000,
            mem_transactions=175_349,
            instructions=0,
            tsc_cycles=81_857_933,
            mem_per_uop=2.0 / 3.0,
            upc=1.2216286886305758,
            frequency_mhz=1500.0,
        ),
        PhaseClassified(
            interval=0, governor="GPHT_8_128", metric=2.0 / 3.0, phase=5
        ),
        PredictionMade(
            interval=0,
            predictor="GPHT_8_128",
            predicted_phase=5,
            pht_hit=False,
            installed=False,
            evicted=False,
            warmup=True,
            occupancy=0,
        ),
    )


class TestJsonl:
    def test_round_trip_is_exact(self):
        events = sample_events()
        assert events_from_jsonl(events_to_jsonl(events)) == events

    def test_one_object_per_line(self):
        text = events_to_jsonl(sample_events())
        lines = text.splitlines()
        assert len(lines) == 3
        assert text.endswith("\n")
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_floats_serialize_bit_exactly(self):
        (line,) = events_to_jsonl(sample_events()[:1]).splitlines()
        assert json.loads(line)["mem_per_uop"] == 2.0 / 3.0

    def test_empty_stream(self):
        assert events_to_jsonl(()) == ""
        assert events_from_jsonl("") == ()

    def test_blank_lines_skipped(self):
        text = events_to_jsonl(sample_events())
        assert events_from_jsonl("\n" + text + "\n\n") == sample_events()

    def test_invalid_json_reports_line_number(self):
        text = events_to_jsonl(sample_events()) + "{broken\n"
        with pytest.raises(ConfigurationError, match="line 4"):
            events_from_jsonl(text)

    def test_non_object_line_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            events_from_jsonl("[1, 2]\n")


class TestCsv:
    def test_header_leads_with_event_and_interval(self):
        columns = trace_columns(sample_events())
        assert columns[:2] == ("event", "interval")
        assert list(columns[2:]) == sorted(columns[2:])

    def test_missing_fields_are_blank_cells(self):
        rows = list(csv.DictReader(io.StringIO(events_to_csv(sample_events()))))
        assert len(rows) == 3
        by_event = {row["event"]: row for row in rows}
        assert by_event["phase_classified"]["uops"] == ""
        assert by_event["interval_sampled"]["uops"] == "100000000"
        assert by_event["prediction_made"]["warmup"] == "True"

    def test_lossless_over_the_union_of_fields(self):
        rows = list(csv.DictReader(io.StringIO(events_to_csv(sample_events()))))
        for event, row in zip(sample_events(), rows):
            for key, value in event.to_dict().items():
                assert row[key] == str(value)


class TestSummary:
    def test_counts_and_metrics_sections(self):
        text = summary_text(sample_events())
        assert "Trace summary (3 events)" in text
        assert "interval_sampled" in text
        assert "Derived metrics" in text
        assert "predictor.pht_hit_rate" in text
        assert "phase.residency.5" in text

    def test_empty_trace(self):
        text = summary_text(())
        assert "Trace summary (0 events)" in text
