"""Tests for the typed trace event schema and registry."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    EVENT_TYPES,
    CellFinished,
    CellStarted,
    DVFSTransition,
    IntervalSampled,
    PhaseClassified,
    PMIHandled,
    PredictionMade,
    Scalar,
    SessionMigrated,
    SessionRestored,
    TraceEvent,
    WorkerDied,
    WorkerRestarted,
    event_from_dict,
    event_types,
    register_event,
)


def sample_prediction(**overrides):
    defaults = dict(
        interval=3,
        predictor="GPHT_8_128",
        predicted_phase=2,
        pht_hit=True,
        installed=False,
        evicted=False,
        warmup=False,
        occupancy=17,
    )
    defaults.update(overrides)
    return PredictionMade(**defaults)


class TestRegistry:
    def test_all_event_types_registered(self):
        assert event_types() == (
            "cell_finished",
            "cell_started",
            "dvfs_transition",
            "interval_sampled",
            "phase_classified",
            "pmi_handled",
            "prediction_made",
            "session_closed",
            "session_degraded",
            "session_migrated",
            "session_opened",
            "session_restored",
            "worker_died",
            "worker_restarted",
        )

    def test_registry_maps_type_to_class(self):
        assert EVENT_TYPES["prediction_made"] is PredictionMade
        assert EVENT_TYPES["interval_sampled"] is IntervalSampled

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):

            @register_event
            @dataclasses.dataclass(frozen=True)
            class Clash(TraceEvent):
                event_type = "prediction_made"

    def test_empty_event_type_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):

            @register_event
            @dataclasses.dataclass(frozen=True)
            class Anonymous(TraceEvent):
                pass


class TestSchema:
    def test_events_are_frozen(self):
        event = sample_prediction()
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.interval = 4

    def test_every_field_is_a_json_scalar(self):
        scalar_types = (str, int, float, bool)
        for cls in EVENT_TYPES.values():
            instance_fields = dataclasses.fields(cls)
            assert instance_fields, cls
            for field in instance_fields:
                assert field.name.isidentifier()
        event = sample_prediction()
        for value in event.to_dict().values():
            assert isinstance(value, scalar_types)

    def test_to_dict_leads_with_event_key(self):
        payload = sample_prediction().to_dict()
        assert next(iter(payload)) == "event"
        assert payload["event"] == "prediction_made"
        assert payload["interval"] == 3
        assert payload["occupancy"] == 17


class TestRoundTrip:
    @pytest.mark.parametrize(
        "event",
        [
            IntervalSampled(
                interval=0,
                time_s=0.05,
                uops=100_000_000,
                mem_transactions=175_349,
                instructions=0,
                tsc_cycles=81_857_933,
                mem_per_uop=0.00175,
                upc=1.22,
                frequency_mhz=1500.0,
            ),
            PhaseClassified(
                interval=1, governor="GPHT_8_128", metric=0.0021, phase=2
            ),
            sample_prediction(),
            DVFSTransition(
                interval=2,
                from_mhz=3000.0,
                to_mhz=1500.0,
                from_voltage_v=1.4,
                to_voltage_v=1.2,
                transition_s=1e-05,
                predicted_phase=5,
            ),
            PMIHandled(
                interval=4, time_s=0.25, handler_seconds=1e-05, transition_s=0.0
            ),
            CellStarted(
                interval=0,
                label="comparison/applu_in",
                kind="comparison",
                benchmark="applu_in",
            ),
            CellFinished(
                interval=0,
                label="comparison/applu_in",
                kind="comparison",
                benchmark="applu_in",
                cached=True,
                seconds=0.0,
            ),
            WorkerDied(
                interval=12, worker=1, reason="process is not running"
            ),
            WorkerRestarted(interval=18, worker=1, sessions_restored=3),
            SessionMigrated(
                interval=25,
                session="s4",
                from_worker=0,
                to_worker=1,
                samples=128,
            ),
            SessionRestored(interval=19, session="s4", samples=96),
        ],
    )
    def test_dict_round_trip_is_exact(self, event):
        assert event_from_dict(event.to_dict()) == event


class TestValidation:
    def test_missing_event_key(self):
        with pytest.raises(ConfigurationError, match="missing 'event'"):
            event_from_dict({"interval": 0})

    def test_unknown_event_type(self):
        with pytest.raises(ConfigurationError, match="unknown trace event"):
            event_from_dict({"event": "nope", "interval": 0})

    def test_unexpected_fields_rejected(self):
        payload = sample_prediction().to_dict()
        payload["extra"] = 1
        with pytest.raises(ConfigurationError, match="unexpected fields"):
            event_from_dict(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            event_from_dict({"event": "prediction_made", "interval": 0})
