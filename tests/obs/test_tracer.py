"""Tests for the trace collectors (no-op default, bounded ring)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import PhaseClassified
from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    RingBufferTracer,
    Tracer,
)


def classified(interval, phase=1):
    return PhaseClassified(
        interval=interval, governor="g", metric=0.001, phase=phase
    )


class TestNullTracer:
    def test_disabled_singleton(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)

    def test_emit_and_begin_interval_are_no_ops(self):
        NULL_TRACER.begin_interval(5)
        NULL_TRACER.emit(classified(5))
        assert NULL_TRACER.interval == -1

    def test_enabled_is_a_class_attribute(self):
        # The hot-loop guard must not require instance dict lookups.
        assert "enabled" not in vars(NULL_TRACER)
        assert NullTracer.enabled is False
        assert RingBufferTracer.enabled is True


class TestRingBufferTracer:
    def test_records_in_order(self):
        tracer = RingBufferTracer()
        events = [classified(i) for i in range(4)]
        for event in events:
            tracer.emit(event)
        assert tracer.events() == tuple(events)
        assert len(tracer) == 4
        assert tracer.emitted == 4
        assert tracer.dropped == 0

    def test_default_capacity(self):
        assert RingBufferTracer().capacity == DEFAULT_CAPACITY

    def test_ring_bound_keeps_most_recent(self):
        tracer = RingBufferTracer(capacity=3)
        for i in range(10):
            tracer.emit(classified(i))
        assert [e.interval for e in tracer.events()] == [7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.dropped == 7
        assert len(tracer) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RingBufferTracer(capacity=0)

    def test_begin_interval_tracks_index(self):
        tracer = RingBufferTracer()
        assert tracer.interval == -1
        tracer.begin_interval(0)
        assert tracer.interval == 0
        tracer.begin_interval(7)
        assert tracer.interval == 7

    def test_interval_may_restart_at_zero(self):
        # One tracer may record several runs back to back (e.g. the
        # governor-comparison harness); each run restarts at 0.
        tracer = RingBufferTracer()
        tracer.begin_interval(100)
        tracer.begin_interval(0)
        assert tracer.interval == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            RingBufferTracer().begin_interval(-1)

    def test_counts_by_type_sorted(self):
        tracer = RingBufferTracer()
        tracer.emit(classified(0))
        tracer.emit(classified(1))
        assert tracer.counts_by_type() == {"phase_classified": 2}

    def test_clear_resets_everything(self):
        tracer = RingBufferTracer(capacity=2)
        tracer.begin_interval(3)
        for i in range(5):
            tracer.emit(classified(i))
        tracer.clear()
        assert tracer.events() == ()
        assert tracer.emitted == 0
        assert tracer.dropped == 0
        assert tracer.interval == -1
