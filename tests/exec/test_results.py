"""Tests for the typed result objects and their legacy-dict shims."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.results import (
    ComparisonCell,
    ComparisonSuiteResult,
    Provenance,
    SweepCell,
    SweepResult,
)


def make_sweep(metric="accuracy"):
    cells = (
        SweepCell.create(("applu_in", 1), {"accuracy": 0.25,
                                           "misprediction_rate": 0.75}),
        SweepCell.create(("applu_in", 128), {"accuracy": 0.75,
                                             "misprediction_rate": 0.25}),
        SweepCell.create(("swim_in", 1), {"accuracy": 0.5,
                                          "misprediction_rate": 0.5}),
        SweepCell.create(("swim_in", 128), {"accuracy": 0.9,
                                            "misprediction_rate": 0.1}),
    )
    return SweepResult(
        name="pht_entries",
        axes=("benchmark", "pht_entries"),
        cells=cells,
        parameters=(("gphr_depth", 8), ("phase_edges", (0.005, 0.02))),
        metric=metric,
        provenance=Provenance(
            runner="serial", total_cells=4, cache_hits=1, executed=3,
            wall_seconds=0.1, cell_seconds=0.09,
        ),
    )


def make_suite():
    cells = (
        ComparisonCell.create("applu_in", {"edp_improvement": 0.3,
                                           "power_savings": 0.4}),
        ComparisonCell.create("swim_in", {"edp_improvement": 0.6,
                                          "power_savings": 0.5}),
    )
    return ComparisonSuiteResult(
        name="gpht-table2",
        governor="gpht",
        policy="table2",
        n_intervals=300,
        cells=cells,
        provenance=Provenance.inline(2, 0.5),
    )


class TestSweepResultTypedAccess:
    def test_axis_values_preserve_order(self):
        result = make_sweep()
        assert result.axis_values("benchmark") == ("applu_in", "swim_in")
        assert result.axis_values("pht_entries") == (1, 128)

    def test_value_uses_primary_metric(self):
        result = make_sweep()
        assert result.value("swim_in", 128) == 0.9
        assert result.value("swim_in", 128,
                            metric="misprediction_rate") == 0.1

    def test_unknown_key_or_metric_raises(self):
        result = make_sweep()
        with pytest.raises(ConfigurationError):
            result.cell("nosuch", 1)
        with pytest.raises(ConfigurationError):
            result.value("swim_in", 128, metric="nosuch")

    def test_value_without_metric_requires_primary(self):
        result = make_sweep(metric=None)
        with pytest.raises(ConfigurationError):
            result.value("swim_in", 128)

    def test_parameter_lookup(self):
        result = make_sweep()
        assert result.parameter("gphr_depth") == 8
        assert result.parameter("missing", 9) == 9

    def test_key_arity_is_validated(self):
        with pytest.raises(ConfigurationError):
            SweepResult(
                name="bad",
                axes=("a", "b"),
                cells=(SweepCell.create((1,), {"x": 1.0}),),
            )

    def test_float_metric_rejects_non_numeric(self):
        cell = SweepCell.create(("x",), {"flag": True, "name": "y"})
        with pytest.raises(ConfigurationError):
            cell.float_metric("flag")
        with pytest.raises(ConfigurationError):
            cell.float_metric("name")


class TestSweepResultRoundTrips:
    def test_payload_round_trip_is_lossless(self):
        result = make_sweep()
        assert SweepResult.from_payload(result.to_payload()) == result

    def test_json_round_trip_is_lossless(self):
        result = make_sweep()
        rebuilt = SweepResult.from_json(result.to_json())
        assert rebuilt == result
        # provenance is compare=False; check it survives explicitly
        assert rebuilt.provenance == result.provenance

    def test_legacy_nested_round_trip(self):
        result = make_sweep(metric=None)  # metric dicts at the leaves
        rebuilt = SweepResult.from_dict(
            result.to_dict(),
            name=result.name,
            axes=result.axes,
            metric=None,
            parameters=dict(result.parameters),
        )
        assert rebuilt == result

    def test_to_dict_with_primary_metric_flattens_leaves(self):
        nested = make_sweep().to_dict()
        assert nested["applu_in"][128] == 0.75


class TestDictStyleShimRemoved:
    def test_no_dict_style_surface_remains(self):
        # The PR-2 deprecation shims have graduated to removal: the only
        # nested-dict paths are the explicit to_dict()/from_dict() pair.
        result = make_sweep()
        with pytest.raises(TypeError):
            result["applu_in"]
        with pytest.raises(TypeError):
            len(result)
        with pytest.raises(TypeError):
            iter(result)
        for legacy in ("keys", "items", "values", "get"):
            assert not hasattr(result, legacy)


class TestProvenance:
    def test_round_trip(self):
        provenance = Provenance(
            runner="process-pool-4", total_cells=10, cache_hits=4,
            executed=6, wall_seconds=1.5, cell_seconds=5.0,
        )
        assert Provenance.from_dict(provenance.to_dict()) == provenance
        assert provenance.hit_rate == 0.4

    def test_inline_constructor(self):
        provenance = Provenance.inline(3, 0.25)
        assert provenance.runner == "inline"
        assert provenance.total_cells == 3
        assert provenance.executed == 3


class TestComparisonSuiteResult:
    def test_typed_access(self):
        suite = make_suite()
        assert suite.benchmarks == ("applu_in", "swim_in")
        assert suite.value("swim_in", "edp_improvement") == 0.6
        assert suite.cell("applu_in").edp_improvement == 0.3
        assert suite.mean("edp_improvement") == pytest.approx(0.45)

    def test_payload_and_json_round_trips(self):
        suite = make_suite()
        assert ComparisonSuiteResult.from_payload(suite.to_payload()) == suite
        assert ComparisonSuiteResult.from_json(suite.to_json()) == suite

    def test_legacy_nested_round_trip(self):
        suite = make_suite()
        rebuilt = ComparisonSuiteResult.from_dict(
            suite.to_dict(),
            name=suite.name,
            governor=suite.governor,
            policy=suite.policy,
            n_intervals=suite.n_intervals,
        )
        assert rebuilt == suite

    def test_dict_style_surface_removed(self):
        suite = make_suite()
        with pytest.raises(TypeError):
            suite["swim_in"]
        with pytest.raises(TypeError):
            iter(suite)
        for legacy in ("keys", "items", "values", "get"):
            assert not hasattr(suite, legacy)
        # The supported nested path remains the explicit conversion.
        assert suite.to_dict()["swim_in"]["edp_improvement"] == 0.6
