"""The ``learned_accuracy`` sweep cell (train-then-score, in-engine)."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import ExperimentSpec, make_engine
from repro.exec.cells import DEFAULT_TRAIN_SEED, LEARNED_MODELS, evaluate_cell


def _spec(model, **params):
    return ExperimentSpec.create(
        kind="learned_accuracy",
        benchmark="applu_in",
        n_intervals=96,
        model=model,
        **params,
    )


class TestLearnedAccuracyCell:
    @pytest.mark.parametrize("model", LEARNED_MODELS)
    def test_every_model_produces_a_scored_cell(self, model):
        value = evaluate_cell(_spec(model))
        assert value["model"] == model
        assert 0.0 <= value["accuracy"] <= 1.0
        assert value["total"] == 95
        assert value["trained"] == (model in ("tree", "markov"))
        assert value["train_seed"] == DEFAULT_TRAIN_SEED

    def test_overhead_units_reflect_structure_cost(self):
        tree = evaluate_cell(_spec("tree", max_depth=5))
        markov = evaluate_cell(_spec("markov", order=2))
        gpht = evaluate_cell(_spec("gpht"))
        last = evaluate_cell(_spec("last_value"))
        assert 0.0 < tree["overhead_units"] <= 5.0
        assert markov["overhead_units"] == 2.0
        assert gpht["overhead_units"] == 1.0
        assert last["overhead_units"] == 0.0

    def test_cell_is_deterministic(self):
        assert evaluate_cell(_spec("tree")) == evaluate_cell(_spec("tree"))

    def test_training_series_is_held_out(self):
        # Training on a much shorter series must change the result via
        # the trained stratum (and be recorded in the cell value).
        short = evaluate_cell(_spec("markov", train_intervals=16))
        full = evaluate_cell(_spec("markov"))
        assert short["train_intervals"] == 16
        assert full["train_intervals"] == 96

    def test_unknown_model_is_rejected(self):
        with pytest.raises(ConfigurationError, match="learned_accuracy"):
            evaluate_cell(_spec("perceptron"))

    def test_engine_matches_direct_evaluation(self):
        specs = [_spec("tree"), _spec("gpht")]
        engine = make_engine(jobs=2, cache=None)
        report = engine.run(specs)
        for spec in specs:
            assert report.value(spec) == evaluate_cell(spec)
