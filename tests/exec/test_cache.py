"""Tests for the content-addressed result cache."""

import json

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    NullCache,
    ResultCache,
    default_cache_dir,
)
from repro.exec.spec import ExperimentSpec


def make_spec(**overrides):
    defaults = dict(
        kind="predictor_accuracy",
        benchmark="applu_in",
        n_intervals=200,
        predictor="LastValue",
    )
    defaults.update(overrides)
    return ExperimentSpec.create(**defaults)


class TestDefaultDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_falls_back_to_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "repro"


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        assert cache.get(spec) is None
        cache.put(spec, {"accuracy": 0.5})
        assert cache.get(spec) == {"accuracy": 0.5}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1

    def test_identical_spec_hits_from_a_fresh_instance(self, tmp_path):
        ResultCache(tmp_path).put(make_spec(), {"accuracy": 0.25})
        replay = ResultCache(tmp_path)
        assert replay.get(make_spec()) == {"accuracy": 0.25}

    def test_any_spec_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_spec(), {"accuracy": 0.5})
        assert cache.get(make_spec(n_intervals=201)) is None
        assert cache.get(make_spec(predictor="GPHT_8_128")) is None
        assert cache.get(make_spec(seed=1)) is None

    def test_code_version_change_invalidates(self, tmp_path):
        ResultCache(tmp_path, code_version="v1").put(
            make_spec(), {"accuracy": 0.5}
        )
        assert ResultCache(tmp_path, code_version="v2").get(make_spec()) is None

    def test_floats_round_trip_bit_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        value = {"accuracy": 2.0 / 3.0, "misprediction_rate": 1e-17}
        cache.put(spec, value)
        replay = ResultCache(tmp_path).get(spec)
        assert replay == value  # exact equality, not approx

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        (path,) = tmp_path.glob("*/*.json")
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None

    def test_spec_mismatch_in_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        (path,) = tmp_path.glob("*/*.json")
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["spec"]["benchmark"] = "swim_in"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(spec) is None


class TestCorruptionQuarantine:
    """Regression: a corrupt entry must be quarantined, not re-read.

    An earlier bug left damaged files (truncated writes, by-hand edits)
    in place, so every lookup re-parsed the same broken JSON and the
    entry could never be healed by a fresh ``put``.
    """

    def corrupt_one_entry(self, tmp_path, text):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        (path,) = tmp_path.glob("*/*.json")
        path.write_text(text, encoding="utf-8")
        return cache, spec, path

    def test_truncated_json_is_quarantined(self, tmp_path):
        # A torn write: valid prefix of a real entry, cut mid-payload.
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        (path,) = tmp_path.glob("*/*.json")
        full = path.read_text(encoding="utf-8")
        path.write_text(full[: len(full) // 2], encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not path.exists()
        quarantined = list(tmp_path.glob("*/*.corrupt"))
        assert len(quarantined) == 1
        assert quarantined[0].name == path.with_suffix(".corrupt").name

    def test_quarantined_entries_excluded_from_len(self, tmp_path):
        cache, spec, _ = self.corrupt_one_entry(tmp_path, "{not json")
        assert len(cache) == 1
        assert cache.get(spec) is None
        assert len(cache) == 0

    def test_reread_after_quarantine_is_a_plain_miss(self, tmp_path):
        cache, spec, _ = self.corrupt_one_entry(tmp_path, "{not json")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        assert cache.get(spec) is None  # file gone: ordinary miss now
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2

    def test_put_heals_a_quarantined_entry(self, tmp_path):
        cache, spec, _ = self.corrupt_one_entry(tmp_path, "garbage")
        assert cache.get(spec) is None
        cache.put(spec, {"accuracy": 0.75})
        assert cache.get(spec) == {"accuracy": 0.75}

    def test_spec_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        (path,) = tmp_path.glob("*/*.json")
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["spec"]["benchmark"] = "swim_in"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_missing_file_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_spec()) is None
        assert cache.stats.corrupt == 0
        assert cache.stats.misses == 1

    def test_corrupt_original_preserved_for_debugging(self, tmp_path):
        cache, spec, path = self.corrupt_one_entry(tmp_path, "{broken")
        cache.get(spec)
        quarantined = path.with_suffix(".corrupt")
        assert quarantined.read_text(encoding="utf-8") == "{broken"

    def test_put_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        cache.put(spec, {"accuracy": 0.5})
        assert len(cache) == 1


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        spec = make_spec()
        cache.put(spec, {"accuracy": 0.5})
        assert cache.get(spec) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0
