"""Tests for the execution engine: scheduling, hooks, accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.cache import NullCache, ResultCache
from repro.exec.cells import evaluate_cell
from repro.exec.engine import ExecutionEngine, make_engine
from repro.exec.progress import RecordingProgress
from repro.exec.runner import ProcessPoolRunner, SerialRunner, runner_for
from repro.exec.spec import ExperimentSpec


def accuracy_spec(benchmark="applu_in", n_intervals=200, **params):
    params.setdefault("predictor", "LastValue")
    return ExperimentSpec.create(
        "predictor_accuracy",
        benchmark=benchmark,
        n_intervals=n_intervals,
        **params,
    )


class TestRunnerSelection:
    def test_one_job_is_serial(self):
        assert isinstance(runner_for(1), SerialRunner)
        assert runner_for(1).name == "serial"

    def test_many_jobs_is_a_process_pool(self):
        runner = runner_for(3)
        assert isinstance(runner, ProcessPoolRunner)
        assert runner.name == "process-pool-3"

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            runner_for(0)


class TestEngineRun:
    def test_every_requested_spec_is_answered(self):
        specs = [accuracy_spec(), accuracy_spec(predictor="GPHT_8_128")]
        report = make_engine().run(specs)
        assert set(report.values) == set(specs)
        for spec in specs:
            assert report.value(spec) == evaluate_cell(spec)

    def test_duplicates_evaluate_once(self):
        hook = RecordingProgress()
        engine = ExecutionEngine(hooks=(hook,))
        spec = accuracy_spec()
        report = engine.run([spec, spec, spec])
        assert report.stats.total == 1
        assert report.stats.executed == 1
        assert len(hook.events) == 1
        assert report.value(spec) == evaluate_cell(spec)

    def test_hooks_see_every_cell_with_counters(self):
        hook = RecordingProgress()
        engine = ExecutionEngine(hooks=(hook,))
        specs = [accuracy_spec(), accuracy_spec(predictor="FixWindow_8")]
        engine.run(specs)
        assert [e.completed for e in hook.events] == [1, 2]
        assert all(e.total == 2 for e in hook.events)
        assert all(not e.cached for e in hook.events)
        assert all(e.seconds > 0.0 for e in hook.events)

    def test_cache_hits_are_flagged_in_events(self, tmp_path):
        spec = accuracy_spec()
        make_engine(cache=ResultCache(tmp_path)).run([spec])
        hook = RecordingProgress()
        make_engine(cache=ResultCache(tmp_path), hooks=(hook,)).run([spec])
        (event,) = hook.events
        assert event.cached
        assert event.seconds == 0.0

    def test_stats_account_hits_and_executions(self, tmp_path):
        first = accuracy_spec()
        second = accuracy_spec(predictor="GPHT_8_128")
        make_engine(cache=ResultCache(tmp_path)).run([first])
        engine = make_engine(cache=ResultCache(tmp_path))
        report = engine.run([first, second])
        assert report.stats.total == 2
        assert report.stats.cache_hits == 1
        assert report.stats.executed == 1
        assert report.stats.hit_rate == 0.5
        assert report.stats.wall_seconds > 0.0
        assert engine.cache_stats.hits == 1

    def test_provenance_mirrors_stats(self):
        report = make_engine().run([accuracy_spec()])
        provenance = report.provenance()
        assert provenance.runner == "serial"
        assert provenance.total_cells == 1
        assert provenance.executed == 1
        assert provenance.cache_hits == 0

    def test_empty_batch(self):
        report = make_engine().run([])
        assert report.stats.total == 0
        assert dict(report.values) == {}

    def test_null_cache_never_replays(self):
        engine = ExecutionEngine(cache=NullCache())
        spec = accuracy_spec()
        engine.run([spec])
        report = engine.run([spec])
        assert report.stats.cache_hits == 0
        assert report.stats.executed == 1

    def test_cell_errors_propagate(self):
        bad = ExperimentSpec.create(
            "predictor_accuracy",
            benchmark="applu_in",
            n_intervals=50,
            predictor="NoSuchPredictor",
        )
        with pytest.raises(ConfigurationError):
            make_engine().run([bad])

    def test_unknown_kind_fails(self):
        with pytest.raises(ConfigurationError):
            make_engine().run(
                [ExperimentSpec.create("nope", benchmark="applu_in",
                                       n_intervals=10)]
            )
