"""The determinism contract: serial == parallel == cache replay.

These tests hold the engine to the guarantee documented in
``docs/execution_engine.md``: for the same spec list, results are
bit-identical whether cells run serially, fan out over worker
processes, or replay from the on-disk cache.
"""

import pytest

from repro.analysis.sweeps import sweep_pht_entries
from repro.exec.cache import ResultCache
from repro.exec.cells import (
    clear_workload_memos,
    workload_memo_stats,
)
from repro.exec.engine import make_engine
from repro.system.experiment import run_comparison_suite

BENCHMARKS = ("applu_in", "swim_in", "equake_in")
PHT_SIZES = (1, 128)
INTERVALS = 400


def pht_sweep(**engine_kwargs):
    return sweep_pht_entries(
        BENCHMARKS,
        pht_sizes=PHT_SIZES,
        n_intervals=INTERVALS,
        **engine_kwargs,
    )


class TestSerialVsParallel:
    def test_bit_identical_results(self):
        serial = pht_sweep()
        parallel = pht_sweep(jobs=2)
        assert serial == parallel  # provenance excluded from equality
        # belt-and-braces: every float compares exactly
        for cell_a, cell_b in zip(serial.cells, parallel.cells):
            assert cell_a.metrics == cell_b.metrics
        assert parallel.provenance.runner == "process-pool-2"

    def test_comparison_suite_bit_identical(self):
        serial = run_comparison_suite(
            ["swim_in", "crafty_in"], n_intervals=30
        )
        parallel = run_comparison_suite(
            ["swim_in", "crafty_in"], n_intervals=30, jobs=2
        )
        assert serial == parallel


class TestCacheReplay:
    def test_replay_is_bit_identical_with_full_hit_rate(self, tmp_path):
        first = pht_sweep(cache=ResultCache(tmp_path))
        assert first.provenance.cache_hits == 0
        replay = pht_sweep(cache=ResultCache(tmp_path))
        assert replay == first
        assert replay.provenance.cache_hits == replay.provenance.total_cells
        assert replay.provenance.executed == 0

    def test_parallel_fill_serial_replay(self, tmp_path):
        filled = pht_sweep(jobs=2, cache=ResultCache(tmp_path))
        replay = pht_sweep(cache=ResultCache(tmp_path))
        assert replay == filled
        assert replay.provenance.hit_rate == 1.0

    def test_spec_change_misses_identical_spec_hits(self, tmp_path):
        pht_sweep(cache=ResultCache(tmp_path))
        longer = sweep_pht_entries(
            BENCHMARKS,
            pht_sizes=PHT_SIZES,
            n_intervals=INTERVALS + 1,
            cache=ResultCache(tmp_path),
        )
        assert longer.provenance.cache_hits == 0
        again = pht_sweep(cache=ResultCache(tmp_path))
        assert again.provenance.cache_hits == again.provenance.total_cells


class TestSeededSweeps:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_explicit_seed_is_respected_and_deterministic(self, jobs):
        from repro.exec.spec import ExperimentSpec

        def run(seed):
            specs = [
                ExperimentSpec.create(
                    "predictor_accuracy",
                    benchmark=name,
                    n_intervals=200,
                    predictor="GPHT_8_128",
                    seed=seed,
                )
                for name in BENCHMARKS
            ]
            report = make_engine(jobs=jobs).run(specs)
            return [report.value(spec)["accuracy"] for spec in specs]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestSeriesGeneratedOncePerSweep:
    def test_each_benchmark_series_generated_exactly_once(self):
        clear_workload_memos()
        # 3 benchmarks x 4 sizes in one process: 3 generations, 9 reuses.
        sweep_pht_entries(
            BENCHMARKS, pht_sizes=(1, 16, 128, 1024), n_intervals=200
        )
        stats = workload_memo_stats()
        assert stats["series_generated"] == len(BENCHMARKS)
        assert stats["series_reused"] == len(BENCHMARKS) * 3

    def test_traces_shared_across_suite_cells(self):
        clear_workload_memos()
        run_comparison_suite(BENCHMARKS, n_intervals=20)
        run_comparison_suite(
            BENCHMARKS, governor="reactive", n_intervals=20
        )
        stats = workload_memo_stats()
        assert stats["traces_generated"] == len(BENCHMARKS)
        assert stats["traces_reused"] == len(BENCHMARKS)
