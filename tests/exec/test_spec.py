"""Tests for ExperimentSpec: hashing, validation, round-trips."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.spec import CODE_VERSION, ExperimentSpec, MachineConfig


def make_spec(**overrides):
    defaults = dict(
        kind="predictor_accuracy",
        benchmark="applu_in",
        n_intervals=500,
        predictor="GPHT_8_128",
        phase_edges=None,
    )
    defaults.update(overrides)
    return ExperimentSpec.create(**defaults)


class TestCreation:
    def test_params_are_sorted_regardless_of_kwarg_order(self):
        a = ExperimentSpec.create(
            "comparison", benchmark="swim_in", n_intervals=10,
            governor="gpht", policy="table2",
        )
        b = ExperimentSpec.create(
            "comparison", benchmark="swim_in", n_intervals=10,
            policy="table2", governor="gpht",
        )
        assert a == b
        assert hash(a) == hash(b)
        assert a.params == (("governor", "gpht"), ("policy", "table2"))

    def test_lists_normalise_to_tuples(self):
        spec = make_spec(phase_edges=[0.005, 0.01])
        assert spec.param("phase_edges") == (0.005, 0.01)
        assert hash(spec) == hash(make_spec(phase_edges=(0.005, 0.01)))

    def test_rejects_non_scalar_parameter(self):
        with pytest.raises(ConfigurationError):
            make_spec(predictor={"depth": 8})
        with pytest.raises(ConfigurationError):
            make_spec(phase_edges=[[1.0]])

    def test_rejects_non_positive_intervals(self):
        with pytest.raises(ConfigurationError):
            make_spec(n_intervals=0)

    def test_param_lookup_and_default(self):
        spec = make_spec()
        assert spec.param("predictor") == "GPHT_8_128"
        assert spec.param("missing", 42) == 42

    def test_with_params_replaces_and_stays_sorted(self):
        spec = make_spec().with_params(predictor="LastValue", zeta=1)
        assert spec.param("predictor") == "LastValue"
        assert [name for name, _ in spec.params] == sorted(
            name for name, _ in spec.params
        )


class TestHashing:
    def test_cache_key_is_stable_across_processes(self):
        # A frozen literal guards against accidental format drift: any
        # change to canonical JSON or hashing must bump CODE_VERSION.
        spec = ExperimentSpec.create(
            "predictor_accuracy",
            benchmark="applu_in",
            n_intervals=500,
            predictor="GPHT_8_128",
            phase_edges=None,
        )
        assert spec.cache_key("repro-1.0.0/spec-v1") == (
            "19748298ec017b961ed5f485d8006a52"
            "da3d180ea6a9c45d99d404da9dbb05fa"
        )

    def test_any_field_change_changes_the_key(self):
        base = make_spec()
        variants = [
            make_spec(benchmark="swim_in"),
            make_spec(n_intervals=501),
            make_spec(predictor="LastValue"),
            make_spec(seed=7),
            make_spec(machine=MachineConfig(granularity_uops=1)),
            base.with_params(extra=1),
        ]
        keys = {spec.cache_key() for spec in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)

    def test_code_version_changes_the_key(self):
        spec = make_spec()
        assert spec.cache_key(CODE_VERSION) != spec.cache_key("other-version")


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = make_spec(seed=3, phase_edges=(0.005, 0.02))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_canonical_json_survives_json_round_trip(self):
        import json

        spec = make_spec(machine=MachineConfig(handler_overhead_s=2.5e-6))
        payload = json.loads(spec.canonical_json())
        assert ExperimentSpec.from_dict(payload) == spec

    def test_machine_config_round_trip(self):
        config = MachineConfig(granularity_uops=25_000_000)
        assert MachineConfig.from_dict(config.to_dict()) == config
        config.build()  # constructible


class TestLabel:
    def test_label_is_compact_and_informative(self):
        spec = make_spec()
        label = spec.label()
        assert "predictor_accuracy" in label
        assert "applu_in" in label
        assert "GPHT_8_128" in label
