"""Tests for the opt-in perf gate and measurement sanity checks.

Includes the regression tests for the two CI-flake bugs this subsystem
replaces: wall-clock threshold assertions failing on loaded runners,
and degenerate elapsed times silently producing zero rates.
"""

import pytest

from repro.bench.gate import (
    ENFORCE_ENV,
    MeasurementError,
    PerfRegressionError,
    check_perf,
    perf_enforced,
    require_positive_elapsed,
)


class TestPerfEnforced:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENFORCE_ENV, raising=False)
        assert not perf_enforced()

    def test_zero_and_empty_mean_off(self, monkeypatch):
        for value in ("", "0", " 0 "):
            monkeypatch.setenv(ENFORCE_ENV, value)
            assert not perf_enforced()

    def test_any_other_value_means_on(self, monkeypatch):
        for value in ("1", "true", "yes"):
            monkeypatch.setenv(ENFORCE_ENV, value)
            assert perf_enforced()


class TestCheckPerf:
    def test_failed_threshold_is_soft_by_default(self, monkeypatch):
        monkeypatch.delenv(ENFORCE_ENV, raising=False)
        assert check_perf(False, "too slow") is False

    def test_failed_threshold_raises_under_enforce(self, monkeypatch):
        monkeypatch.setenv(ENFORCE_ENV, "1")
        with pytest.raises(PerfRegressionError, match="too slow"):
            check_perf(False, "too slow")

    def test_met_threshold_passes_either_way(self, monkeypatch):
        monkeypatch.setenv(ENFORCE_ENV, "1")
        assert check_perf(True, "fine") is True


class TestRequirePositiveElapsed:
    def test_accepts_positive(self):
        assert require_positive_elapsed(0.25, "x") == 0.25

    @pytest.mark.parametrize(
        "bad", [0.0, -1.0, float("nan"), float("inf")]
    )
    def test_rejects_degenerate(self, bad):
        with pytest.raises(MeasurementError, match="scalar feed"):
            require_positive_elapsed(bad, "scalar feed")


class TestBatchThroughputDeflake:
    """The de-flaked speedup assessment from the batch-throughput bench.

    Reproduces the CI flake with a mocked slow clock: a loaded runner
    where the batch path timed *slower* than the scalar path must not
    fail the bench by default, and must fail it under enforce.
    """

    def _assess(self, scalar_seconds, batch_seconds):
        from benchmarks.test_batch_throughput import assess_speedup

        return assess_speedup(scalar_seconds, batch_seconds, 20_000)

    def test_slow_clock_passes_without_enforce(self, monkeypatch):
        monkeypatch.delenv(ENFORCE_ENV, raising=False)
        # Batch measured 3x SLOWER than scalar — a preempted runner.
        scalar_rate, batch_rate, speedup = self._assess(0.1, 0.3)
        assert speedup == pytest.approx(1.0 / 3.0)
        # The threshold is recorded, not asserted.
        assert check_perf(speedup >= 6.0, "below target") is False

    def test_slow_clock_fails_under_enforce(self, monkeypatch):
        monkeypatch.setenv(ENFORCE_ENV, "1")
        _, _, speedup = self._assess(0.1, 0.3)
        with pytest.raises(PerfRegressionError):
            check_perf(speedup >= 6.0, "below target")

    def test_zero_elapsed_is_an_error_not_a_zero_rate(self):
        # The silent-zero bug: `scalar_rate and batch_rate / scalar_rate`
        # used to short-circuit a 0.0 rate into speedup 0.0.
        with pytest.raises(MeasurementError):
            self._assess(0.0, 0.3)
        with pytest.raises(MeasurementError):
            self._assess(0.1, 0.0)

    def test_rates_are_derived_from_sample_count(self):
        scalar_rate, batch_rate, speedup = self._assess(2.0, 0.5)
        assert scalar_rate == pytest.approx(10_000.0)
        assert batch_rate == pytest.approx(40_000.0)
        assert speedup == pytest.approx(4.0)
