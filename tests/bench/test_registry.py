"""Tests for the benchmark registry and direction resolution."""

import pathlib

import pytest

from repro.bench.registry import (
    BENCHES,
    HIGHER,
    LOWER,
    all_tags,
    artifact_index,
    bench_by_name,
    metric_direction,
    select_benches,
)
from repro.errors import ConfigurationError

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


class TestRegistryIntegrity:
    def test_every_registered_module_exists(self):
        for spec in BENCHES:
            assert (BENCH_DIR / spec.module).is_file(), spec.module

    def test_every_benchmark_module_is_registered(self):
        modules = {
            p.name
            for p in BENCH_DIR.glob("test_*.py")
        }
        registered = {spec.module for spec in BENCHES}
        assert modules == registered

    def test_artifact_names_are_unique(self):
        artifacts = [a for spec in BENCHES for a in spec.artifacts]
        assert len(artifacts) == len(set(artifacts))

    def test_smoke_subset_is_small_and_fast(self):
        smoke = select_benches(tags=["smoke"])
        assert 2 <= len(smoke) <= 6
        names = {spec.name for spec in smoke}
        assert "batch_throughput" in names

    def test_committed_baselines_cover_every_artifact(self):
        committed = {
            p.stem for p in (BENCH_DIR / "results").glob("*.json")
        }
        assert set(artifact_index()) <= committed


class TestSelection:
    def test_empty_selection_is_everything(self):
        assert select_benches() == list(BENCHES)

    def test_by_name(self):
        (spec,) = select_benches(names=["fig03_quadrants"])
        assert spec.module == "test_fig03_quadrants.py"

    def test_by_tag_preserves_suite_order(self):
        figures = select_benches(tags=["figures"])
        order = [spec.name for spec in figures]
        assert order == [
            s.name for s in BENCHES if "figures" in s.tags
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            select_benches(names=["nope"])

    def test_unknown_tag_raises(self):
        with pytest.raises(ConfigurationError, match="unknown tag"):
            select_benches(tags=["nope"])

    def test_all_tags_sorted(self):
        tags = all_tags()
        assert tags == sorted(tags)
        assert "smoke" in tags and "figures" in tags


class TestDirections:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            ("speedup", HIGHER),
            ("batch_samples_per_s", HIGHER),
            ("GPHT_8_128_mean_accuracy", HIGHER),
            ("mean_edp_improvement", HIGHER),
            ("power_savings", HIGHER),
            ("mean_gap_captured", HIGHER),
            ("performance_degradation", LOWER),
            ("us_per_sample", LOWER),
            ("handler_overhead_fraction", LOWER),
            ("dtm_peak_temperature_c", LOWER),
            ("dtm_slowdown", LOWER),
            ("swim_in_upc_divergence", LOWER),
            ("n_benchmarks", None),
            ("boundary_violations", None),
        ],
    )
    def test_direction_resolution(self, metric, expected):
        assert metric_direction("any_artifact", metric) == expected

    def test_per_bench_override_wins(self):
        spec = bench_by_name()["batch_throughput"]
        # No overrides declared today; the mechanism is exercised by
        # compare tests through metric_direction's fallback chain.
        assert spec.directions == {}
