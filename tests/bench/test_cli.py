"""End-to-end tests for the ``repro bench`` CLI group."""

import json
import pathlib

import pytest

from repro.bench.schema import BenchResult
from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINES = REPO_ROOT / "benchmarks" / "results"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBenchList:
    def test_lists_every_bench(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "list")
        assert code == 0
        assert "batch_throughput" in out
        assert "fig11_dvfs_results" in out
        assert "smoke" in out

    def test_json_format(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "list", "--format", "json")
        assert code == 0
        payload = json.loads(out)
        names = [entry["name"] for entry in payload["benches"]]
        assert "serve_scaleout" in names

    def test_unknown_bench_is_a_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "bench", "run", "nope", "--out", "x")
        assert code == 2
        assert "unknown bench" in err


class TestBenchReport:
    def test_renders_committed_baselines(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "report", str(BASELINES))
        assert code == 0
        assert "batch_feed_throughput" in out
        assert "learned_accuracy" in out

    def test_json_report_is_schema_shaped(self, capsys):
        code, out, _ = run_cli(
            capsys, "bench", "report", str(BASELINES), "--format", "json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload
        for artifact in payload.values():
            assert artifact["schema"] == "repro.bench.result"

    def test_missing_dir_is_an_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "bench", "report", str(tmp_path / "nope")
        )
        assert code == 2
        assert "results directory" in err


class TestBenchCompare:
    def write(self, directory, name, **kwargs):
        directory.mkdir(parents=True, exist_ok=True)
        result = BenchResult.create(name, **kwargs)
        (directory / f"{name}.json").write_text(result.to_json())

    def test_committed_baselines_compare_clean(self, capsys, tmp_path):
        # Simulate a partial rerun: one artifact copied verbatim.
        current = tmp_path / "current"
        current.mkdir()
        source = BASELINES / "fig03_quadrants.json"
        (current / source.name).write_text(source.read_text())
        code, out, _ = run_cli(
            capsys, "bench", "compare", str(current),
            "--baseline", str(BASELINES),
        )
        assert code == 0
        assert "PASS" in out

    def test_synthetic_regression_exits_nonzero(self, capsys, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        self.write(base, "t", metrics={"accuracy": 0.90})
        self.write(cur, "t", metrics={"accuracy": 0.70})
        code, out, _ = run_cli(
            capsys, "bench", "compare", str(cur), "--baseline", str(base)
        )
        assert code == 1
        assert "REGRESSED" in out

    def test_tolerance_flag_is_percent(self, capsys, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        self.write(base, "t", metrics={"accuracy": 0.90})
        self.write(cur, "t", metrics={"accuracy": 0.70})
        code, _, _ = run_cli(
            capsys, "bench", "compare", str(cur),
            "--baseline", str(base), "--tolerance", "30",
        )
        assert code == 0

    def test_enforce_flag_gates_measured(self, capsys, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        self.write(base, "t", measured={"samples_per_s": 100.0})
        self.write(cur, "t", measured={"samples_per_s": 50.0})
        code, _, _ = run_cli(
            capsys, "bench", "compare", str(cur), "--baseline", str(base)
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys, "bench", "compare", str(cur),
            "--baseline", str(base), "--enforce",
        )
        assert code == 1

    def test_missing_baseline_artifact_fails_loudly(self, capsys, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        self.write(cur, "brand_new", metrics={"accuracy": 0.9})
        code, out, _ = run_cli(
            capsys, "bench", "compare", str(cur), "--baseline", str(base)
        )
        assert code == 1
        assert "missing_baseline" in out

    def test_json_format(self, capsys, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        self.write(base, "t", metrics={"accuracy": 0.9})
        self.write(cur, "t", metrics={"accuracy": 0.9})
        code, out, _ = run_cli(
            capsys, "bench", "compare", str(cur),
            "--baseline", str(base), "--format", "json",
        )
        assert code == 0
        assert json.loads(out)["ok"] is True


@pytest.mark.slow
class TestBenchRunDeterminism:
    def test_smoke_runs_twice_byte_identical(self, capsys, tmp_path):
        """Two smoke runs must agree byte-for-byte on the comparable
        payload of every artifact — the property the regression gate
        stands on."""
        outs = []
        for label in ("first", "second"):
            out_dir = tmp_path / label
            code, _, _ = run_cli(
                capsys,
                "bench", "run", "--smoke",
                "--out", str(out_dir),
                "--bench-dir", str(REPO_ROOT / "benchmarks"),
                "--jobs", "2",
            )
            assert code == 0
            outs.append(out_dir)
        first, second = outs
        names = sorted(p.name for p in first.glob("*.json"))
        assert names == sorted(p.name for p in second.glob("*.json"))
        assert names  # the smoke subset emitted artifacts
        for name in names:
            a = BenchResult.from_payload(
                json.loads((first / name).read_text())
            )
            b = BenchResult.from_payload(
                json.loads((second / name).read_text())
            )
            assert a.comparable_json() == b.comparable_json(), name

    def test_smoke_artifacts_match_committed_baselines(
        self, capsys, tmp_path
    ):
        out_dir = tmp_path / "run"
        code, _, _ = run_cli(
            capsys,
            "bench", "run", "--smoke",
            "--out", str(out_dir),
            "--bench-dir", str(REPO_ROOT / "benchmarks"),
            "--jobs", "2",
        )
        assert code == 0
        code, out, _ = run_cli(
            capsys, "bench", "compare", str(out_dir),
            "--baseline", str(BASELINES),
        )
        assert code == 0, out
