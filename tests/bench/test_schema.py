"""Tests for the versioned benchmark-result schema and legacy upgraders."""

import json

import pytest

from repro.bench.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchFormatError,
    BenchResult,
    HostProvenance,
    upgrade_payload,
    validate_payload,
)


def sample_result():
    return BenchResult.create(
        "sample_bench",
        parameters={"n_intervals": 100, "benchmark": "applu_in"},
        metrics={"accuracy": 0.92, "edp_improvement": 0.18},
        measured={"samples_per_s": 125_000.0},
        details={"grid": [[1, 2], [3, 4]]},
    )


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        result = sample_result()
        restored = BenchResult.from_payload(json.loads(result.to_json()))
        assert restored == result

    def test_payload_round_trip_is_lossless(self):
        result = sample_result()
        assert BenchResult.from_payload(result.to_payload()) == result

    def test_payload_carries_schema_discriminator_and_version(self):
        payload = sample_result().to_payload()
        assert payload["schema"] == SCHEMA_NAME
        assert payload["version"] == SCHEMA_VERSION

    def test_host_provenance_collected(self):
        host = sample_result().host
        assert host.platform
        assert host.python_version
        assert host.cpu_count >= 1
        assert host.code_version

    def test_comparable_payload_excludes_measured_host_details(self):
        comparable = sample_result().comparable_payload()
        assert set(comparable) == {
            "schema", "version", "name", "parameters", "metrics"
        }

    def test_comparable_json_is_canonical(self):
        result = sample_result()
        assert result.comparable_json() == json.dumps(
            result.comparable_payload(),
            sort_keys=True,
            separators=(",", ":"),
        )


class TestValidatorRejections:
    def test_rejects_wrong_schema_discriminator(self):
        payload = sample_result().to_payload()
        payload["schema"] = "something.else"
        with pytest.raises(BenchFormatError):
            validate_payload(payload)

    def test_rejects_future_version(self):
        payload = sample_result().to_payload()
        payload["version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchFormatError):
            validate_payload(payload)

    def test_rejects_empty_name(self):
        with pytest.raises(BenchFormatError):
            BenchResult.create("", metrics={"x": 1.0})

    def test_rejects_non_finite_metric(self):
        with pytest.raises(BenchFormatError):
            BenchResult.create("b", metrics={"x": float("nan")})

    def test_rejects_bool_metric(self):
        with pytest.raises(BenchFormatError):
            BenchResult.create("b", metrics={"x": True})

    def test_rejects_non_scalar_parameter(self):
        with pytest.raises(BenchFormatError):
            BenchResult.create("b", parameters={"grid": [1, 2]})

    def test_rejects_wall_clock_keys_in_comparable_portion(self):
        for key in ("timestamp", "start_datetime", "walltime_s"):
            with pytest.raises(BenchFormatError):
                BenchResult.create("b", metrics={key: 1.0})
            with pytest.raises(BenchFormatError):
                BenchResult.create("b", parameters={key: 1.0})

    def test_wall_clock_keys_allowed_in_measured(self):
        # The measured block is host-varying by contract.
        result = BenchResult.create("b", measured={"elapsed_seconds": 1.5})
        validate_payload(result.to_payload())

    def test_rejects_missing_host(self):
        payload = sample_result().to_payload()
        del payload["host"]
        with pytest.raises(BenchFormatError):
            validate_payload(payload)


class TestLegacyUpgraders:
    def test_current_payload_passes_through(self):
        payload = sample_result().to_payload()
        assert upgrade_payload(payload) == payload

    def test_batch_feed_throughput_legacy_shape(self):
        legacy = {
            "benchmark": "applu_in",
            "samples": 20000,
            "batch_size": 20000,
            "scalar_samples_per_s": 100000.0,
            "batch_samples_per_s": 900000.0,
            "speedup": 9.0,
            "speedup_target": 6.0,
        }
        payload = upgrade_payload(legacy)
        validate_payload(payload)
        assert payload["name"] == "batch_feed_throughput"
        assert payload["measured"]["speedup"] == 9.0
        assert payload["host"] == HostProvenance.unknown().to_dict()

    def test_learned_accuracy_legacy_shape(self):
        legacy = {
            "n_benchmarks": 4,
            "version": 1,
            "comparison": {
                "summary": {
                    "tree": {
                        "mean_accuracy": 0.91,
                        "mean_overhead_units": 3.0,
                    },
                    "gpht": {
                        "mean_accuracy": 0.89,
                        "mean_overhead_units": 4.0,
                    },
                },
            },
        }
        payload = upgrade_payload(legacy)
        validate_payload(payload)
        assert payload["name"] == "learned_accuracy"
        assert payload["metrics"]["tree_mean_accuracy"] == 0.91
        assert payload["metrics"]["gpht_mean_overhead_units"] == 4.0

    def test_serve_scaleout_legacy_shape(self):
        legacy = {
            "sessions": 32,
            "samples_per_session": 400,
            "wire_baseline_samples_per_s": 5000.0,
            "best_samples_per_s": 21000.0,
            "speedup_vs_wire_baseline": 4.2,
            "grid": [{"workers": 4, "samples_per_s": 21000.0}],
        }
        payload = upgrade_payload(legacy)
        validate_payload(payload)
        assert payload["name"] == "serve_scaleout"
        assert payload["measured"]["speedup_vs_wire_baseline"] == 4.2
        assert payload["details"]["grid"]

    def test_unrecognized_shape_raises(self):
        with pytest.raises(BenchFormatError):
            upgrade_payload({"mystery": 1})

    def test_committed_legacy_baselines_upgrade(self, tmp_path):
        # The three shapes exactly as they were committed pre-schema.
        for name, legacy in {
            "batch_feed_throughput": {
                "benchmark": "applu_in",
                "scalar_samples_per_s": 1.0,
                "batch_samples_per_s": 2.0,
            },
            "learned_accuracy": {
                "n_benchmarks": 2,
                "comparison": {"summary": {"tree": {"mean_accuracy": 0.5}}},
            },
            "serve_scaleout": {
                "wire_baseline_samples_per_s": 1.0,
                "grid": [],
            },
        }.items():
            payload = upgrade_payload(legacy)
            assert payload["name"] == name
            validate_payload(payload)
