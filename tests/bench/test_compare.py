"""Tests for the regression gate (`repro bench compare` internals)."""

import json

import pytest

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    compare_results,
    load_results_dir,
)
from repro.bench.schema import BenchFormatError, BenchResult
from repro.errors import ConfigurationError


def payload(name, metrics=None, measured=None, parameters=None):
    return BenchResult.create(
        name,
        metrics=metrics,
        measured=measured,
        parameters=parameters,
    ).to_payload()


class TestRegressionRule:
    def test_identical_results_pass(self):
        base = {"b": payload("b", metrics={"accuracy": 0.9})}
        report = compare_results(base, base)
        assert report.exit_code() == 0
        assert not report.regressions

    def test_fifteen_percent_throughput_drop_fails_enforced(self):
        base = {"t": payload("t", measured={"samples_per_s": 100_000.0})}
        cur = {"t": payload("t", measured={"samples_per_s": 85_000.0})}
        report = compare_results(cur, base, enforce=True)
        assert report.exit_code() == 1
        (delta,) = report.regressions
        assert delta.metric == "samples_per_s"
        assert delta.change == pytest.approx(-0.15)

    def test_five_percent_drop_is_within_tolerance(self):
        base = {"t": payload("t", measured={"samples_per_s": 100_000.0})}
        cur = {"t": payload("t", measured={"samples_per_s": 95_000.0})}
        report = compare_results(cur, base, enforce=True)
        assert report.exit_code() == 0

    def test_measured_not_gated_without_enforce(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ENFORCE", raising=False)
        base = {"t": payload("t", measured={"samples_per_s": 100_000.0})}
        cur = {"t": payload("t", measured={"samples_per_s": 20_000.0})}
        report = compare_results(cur, base)
        assert report.exit_code() == 0
        assert not report.enforced

    def test_enforce_env_gates_measured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ENFORCE", "1")
        base = {"t": payload("t", measured={"samples_per_s": 100_000.0})}
        cur = {"t": payload("t", measured={"samples_per_s": 20_000.0})}
        report = compare_results(cur, base)
        assert report.enforced
        assert report.exit_code() == 1

    def test_deterministic_metric_gated_without_enforce(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ENFORCE", raising=False)
        base = {"a": payload("a", metrics={"accuracy": 0.90})}
        cur = {"a": payload("a", metrics={"accuracy": 0.70})}
        report = compare_results(cur, base)
        assert report.exit_code() == 1

    def test_lower_is_better_honored(self):
        # performance_degradation: an increase is the regression.
        base = {"d": payload("d", metrics={"performance_degradation": 0.04})}
        worse = {"d": payload("d", metrics={"performance_degradation": 0.08})}
        better = {"d": payload("d", metrics={"performance_degradation": 0.01})}
        assert compare_results(worse, base).exit_code() == 1
        assert compare_results(better, base).exit_code() == 0

    def test_improvement_never_regresses(self):
        base = {"a": payload("a", metrics={"accuracy": 0.80})}
        cur = {"a": payload("a", metrics={"accuracy": 0.99})}
        assert compare_results(cur, base).exit_code() == 0

    def test_undeclared_direction_is_informational(self):
        base = {"x": payload("x", metrics={"n_widgets": 10})}
        cur = {"x": payload("x", metrics={"n_widgets": 2})}
        report = compare_results(cur, base)
        assert report.exit_code() == 0
        (delta,) = report.comparisons[0].deltas
        assert delta.direction is None and not delta.gated

    def test_missing_baseline_artifact_fails(self):
        base = {}
        cur = {"new_bench": payload("new_bench", metrics={"accuracy": 0.9})}
        report = compare_results(cur, base)
        assert report.exit_code() == 1
        assert report.comparisons[0].status == "missing_baseline"

    def test_baseline_only_artifacts_are_skipped(self):
        base = {
            "a": payload("a", metrics={"accuracy": 0.9}),
            "b": payload("b", metrics={"accuracy": 0.9}),
        }
        cur = {"a": payload("a", metrics={"accuracy": 0.9})}
        report = compare_results(cur, base)
        assert report.exit_code() == 0
        assert report.baseline_only == ("b",)

    def test_zero_baseline_movement_is_infinite_change(self):
        base = {"a": payload("a", metrics={"accuracy": 0.0})}
        cur = {"a": payload("a", metrics={"accuracy": 0.5})}
        report = compare_results(cur, base)
        # Moved in the good direction: not a regression.
        assert report.exit_code() == 0

    def test_tolerance_must_be_a_fraction(self):
        base = {"a": payload("a", metrics={"accuracy": 0.9})}
        with pytest.raises(ConfigurationError):
            compare_results(base, base, tolerance=10.0)

    def test_default_tolerance_is_ten_percent(self):
        assert DEFAULT_TOLERANCE == 0.10

    def test_report_payload_and_text_render(self):
        base = {"t": payload("t", measured={"samples_per_s": 100_000.0})}
        cur = {"t": payload("t", measured={"samples_per_s": 80_000.0})}
        report = compare_results(cur, base, enforce=True)
        rendered = report.render_text()
        assert "REGRESSED" in rendered and "FAIL" in rendered
        as_json = report.to_payload()
        assert as_json["ok"] is False
        assert as_json["artifacts"][0]["status"] == "regressed"


class TestLoadResultsDir:
    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results_dir(tmp_path / "nope")

    def test_loads_and_upgrades(self, tmp_path):
        current = BenchResult.create("modern", metrics={"accuracy": 0.9})
        (tmp_path / "modern.json").write_text(current.to_json())
        legacy = {
            "benchmark": "applu_in",
            "scalar_samples_per_s": 1.0,
            "batch_samples_per_s": 9.0,
        }
        (tmp_path / "batch_feed_throughput.json").write_text(
            json.dumps(legacy)
        )
        payloads = load_results_dir(tmp_path)
        assert set(payloads) == {"modern", "batch_feed_throughput"}

    def test_malformed_artifact_names_the_file(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(BenchFormatError, match="bad.json"):
            load_results_dir(tmp_path)
