"""Engine-level tests: suppression, reporting, exit codes, registry."""

import ast
import json

import pytest

from repro.devtools.lint.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    LintEngine,
    LintReport,
    LintRule,
    ParsedModule,
    RuleVisitor,
    parse_suppressions,
    register_rule,
    registered_rules,
    render_json,
    render_text,
)
from repro.devtools.lint.rules import default_rules


class PassStatementRule(LintRule):
    """Toy rule used to exercise the engine: flags every ``pass``."""

    name = "no-pass"
    description = "flags pass statements (test-only rule)"

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Pass):
                yield self.finding(module, node, "pass statement")


class ScopedPassRule(PassStatementRule):
    name = "no-pass-scoped"
    packages = ("core",)


class TestSuppressionParsing:
    def test_single_rule(self):
        lines = parse_suppressions("x = 1  # repro-lint: disable=phase-id-range\n")
        assert lines == {1: frozenset({"phase-id-range"})}

    def test_comma_separated_rules(self):
        source = "y = 2\nx = 1  # repro-lint: disable=a-rule, b-rule\n"
        assert parse_suppressions(source) == {2: frozenset({"a-rule", "b-rule"})}

    def test_all_sentinel(self):
        lines = parse_suppressions("x = 1  # repro-lint: disable=all\n")
        assert lines == {1: frozenset({"all"})}

    def test_plain_comments_ignored(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}

    def test_module_reports_suppression(self):
        module = ParsedModule.from_source(
            "pass  # repro-lint: disable=no-pass\n"
        )
        assert module.is_suppressed("no-pass", 1)
        assert not module.is_suppressed("other-rule", 1)
        assert not module.is_suppressed("no-pass", 2)


class TestEngine:
    def test_findings_from_source(self):
        engine = LintEngine([PassStatementRule()])
        findings = engine.lint_source("def f():\n    pass\n")
        assert [f.rule for f in findings] == ["no-pass"]
        assert findings[0].line == 2

    def test_suppressed_finding_dropped(self):
        engine = LintEngine([PassStatementRule()])
        findings = engine.lint_source(
            "def f():\n    pass  # repro-lint: disable=no-pass\n"
        )
        assert findings == []

    def test_all_suppression_drops_every_rule(self):
        engine = LintEngine([PassStatementRule()])
        findings = engine.lint_source(
            "def f():\n    pass  # repro-lint: disable=all\n"
        )
        assert findings == []

    def test_package_scope_respected(self):
        engine = LintEngine([ScopedPassRule()])
        in_scope = ParsedModule.from_source("pass\n", "src/x/core/mod.py")
        out_of_scope = ParsedModule.from_source("pass\n", "src/x/cli.py")
        assert len(engine.lint_module(in_scope)) == 1
        assert engine.lint_module(out_of_scope) == []

    def test_run_reports_syntax_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = LintEngine([PassStatementRule()]).run([str(tmp_path)])
        assert report.files_checked == 0
        assert len(report.errors) == 1
        assert report.exit_code == EXIT_ERROR

    def test_run_walks_directories_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("pass\n")
        (tmp_path / "a.py").write_text("pass\n")
        report = LintEngine([PassStatementRule()]).run([str(tmp_path)])
        assert report.files_checked == 2
        assert [f.path for f in report.findings] == sorted(
            f.path for f in report.findings
        )
        assert report.exit_code == EXIT_FINDINGS

    def test_clean_run_exit_code(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = LintEngine([PassStatementRule()]).run([str(tmp_path)])
        assert report.exit_code == EXIT_CLEAN

    def test_default_engine_uses_registered_rules(self):
        names = {rule.name for rule in LintEngine().rules}
        assert {
            "predictor-contract",
            "determinism",
            "phase-id-range",
            "no-float-equality",
            "mutable-default-args",
            "units-docstring",
        } <= names


class TestRegistry:
    def test_six_domain_rules_registered(self):
        names = {rule.name for rule in default_rules()}
        assert names >= {
            "predictor-contract",
            "determinism",
            "phase-id-range",
            "no-float-equality",
            "mutable-default-args",
            "units-docstring",
        }

    def test_duplicate_registration_rejected(self):
        class Duplicate(LintRule):
            name = "determinism"
            description = "imposter"

            def check(self, module):
                return iter(())

        with pytest.raises(ValueError):
            register_rule(Duplicate)

    def test_nameless_rule_rejected(self):
        class Nameless(LintRule):
            description = "no name"

            def check(self, module):
                return iter(())

        with pytest.raises(ValueError):
            register_rule(Nameless)

    def test_registry_snapshot_is_a_copy(self):
        snapshot = registered_rules()
        snapshot["bogus"] = PassStatementRule
        assert "bogus" not in registered_rules()


class TestReporters:
    def _report(self):
        finding = Finding(
            path="a.py", line=3, col=4, rule="no-pass", message="pass statement"
        )
        return LintReport(findings=[finding], files_checked=2)

    def test_text_report_format(self):
        text = render_text(self._report())
        assert "a.py:3:4: no-pass: pass statement" in text
        assert "1 finding(s)" in text

    def test_text_report_clean(self):
        text = render_text(LintReport(files_checked=3))
        assert "3 files clean" in text

    def test_json_report_roundtrip(self):
        payload = json.loads(render_json(self._report()))
        assert payload["finding_count"] == 1
        assert payload["files_checked"] == 2
        assert payload["exit_code"] == EXIT_FINDINGS
        assert payload["findings"][0]["rule"] == "no-pass"


class TestRuleVisitor:
    def test_visitor_collects_findings(self):
        rule = PassStatementRule()
        module = ParsedModule.from_source("pass\n")

        class Visitor(RuleVisitor):
            def visit_Pass(self, node):
                self.report(node, "seen")

        visitor = Visitor(rule, module)
        visitor.visit(module.tree)
        assert len(visitor.findings) == 1
        assert visitor.findings[0].rule == "no-pass"
