"""Behaviour of the five whole-program analyses on fixture projects."""

from pathlib import Path

from repro.devtools.analyze.analyses.async_blocking import (
    AsyncBlockingAnalysis,
)
from repro.devtools.analyze.analyses.checkpoint import (
    CheckpointCompletenessAnalysis,
)
from repro.devtools.analyze.analyses.layering import LayeringAnalysis
from repro.devtools.analyze.analyses.protocol import (
    ProtocolConformanceAnalysis,
)
from repro.devtools.analyze.analyses.taint import DeterminismTaintAnalysis
from repro.devtools.analyze.engine import AnalyzeEngine
from repro.devtools.analyze.project import Project, load_project

FIXTURES = Path(__file__).parent / "fixtures" / "analyze"


def _findings(analysis, sources):
    project = Project.from_sources(sources)
    return list(analysis.check(project))


class TestCheckpointCompleteness:
    def test_complete_pair_is_clean(self):
        source = (
            "class P:\n"
            "    def __init__(self, depth):\n"
            "        self._depth = depth\n"
            "        self._window = []\n"
            "    def export_state(self):\n"
            "        return {'w': list(self._window)}\n"
            "    def restore_state(self, state):\n"
            "        self._window = list(state['w'])\n"
        )
        assert _findings(CheckpointCompletenessAnalysis(), {"m": source}) == []

    def test_missing_field_is_flagged_with_location(self):
        source = (
            "class P:\n"
            "    def __init__(self):\n"
            "        self._window = []\n"
            "        self._hits = 0\n"
            "    def export_state(self):\n"
            "        return {'w': list(self._window)}\n"
            "    def restore_state(self, state):\n"
            "        self._window = list(state['w'])\n"
        )
        findings = _findings(
            CheckpointCompletenessAnalysis(), {"m": source}
        )
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "P._hits" in findings[0].message

    def test_export_only_gap_names_the_missing_half(self):
        source = (
            "class P:\n"
            "    def __init__(self):\n"
            "        self._hits = 0\n"
            "    def export_state(self):\n"
            "        return {'hits': self._hits}\n"
            "    def restore_state(self, state):\n"
            "        pass\n"
        )
        findings = _findings(
            CheckpointCompletenessAnalysis(), {"m": source}
        )
        assert len(findings) == 1
        assert "not written by 'restore_state'" in findings[0].message
        assert "not read" not in findings[0].message

    def test_classmethod_restore_stores_count(self):
        source = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def snapshot(self):\n"
            "        return {'count': self._count}\n"
            "    @classmethod\n"
            "    def from_snapshot(cls, state):\n"
            "        session = cls()\n"
            "        session._count = int(state['count'])\n"
            "        return session\n"
        )
        assert _findings(CheckpointCompletenessAnalysis(), {"m": source}) == []

    def test_trivial_raise_only_pair_is_skipped(self):
        source = (
            "class Base:\n"
            "    def __init__(self):\n"
            "        self._anything = []\n"
            "    def export_state(self):\n"
            "        raise NotImplementedError\n"
            "    def restore_state(self, state):\n"
            "        raise NotImplementedError\n"
        )
        assert _findings(CheckpointCompletenessAnalysis(), {"m": source}) == []

    def test_class_with_only_one_half_is_skipped(self):
        source = (
            "class Partial:\n"
            "    def __init__(self):\n"
            "        self._state = []\n"
            "    def snapshot(self):\n"
            "        return {}\n"
        )
        assert _findings(CheckpointCompletenessAnalysis(), {"m": source}) == []


class TestAsyncBlocking:
    def test_blocking_two_frames_deep_is_found(self):
        project, errors, _ = load_project([str(FIXTURES / "badproj")])
        assert errors == []
        findings = list(AsyncBlockingAnalysis().check(project))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("serve/handlers.py")
        assert finding.line == 15
        assert "time.sleep" in finding.message
        assert "handlers.handle -> handlers._relay" in finding.message

    def test_non_blocking_async_is_clean(self):
        project, errors, _ = load_project([str(FIXTURES / "goodproj")])
        assert errors == []
        assert list(AsyncBlockingAnalysis().check(project)) == []

    def test_blocking_outside_async_reach_is_ignored(self):
        sources = {
            "app.serve.front": (
                "async def handle(line):\n    return line\n"
            ),
            "app.serve.batch": (
                "import time\n\n"
                "def offline_job():\n    time.sleep(1)\n"
            ),
        }
        assert _findings(AsyncBlockingAnalysis(), sources) == []

    def test_executor_handoff_is_not_an_edge(self):
        sources = {
            "app.serve.front": (
                "import time\n\n"
                "def blocking():\n    time.sleep(1)\n\n"
                "async def handle(loop):\n"
                "    await loop.run_in_executor(None, blocking)\n"
            ),
        }
        assert _findings(AsyncBlockingAnalysis(), sources) == []

    def test_direct_open_in_async_serve_is_flagged(self):
        sources = {
            "app.serve.front": (
                "async def handle(path):\n"
                "    with open(path) as fh:\n"
                "        return fh.name\n"
            ),
        }
        findings = _findings(AsyncBlockingAnalysis(), sources)
        assert len(findings) == 1
        assert "open()" in findings[0].message


class TestDeterminismTaint:
    def test_taint_through_helper_reaches_dumps(self):
        project, errors, _ = load_project([str(FIXTURES / "badproj")])
        assert errors == []
        findings = list(DeterminismTaintAnalysis().check(project))
        taint = [f for f in findings if f.path.endswith("tainted.py")]
        assert len(taint) == 1
        assert taint[0].line == 18

    def test_seeded_random_is_deterministic(self):
        sources = {
            "m": (
                "import json\n"
                "from random import Random\n\n"
                "def series(seed):\n"
                "    rng = Random(seed)\n"
                "    data = [rng.random() for _ in range(4)]\n"
                "    return json.dumps(data)\n"
            )
        }
        assert _findings(DeterminismTaintAnalysis(), sources) == []

    def test_unseeded_random_into_digest_is_flagged(self):
        sources = {
            "m": (
                "import hashlib\n"
                "import random\n\n"
                "def fingerprint():\n"
                "    value = random.random()\n"
                "    return hashlib.sha256(str(value).encode())\n"
            )
        }
        findings = _findings(DeterminismTaintAnalysis(), sources)
        assert len(findings) == 1

    def test_env_read_into_payload_is_flagged(self):
        sources = {
            "m": (
                "import json\n"
                "import os\n\n"
                "def payload():\n"
                "    home = os.environ.get('HOME')\n"
                "    return json.dumps({'home': home})\n"
            )
        }
        assert len(_findings(DeterminismTaintAnalysis(), sources)) == 1

    def test_wall_clock_in_telemetry_only_is_clean(self):
        sources = {
            "m": (
                "import time\n\n"
                "def measure(fn):\n"
                "    started = time.perf_counter()\n"
                "    value = fn()\n"
                "    return value, time.perf_counter() - started\n"
            )
        }
        assert _findings(DeterminismTaintAnalysis(), sources) == []

    def test_destination_handle_taint_is_not_a_payload_sink(self):
        sources = {
            "m": (
                "import json\n"
                "import os\n\n"
                "def write(entry):\n"
                "    root = os.environ.get('CACHE_DIR', '/tmp')\n"
                "    with open(root + '/x.json', 'w') as fh:\n"
                "        json.dump(entry, fh)\n"
            )
        }
        assert _findings(DeterminismTaintAnalysis(), sources) == []


class TestLayering:
    def test_core_importing_serve_is_flagged(self):
        project, errors, _ = load_project([str(FIXTURES / "badproj")])
        assert errors == []
        findings = list(LayeringAnalysis().check(project))
        assert len(findings) == 1
        assert findings[0].path.endswith("core/layers.py")
        assert "'core' must not import layer 'serve'" in findings[0].message

    def test_module_scope_cycle_is_detected(self):
        sources = {
            "pkg.a": "from pkg import b\n",
            "pkg.b": "from pkg import a\n",
        }
        findings = _findings(LayeringAnalysis(), sources)
        assert len(findings) == 1
        assert "import cycle" in findings[0].message

    def test_deferred_cycle_is_allowed(self):
        sources = {
            "pkg.a": "from pkg import b\n",
            "pkg.b": "def late():\n    from pkg import a\n    return a\n",
        }
        assert _findings(LayeringAnalysis(), sources) == []

    def test_obs_module_scope_core_import_is_flagged(self):
        sources = {
            "app.obs.export": "from app.core import kernel\n",
            "app.core.kernel": "",
        }
        findings = _findings(LayeringAnalysis(), sources)
        assert len(findings) == 1
        assert "deferred" in findings[0].message

    def test_obs_lazy_core_import_is_allowed(self):
        sources = {
            "app.obs.export": (
                "def dump():\n    from app.core import kernel\n"
                "    return kernel\n"
            ),
            "app.core.kernel": "",
        }
        assert _findings(LayeringAnalysis(), sources) == []

    def test_devtools_importing_kernel_is_flagged(self):
        sources = {
            "app.devtools.tool": "from app.core import kernel\n",
            "app.core.kernel": "",
        }
        findings = _findings(LayeringAnalysis(), sources)
        assert len(findings) == 1
        assert "self-contained" in findings[0].message


class TestProtocolConformance:
    def test_bad_fixture_yields_every_conformance_finding(self):
        project, errors, _ = load_project([str(FIXTURES / "badproj")])
        assert errors == []
        messages = [
            f.message for f in ProtocolConformanceAnalysis().check(project)
        ]
        assert any("_op_stats" in m for m in messages)
        assert any("_op_orphan" in m for m in messages)
        assert any("'mystery'" in m for m in messages)
        assert any("'never_emitted'" in m for m in messages)
        assert any(
            "'stats' is never exercised" in m for m in messages
        )

    def test_good_fixture_is_clean(self):
        project, errors, _ = load_project([str(FIXTURES / "goodproj")])
        assert errors == []
        assert list(ProtocolConformanceAnalysis().check(project)) == []

    def test_project_without_protocol_module_is_skipped(self):
        assert _findings(
            ProtocolConformanceAnalysis(), {"m": "x = 1\n"}
        ) == []

    def test_duplicate_ops_key_is_flagged(self):
        sources = {
            "app.serve.protocol": (
                "ERROR_CODES = ()\n"
                "def _op_a(payload):\n    return {}\n"
                "_OPS = {'a': _op_a, 'a': _op_a}\n"
            )
        }
        findings = _findings(ProtocolConformanceAnalysis(), sources)
        assert any("duplicate _OPS key" in f.message for f in findings)


class TestEngineOnFixtures:
    def test_bad_project_has_one_finding_per_domain(self):
        report = AnalyzeEngine().run([str(FIXTURES / "badproj")])
        rules = {f.rule for f in report.findings}
        assert rules == {
            "checkpoint-completeness",
            "async-blocking",
            "determinism-taint",
            "layering",
            "protocol-conformance",
        }
        assert report.exit_code == 1

    def test_good_project_is_clean(self):
        report = AnalyzeEngine().run([str(FIXTURES / "goodproj")])
        assert report.findings == []
        assert report.exit_code == 0
