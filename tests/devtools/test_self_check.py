"""Self-check: the repository's own sources satisfy every lint rule.

This is the regression that protects the paper invariants repo-wide: a
PR introducing ``time.time()`` into ``core/``, a float ``==`` in
``power/``, or an incomplete predictor makes this test fail before the
sweep-level tests can silently produce garbage.
"""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.devtools.lint import run_lint
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.engine import EXIT_CLEAN, LintEngine
from repro.devtools.lint.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestRepositoryIsClean:
    def test_engine_clean_on_src(self):
        report = LintEngine(default_rules()).run([str(SRC)])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"repo lint regressions:\n{formatted}"
        assert report.errors == []
        assert report.files_checked > 50

    def test_module_entry_point_clean_on_src(self, capsys):
        assert lint_main([str(SRC)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out


class TestCliIntegration:
    def test_repro_lint_src_exits_zero(self, capsys):
        assert repro_main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_lint_json_format(self, capsys):
        assert repro_main(["lint", str(SRC), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finding_count"] == 0
        assert payload["exit_code"] == 0

    def test_repro_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_name in (
            "predictor-contract",
            "determinism",
            "phase-id-range",
            "no-float-equality",
            "mutable-default-args",
            "units-docstring",
        ):
            assert rule_name in out
        assert "repro-lint: disable=" in out

    def test_repro_lint_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nstart = time.time()\n")
        assert repro_main(["lint", str(tmp_path)]) == 1
        assert "determinism" in capsys.readouterr().out

    def test_run_lint_json_stream(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        import io

        stream = io.StringIO()
        code = run_lint([str(tmp_path)], output_format="json", stream=stream)
        assert code == 0
        assert json.loads(stream.getvalue())["files_checked"] == 1
