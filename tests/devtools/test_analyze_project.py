"""Project model and call graph construction."""

from pathlib import Path

import pytest

from repro.devtools.analyze.project import (
    Project,
    load_project,
    module_name_for,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analyze"


class TestModuleNaming:
    def test_dotted_name_from_package_chain(self):
        path = FIXTURES / "goodproj" / "core" / "predictor.py"
        assert module_name_for(path) == "goodproj.core.predictor"

    def test_init_module_names_the_package(self):
        path = FIXTURES / "goodproj" / "core" / "__init__.py"
        assert module_name_for(path) == "goodproj.core"

    def test_file_outside_any_package_is_its_stem(self, tmp_path):
        path = tmp_path / "standalone.py"
        path.write_text("x = 1\n")
        assert module_name_for(path) == "standalone"


class TestImportGraph:
    def test_module_scope_vs_deferred_imports(self):
        project = Project.from_sources(
            {
                "pkg.a": "import json\n\ndef f():\n    import pickle\n",
            }
        )
        module = project.get("pkg.a")
        edges = {edge.target: edge.deferred for edge in module.imports}
        assert edges == {"json": False, "pickle": True}

    def test_type_checking_imports_are_deferred(self):
        project = Project.from_sources(
            {
                "pkg.a": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from pkg.b import Thing\n"
                ),
                "pkg.b": "class Thing:\n    pass\n",
            }
        )
        module = project.get("pkg.a")
        edge = [e for e in module.imports if e.target == "pkg.b"][0]
        assert edge.deferred

    def test_relative_import_resolution(self):
        project = Project.from_sources(
            {
                "pkg.sub.a": "from . import b\nfrom ..top import c\n",
                "pkg.sub.b": "",
                "pkg.top": "c = 1\n",
            }
        )
        targets = {e.target for e in project.get("pkg.sub.a").imports}
        assert "pkg.sub" in targets
        assert "pkg.top" in targets

    def test_is_internal_covers_packages_and_modules(self):
        project = Project.from_sources({"pkg.sub.mod": ""})
        assert project.is_internal("pkg.sub.mod")
        assert project.is_internal("pkg.sub")
        assert project.is_internal("pkg")
        assert not project.is_internal("json")

    def test_find_suffix_unique_match(self):
        project = Project.from_sources(
            {"a.serve.protocol": "", "a.serve.loadgen": ""}
        )
        assert project.find_suffix("serve.protocol").name == "a.serve.protocol"
        assert project.find_suffix("missing.module") is None


class TestLoadProject:
    def test_loads_fixture_tree(self):
        project, errors, files = load_project(
            [str(FIXTURES / "goodproj")]
        )
        assert errors == []
        assert files == 7
        assert project.get("goodproj.core.predictor") is not None

    def test_syntax_error_is_reported_not_fatal(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "broken.py").write_text("def broken(:\n")
        project, errors, files = load_project([str(tmp_path)])
        assert files == 1
        assert len(errors) == 1
        assert "syntax error" in errors[0]


class TestCallGraph:
    def _graph(self, sources):
        project = Project.from_sources(sources)
        return project, project.callgraph

    def test_name_call_resolves_to_module_function(self):
        _, graph = self._graph(
            {"m": "def helper():\n    pass\n\ndef entry():\n    helper()\n"}
        )
        sites = graph.calls_from["m:entry"]
        assert sites[0].callee == "m:helper"

    def test_from_import_resolves_across_modules(self):
        _, graph = self._graph(
            {
                "a": "def tool():\n    pass\n",
                "b": "from a import tool\n\ndef entry():\n    tool()\n",
            }
        )
        assert graph.calls_from["b:entry"][0].callee == "a:tool"

    def test_module_attr_call_resolves_internal_and_external(self):
        _, graph = self._graph(
            {
                "a": "def tool():\n    pass\n",
                "b": (
                    "import a\nimport time\n\n"
                    "def entry():\n    a.tool()\n    time.sleep(1)\n"
                ),
            }
        )
        sites = graph.calls_from["b:entry"]
        assert sites[0].callee == "a:tool"
        assert sites[1].external == "time.sleep"

    def test_self_method_resolves_within_class_and_bases(self):
        _, graph = self._graph(
            {
                "m": (
                    "class Base:\n"
                    "    def shared(self):\n        pass\n"
                    "class Child(Base):\n"
                    "    def entry(self):\n        self.shared()\n"
                )
            }
        )
        assert graph.calls_from["m:Child.entry"][0].callee == "m:Base.shared"

    def test_constructor_call_resolves_to_init(self):
        _, graph = self._graph(
            {
                "m": (
                    "class Thing:\n"
                    "    def __init__(self):\n        pass\n"
                    "def entry():\n    Thing()\n"
                )
            }
        )
        assert graph.calls_from["m:entry"][0].callee == "m:Thing.__init__"

    def test_unresolved_attribute_call_keeps_tail(self):
        _, graph = self._graph(
            {"m": "def entry(writer):\n    writer.drain()\n"}
        )
        site = graph.calls_from["m:entry"][0]
        assert site.callee is None
        assert site.external is None
        assert site.tail == "drain"

    def test_async_functions_are_indexed(self):
        _, graph = self._graph({"m": "async def go():\n    pass\n"})
        assert [info.fid for info in graph.async_functions()] == ["m:go"]


class TestFromSourcesErrors:
    def test_bad_source_raises(self):
        with pytest.raises(SyntaxError):
            Project.from_sources({"m": "def broken(:\n"})
