"""Known-bad fixture for the units-docstring rule (never imported).

Lives under a ``power/`` directory so the package-scoped rule applies.
"""


def average_power_w(energy: float, seconds: float) -> float:
    """Mean power over the elapsed time."""
    return energy / seconds


def clock_hz(mhz: float) -> float:
    return mhz * 1.0e6
