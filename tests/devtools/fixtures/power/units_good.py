"""Known-good fixture for the units-docstring rule (never imported)."""


def average_power_w(energy: float, seconds: float) -> float:
    """Mean power in watts over the elapsed time."""
    return energy / seconds


def clock_hz(mhz: float) -> float:
    """Clock frequency in hertz."""
    return mhz * 1.0e6


def _private_power_w(energy: float) -> float:
    return energy


def duty_fraction(cycles: float, total: float) -> float:
    """No unit in the name, so no unit wording is required."""
    return cycles / total
