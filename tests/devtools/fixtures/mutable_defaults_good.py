"""Known-good fixture for the mutable-default-args rule (never imported)."""

from typing import Dict, List, Optional


def accumulate(value: int, into: Optional[List[int]] = None) -> List[int]:
    result = [] if into is None else into
    result.append(value)
    return result


def tally(key: str, *, counts: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    result = {} if counts is None else counts
    result[key] = result.get(key, 0) + 1
    return result
