"""Known-bad fixture for the mutable-default-args rule (never imported)."""


def accumulate(value: int, into=[]) -> list:
    into.append(value)
    return into


def tally(key: str, *, counts=dict()) -> dict:
    counts[key] = counts.get(key, 0) + 1
    return counts
