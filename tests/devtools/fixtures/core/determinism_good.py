"""Known-good fixture for the determinism rule (never imported)."""

import random

import numpy as np


def deterministic_interval(seed: int) -> float:
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return float(rng.normal()) + local.random()
