"""Known-bad fixture for the no-float-equality rule (never imported).

Lives under a ``core/`` directory so the package-scoped rule applies.
"""


def fragile(seconds: float, upper: float) -> bool:
    stopped = seconds == 0.0
    unbounded = upper != float("inf")
    return stopped and unbounded
