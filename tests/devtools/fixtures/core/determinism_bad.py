"""Known-bad fixture for the determinism rule (never imported).

Lives under a ``core/`` directory so the package-scoped rule applies.
"""

import random
import time
from datetime import datetime

import numpy as np


def nondeterministic_interval() -> float:
    started = time.time()
    stamp = datetime.now()
    jitter = random.random()
    rng = np.random.default_rng()
    draw = np.random.normal()
    return started + jitter + draw + rng.random() + stamp.timestamp()
