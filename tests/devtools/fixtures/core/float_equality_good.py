"""Known-good fixture for the no-float-equality rule (never imported)."""

import math

from repro.numerics import is_zero


def robust(seconds: float, upper: float) -> bool:
    stopped = is_zero(seconds)
    unbounded = not math.isinf(upper)
    count_ok = 3 == int(seconds)  # integer equality is fine
    return stopped and unbounded and count_ok
