"""Known-bad fixture for the phase-id-range rule (never imported)."""


def mislabel(observed_phase: int) -> int:
    phase = 7
    if observed_phase == 0:
        phase = observed_phase
    predicted_phase = -1
    return phase + predicted_phase
