"""Lint fixtures: deliberately good/bad code, linted as files, never run."""
