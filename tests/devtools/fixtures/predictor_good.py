"""Known-good fixture for the predictor-contract rule (never imported)."""

from repro.core.predictors.base import PhaseObservation, PhasePredictor


class CompletePredictor(PhasePredictor):
    """Implements the full observe/predict contract."""

    DEFAULT_PHASE = 1

    @property
    def name(self) -> str:
        return "Complete"

    def observe(self, observation: PhaseObservation) -> None:
        pass

    def predict(self) -> int:
        return self.DEFAULT_PHASE

    def reset(self) -> None:
        pass
