"""Deterministic kernel layer of the good fixture project."""
