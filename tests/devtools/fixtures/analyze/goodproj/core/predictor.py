"""A predictor whose checkpoint pair round-trips every mutable field."""


class WindowPredictor:
    """Toy predictor: a bounded window plus a hit counter."""

    def __init__(self, depth):
        self._depth = depth  # wiring: reconstructed by the constructor
        self._window = []
        self._hits = 0

    def update(self, phase):
        self._window.append(phase)
        if len(self._window) > self._depth:
            self._window.pop(0)
        self._hits += 1

    def export_state(self):
        return {"window": list(self._window), "hits": self._hits}

    def restore_state(self, state):
        self._window = [int(item) for item in state["window"]]
        self._hits = int(state["hits"])
