"""Known-good fixture project for the whole-program analyses."""
