"""A conformant wire protocol: ops and codes all accounted for."""

ERROR_CODES = ("bad_request",)


class _ProtocolError(Exception):
    def __init__(self, code, message):
        super().__init__(message)
        self.code = code


def _op_hello(payload):
    if "bad" in payload:
        raise _ProtocolError("bad_request", "malformed hello")
    return {"ok": True, "op": "hello"}


def _op_bye(payload):
    return {"ok": True, "op": "bye"}


_OPS = {
    "hello": _op_hello,
    "bye": _op_bye,
}
