"""A load generator that exercises every protocol op."""


def drive(rpc):
    rpc({"op": "hello"})
    return rpc({"op": "bye"})
