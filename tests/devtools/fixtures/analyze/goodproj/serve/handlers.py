"""Async handlers that never block the event loop."""

import asyncio


async def handle(line):
    await asyncio.sleep(0)  # cooperative yield, not a blocking sleep
    return _format(line)


def _format(line):
    return line.strip()
