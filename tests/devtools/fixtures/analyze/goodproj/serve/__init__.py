"""Serving layer of the good fixture project."""
