"""Wall-clock taint reaching a serialised record through a helper."""

import json
import time


def _stamp():
    return time.time()


def build_record(value):
    captured_at = _stamp()
    return {"value": value, "at": captured_at}


def persist(value):
    record = build_record(value)
    return json.dumps(record, sort_keys=True)
