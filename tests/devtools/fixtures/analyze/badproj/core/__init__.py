"""Kernel layer of the bad fixture project."""
