"""A kernel module reaching up into the serving layer (forbidden)."""

from badproj.serve import handlers


def misuse(line):
    return handlers.handle(line)
