"""Known-bad fixture project: one violation per analysis."""
