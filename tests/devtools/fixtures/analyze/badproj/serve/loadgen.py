"""A load generator that forgets the ``stats`` op."""


def drive(rpc):
    return rpc({"op": "hello"})
