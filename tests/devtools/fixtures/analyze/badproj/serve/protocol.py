"""A wire protocol violating every conformance check once.

* ``stats`` dispatches to ``_op_status`` (name mismatch);
* ``_op_orphan`` is defined but never registered;
* ``"mystery"`` is emitted but not declared in ``ERROR_CODES``;
* ``"never_emitted"`` is declared but never produced;
* ``stats`` never appears in the fixture load generator.
"""

ERROR_CODES = ("bad_request", "never_emitted")


class _ProtocolError(Exception):
    def __init__(self, code, message):
        super().__init__(message)
        self.code = code


def _op_hello(payload):
    if "bad" in payload:
        raise _ProtocolError("mystery", "who am I")
    return {"ok": True, "op": "hello"}


def _op_status(payload):
    return {"ok": True, "op": "stats"}


def _op_orphan(payload):
    return {"ok": True}


_OPS = {
    "hello": _op_hello,
    "stats": _op_status,
}
