"""An async handler with a blocking call buried two frames deep."""

import time


async def handle(line):
    return _relay(line)


def _relay(line):
    return _commit(line)


def _commit(line):
    time.sleep(0.01)
    return line
