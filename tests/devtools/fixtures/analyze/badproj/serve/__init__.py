"""Serving layer of the bad fixture project."""
