"""Known-bad fixture for the predictor-contract rule (never imported)."""

from repro.core.predictors.base import PhasePredictor


class IncompletePredictor(PhasePredictor):
    """Missing observe/predict entirely and shadows DEFAULT_PHASE badly."""

    DEFAULT_PHASE = "one"

    @property
    def name(self) -> str:
        return "Incomplete"

    def reset(self) -> None:
        pass
