"""Fixture proving inline suppression silences every rule (never imported)."""


def sentinel() -> int:
    phase = 0  # repro-lint: disable=phase-id-range
    return phase


def shared(into=[]) -> list:  # repro-lint: disable=mutable-default-args
    return into


def many(into=[]) -> int:  # repro-lint: disable=mutable-default-args, phase-id-range
    phase = 9  # repro-lint: disable=all
    return phase + len(into)
