"""Known-good fixture for the phase-id-range rule (never imported)."""


def relabel(observed_phase: int) -> int:
    phase = 1
    if observed_phase == 6:
        phase = observed_phase
    fallback_phase = 3
    interval_count = 100  # not phase-named: any literal is fine
    return phase + fallback_phase + interval_count
