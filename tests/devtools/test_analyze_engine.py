"""Suppression parsing, the analysis registry, and engine aggregation."""

import pytest

from repro.devtools.analyze.engine import (
    SUPPRESSION_RULE,
    Analysis,
    AnalyzeEngine,
    Suppression,
    parse_analyze_suppressions,
    register_analysis,
    registered_analyses,
)

LEAKY = (
    "class Leaky:\n"
    "    def __init__(self):\n"
    "        self._hits = 0{comment}\n"
    "    def export_state(self):\n"
    "        return {{}}\n"
    "    def restore_state(self, state):\n"
    "        pass\n"
)


class TestSuppressionParsing:
    def test_single_rule_with_justification(self):
        parsed = parse_analyze_suppressions(
            "x = 1  # repro-analyze: disable=layering -- bootstrap shim\n"
        )
        suppression = parsed[1]
        assert suppression.rules == ("layering",)
        assert suppression.justification == "bootstrap shim"
        assert suppression.valid
        assert suppression.matches("layering")
        assert not suppression.matches("determinism-taint")

    def test_multiple_rules_share_one_justification(self):
        parsed = parse_analyze_suppressions(
            "y = 2  # repro-analyze: disable=layering, determinism-taint"
            " -- generated adapter\n"
        )
        suppression = parsed[1]
        assert suppression.rules == ("layering", "determinism-taint")
        assert suppression.matches("determinism-taint")

    def test_all_matches_every_rule(self):
        parsed = parse_analyze_suppressions(
            "z = 3  # repro-analyze: disable=all -- vendored file\n"
        )
        assert parsed[1].matches("anything")

    def test_missing_justification_is_invalid(self):
        parsed = parse_analyze_suppressions(
            "w = 4  # repro-analyze: disable=layering\n"
        )
        suppression = parsed[1]
        assert suppression.justification is None
        assert not suppression.valid
        assert not suppression.matches("layering")

    def test_line_numbers_are_one_based(self):
        parsed = parse_analyze_suppressions(
            "a = 1\nb = 2  # repro-analyze: disable=x -- why\n"
        )
        assert list(parsed) == [2]

    def test_plain_source_has_no_suppressions(self):
        assert parse_analyze_suppressions("x = 1\n# a comment\n") == {}

    def test_invalid_suppression_never_matches(self):
        suppression = Suppression(line=1, rules=("all",), justification=None)
        assert not suppression.matches("layering")


class TestRegistry:
    def test_default_registry_has_the_four_domain_analyses(self):
        names = set(registered_analyses())
        assert names == {
            "checkpoint-completeness",
            "async-blocking",
            "determinism-taint",
            "layering",
            "protocol-conformance",
        }

    def test_register_rejects_missing_name(self):
        class Nameless(Analysis):
            def check(self, project):
                return iter(())

        with pytest.raises(ValueError, match="has no name"):
            register_analysis(Nameless)

    def test_register_rejects_duplicate_name(self):
        class Impostor(Analysis):
            name = "layering"

            def check(self, project):
                return iter(())

        with pytest.raises(ValueError, match="duplicate"):
            register_analysis(Impostor)

    def test_default_engine_runs_analyses_in_name_order(self):
        names = [analysis.name for analysis in AnalyzeEngine().analyses]
        assert names == sorted(names)


class TestEngineSuppressions:
    def _run(self, tmp_path, comment):
        (tmp_path / "leaky.py").write_text(LEAKY.format(comment=comment))
        return AnalyzeEngine().run([str(tmp_path)])

    def test_unsuppressed_violation_is_reported(self, tmp_path):
        report = self._run(tmp_path, "")
        assert [f.rule for f in report.findings] == [
            "checkpoint-completeness"
        ]
        assert report.exit_code == 1

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = self._run(
            tmp_path,
            "  # repro-analyze: disable=checkpoint-completeness"
            " -- counter is telemetry, not state",
        )
        assert report.findings == []
        assert report.exit_code == 0

    def test_suppression_without_justification_is_inert_and_reported(
        self, tmp_path
    ):
        report = self._run(
            tmp_path,
            "  # repro-analyze: disable=checkpoint-completeness",
        )
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["checkpoint-completeness", SUPPRESSION_RULE]
        inert = [f for f in report.findings if f.rule == SUPPRESSION_RULE][0]
        assert "without justification" in inert.message
        assert report.exit_code == 1

    def test_suppression_for_another_rule_does_not_match(self, tmp_path):
        report = self._run(
            tmp_path,
            "  # repro-analyze: disable=layering -- wrong rule entirely",
        )
        assert [f.rule for f in report.findings] == [
            "checkpoint-completeness"
        ]

    def test_all_suppression_silences_any_rule(self, tmp_path):
        report = self._run(
            tmp_path,
            "  # repro-analyze: disable=all -- scratch fixture",
        )
        assert report.findings == []
