"""Shared devtools report renderers: text, JSON and SARIF."""

import json

import pytest

from repro.devtools.lint.engine import Finding, LintReport
from repro.devtools.reporting import (
    OUTPUT_FORMATS,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
    renderer_for,
)


def _report():
    report = LintReport(files_checked=3, errors=[])
    report.findings.append(
        Finding(
            path="src/repro/core/x.py",
            line=10,
            col=4,
            rule="determinism",
            message="wall clock in core",
        )
    )
    report.findings.append(
        Finding(
            path="src/repro/serve/y.py",
            line=2,
            col=0,
            rule="async-blocking",
            message="time.sleep on the serve path",
        )
    )
    return report


class TestRendererLookup:
    def test_every_declared_format_resolves(self):
        for name in OUTPUT_FORMATS:
            assert callable(renderer_for(name))

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown output format"):
            renderer_for("xml")


class TestText:
    def test_clean_summary_carries_the_tool_name(self):
        clean = LintReport(files_checked=1, errors=[])
        assert render_text(clean, "repro analyze") == (
            "repro analyze: 1 file clean"
        )

    def test_findings_render_one_line_each_plus_summary(self):
        out = render_text(_report(), "repro lint").splitlines()
        assert out[0] == (
            "src/repro/core/x.py:10:4: determinism: wall clock in core"
        )
        assert out[-1].startswith("repro lint: 2 finding(s), 0 error(s)")


class TestJson:
    def test_payload_is_to_dict_plus_tool(self):
        report = _report()
        payload = json.loads(render_json(report, "repro analyze"))
        expected = report.to_dict()
        expected["tool"] = "repro analyze"
        assert payload == expected
        assert payload["tool"] == "repro analyze"
        assert payload["finding_count"] == 2


class TestSarif:
    def test_log_shape(self):
        log = json.loads(render_sarif(_report(), "repro analyze"))
        assert log["version"] == SARIF_VERSION
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro analyze"
        assert run["tool"]["driver"]["rules"] == [
            {"id": "async-blocking"},
            {"id": "determinism"},
        ]
        assert len(run["results"]) == 2

    def test_result_location_is_one_based(self):
        log = json.loads(render_sarif(_report(), "repro lint"))
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "determinism"
        assert result["level"] == "warning"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/x.py"
        assert location["region"]["startLine"] == 10
        assert location["region"]["startColumn"] == 5

    def test_errors_become_tool_notifications(self):
        report = LintReport(
            files_checked=1, errors=["broken.py: syntax error"]
        )
        log = json.loads(render_sarif(report, "repro lint"))
        (invocation,) = log["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"] == [
            {
                "level": "error",
                "message": {"text": "broken.py: syntax error"},
            }
        ]

    def test_clean_run_is_successful_with_no_results(self):
        clean = LintReport(files_checked=1, errors=[])
        log = json.loads(render_sarif(clean, "repro lint"))
        run = log["runs"][0]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True


class TestCliSarif:
    def test_repro_lint_emits_valid_sarif(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        (tmp_path / "core").mkdir()
        bad = tmp_path / "core" / "bad.py"
        bad.write_text("import time\nstart = time.time()\n")
        assert repro_main(["lint", str(tmp_path), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro lint"
        assert log["runs"][0]["results"]

    def test_repro_analyze_emits_valid_sarif(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        (tmp_path / "leaky.py").write_text(
            "class Leaky:\n"
            "    def __init__(self):\n"
            "        self._hits = 0\n"
            "    def export_state(self):\n"
            "        return {}\n"
            "    def restore_state(self, state):\n"
            "        pass\n"
        )
        assert (
            repro_main(["analyze", str(tmp_path), "--format", "sarif"]) == 1
        )
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro analyze"
        rules = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        assert rules == ["checkpoint-completeness"]
