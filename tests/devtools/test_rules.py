"""Per-rule tests driven by the known-good/known-bad fixture files.

Each rule has at least one fixture that fails without the rule and a
matching fixture (or suppression) that passes — so a regression in any
rule turns a ``*_bad`` expectation red.
"""

from pathlib import Path

import pytest

from repro.devtools.lint.engine import LintEngine
from repro.devtools.lint.rules import default_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(relative_path):
    engine = LintEngine(default_rules())
    report = engine.run([str(FIXTURES / relative_path)])
    assert not report.errors, report.errors
    return report.findings


def rule_names(findings):
    return {finding.rule for finding in findings}


class TestPredictorContractRule:
    def test_bad_fixture_flagged(self):
        findings = lint_fixture("predictor_bad.py")
        assert rule_names(findings) == {"predictor-contract"}
        messages = " ".join(f.message for f in findings)
        assert "observe" in messages and "predict" in messages
        assert "DEFAULT_PHASE" in messages

    def test_good_fixture_clean(self):
        assert lint_fixture("predictor_good.py") == []

    def test_non_predictor_classes_ignored(self):
        findings = LintEngine(default_rules()).lint_source(
            "class Helper:\n    pass\n"
        )
        assert findings == []


class TestDeterminismRule:
    def test_bad_fixture_flagged(self):
        findings = lint_fixture("core/determinism_bad.py")
        assert rule_names(findings) == {"determinism"}
        messages = [f.message for f in findings]
        assert any("time.time" in m for m in messages)
        assert any("datetime.now" in m for m in messages)
        assert any("random.random" in m for m in messages)
        assert any("without a seed" in m for m in messages)
        assert any("np.random.normal" in m for m in messages)

    def test_good_fixture_clean(self):
        assert lint_fixture("core/determinism_good.py") == []

    def test_rule_scoped_to_simulation_packages(self):
        source = "import time\nstart = time.time()\n"
        engine = LintEngine(default_rules())
        outside = engine.lint_module(
            _module(source, "src/repro/analysis/mod.py")
        )
        inside = engine.lint_module(_module(source, "src/repro/power/mod.py"))
        assert outside == []
        assert rule_names(inside) == {"determinism"}

    def test_obs_collectors_covered(self):
        # Trace events must never carry wall-clock stamps: tracing has
        # to stay deterministic, so the rule covers repro.obs too.
        source = "import time\nstamp = time.time()\n"
        engine = LintEngine(default_rules())
        findings = engine.lint_module(
            _module(source, "src/repro/obs/tracer.py")
        )
        assert rule_names(findings) == {"determinism"}

    def test_serve_covered_but_clock_references_allowed(self):
        # The serving layer's contract is bit-for-bit equivalence with
        # the offline evaluator, so it may never *call* a clock itself —
        # but passing time.monotonic by reference (the frontends'
        # injection pattern) is deliberately permitted.
        engine = LintEngine(default_rules())
        call = engine.lint_module(
            _module(
                "import time\nnow = time.monotonic()\n",
                "src/repro/serve/session.py",
            )
        )
        assert rule_names(call) == {"determinism"}
        reference = engine.lint_module(
            _module(
                "import time\nDEFAULT_CLOCK = time.monotonic\n",
                "src/repro/serve/frontends.py",
            )
        )
        assert reference == []


class TestPhaseIdRangeRule:
    def test_bad_fixture_flagged(self):
        findings = lint_fixture("phase_range_bad.py")
        assert rule_names(findings) == {"phase-id-range"}
        assert len(findings) == 3  # phase = 7, == 0, predicted_phase = -1

    def test_good_fixture_clean(self):
        assert lint_fixture("phase_range_good.py") == []

    @pytest.mark.parametrize("literal", [1, 2, 3, 4, 5, 6])
    def test_in_range_literals_allowed(self, literal):
        engine = LintEngine(default_rules())
        assert engine.lint_source(f"phase = {literal}\n") == []

    @pytest.mark.parametrize("literal", [0, 7, -1, 100])
    def test_out_of_range_literals_flagged(self, literal):
        engine = LintEngine(default_rules())
        findings = engine.lint_source(f"phase = {literal}\n")
        assert rule_names(findings) == {"phase-id-range"}

    def test_attribute_targets_checked(self):
        engine = LintEngine(default_rules())
        findings = engine.lint_source("obj.predicted_phase = 9\n")
        assert rule_names(findings) == {"phase-id-range"}


class TestFloatEqualityRule:
    def test_bad_fixture_flagged(self):
        findings = lint_fixture("core/float_equality_bad.py")
        assert rule_names(findings) == {"no-float-equality"}
        assert len(findings) == 2

    def test_good_fixture_clean(self):
        assert lint_fixture("core/float_equality_good.py") == []

    def test_rule_scoped_to_core_and_power(self):
        source = "flag = x == 0.0\n"
        engine = LintEngine(default_rules())
        assert engine.lint_module(_module(source, "src/repro/cli.py")) == []
        flagged = engine.lint_module(_module(source, "src/repro/core/x.py"))
        assert rule_names(flagged) == {"no-float-equality"}


class TestMutableDefaultArgsRule:
    def test_bad_fixture_flagged(self):
        findings = lint_fixture("mutable_defaults_bad.py")
        assert rule_names(findings) == {"mutable-default-args"}
        assert len(findings) == 2  # into=[] and counts=dict()

    def test_good_fixture_clean(self):
        assert lint_fixture("mutable_defaults_good.py") == []

    def test_lambda_defaults_flagged(self):
        engine = LintEngine(default_rules())
        findings = engine.lint_source("f = lambda xs=[]: xs\n")
        assert rule_names(findings) == {"mutable-default-args"}


class TestUnitsDocstringRule:
    def test_bad_fixture_flagged(self):
        findings = lint_fixture("power/units_bad.py")
        assert rule_names(findings) == {"units-docstring"}
        assert len(findings) == 2  # missing unit word; missing docstring

    def test_good_fixture_clean(self):
        assert lint_fixture("power/units_good.py") == []

    def test_rule_scoped_to_power_and_cpu(self):
        source = 'def power_watts(x):\n    """No unit here."""\n    return x\n'
        engine = LintEngine(default_rules())
        assert engine.lint_module(_module(source, "src/repro/core/x.py")) == []
        flagged = engine.lint_module(_module(source, "src/repro/cpu/x.py"))
        assert rule_names(flagged) == {"units-docstring"}


class TestSuppressionFixture:
    def test_suppressed_fixture_is_clean(self):
        assert lint_fixture("suppressed.py") == []

    def test_same_code_unsuppressed_is_flagged(self):
        source = (FIXTURES / "suppressed.py").read_text()
        stripped = "\n".join(
            line.split("#")[0].rstrip() for line in source.splitlines()
        )
        findings = LintEngine(default_rules()).lint_source(stripped)
        assert rule_names(findings) == {
            "phase-id-range",
            "mutable-default-args",
        }


def _module(source, path):
    from repro.devtools.lint.engine import ParsedModule

    return ParsedModule.from_source(source, path)
