"""Self-check: the repository satisfies every whole-program analysis.

The mutation tests at the bottom are the acceptance criterion for the
analyzer itself: corrupting a real invariant in a scratch copy of the
repo's own sources (dropping a field from GPHT's ``export_state``,
adding a ``time.sleep`` to an async serve handler) must produce a
finding with a file and line.
"""

import io
import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.devtools.analyze import AnalyzeEngine, run_analyze
from repro.devtools.analyze.cli import main as analyze_main
from repro.devtools.lint.engine import EXIT_CLEAN

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
GPHT = SRC / "repro" / "core" / "predictors" / "gpht.py"
FRONTENDS = SRC / "repro" / "serve" / "frontends.py"


class TestRepositoryIsClean:
    def test_engine_clean_on_src(self):
        report = AnalyzeEngine().run([str(SRC)])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"analyze regressions:\n{formatted}"
        assert report.errors == []
        assert report.files_checked > 100

    def test_module_entry_point_clean_on_src(self, capsys):
        assert analyze_main([str(SRC)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out


class TestCliIntegration:
    def test_repro_analyze_src_exits_zero(self, capsys):
        assert repro_main(["analyze", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_analyze_json_format(self, capsys):
        assert repro_main(["analyze", str(SRC), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finding_count"] == 0
        assert payload["exit_code"] == 0
        assert payload["tool"] == "repro analyze"

    def test_repro_analyze_list_rules(self, capsys):
        assert repro_main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "checkpoint-completeness",
            "async-blocking",
            "determinism-taint",
            "layering",
            "protocol-conformance",
        ):
            assert name in out
        assert "repro-analyze: disable=" in out

    def test_run_analyze_sarif_stream_on_src(self):
        stream = io.StringIO()
        code = run_analyze([str(SRC)], output_format="sarif", stream=stream)
        assert code == 0
        log = json.loads(stream.getvalue())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []


class TestMutationCatchesCheckpointLoss:
    """Dropping a field from GPHT's export dict must fail the analysis."""

    def test_pristine_gpht_copy_is_clean(self, tmp_path):
        (tmp_path / "gpht.py").write_text(GPHT.read_text())
        report = AnalyzeEngine().run([str(tmp_path)])
        assert report.findings == []

    def test_dropped_export_field_is_flagged(self, tmp_path):
        source = GPHT.read_text()
        mutated = source.replace('"hits": self._hits,', "")
        assert mutated != source, "gpht.py export_state no longer has hits"
        (tmp_path / "gpht.py").write_text(mutated)
        report = AnalyzeEngine().run([str(tmp_path)])
        checkpoint = [
            f for f in report.findings
            if f.rule == "checkpoint-completeness"
        ]
        assert len(checkpoint) == 1
        finding = checkpoint[0]
        assert finding.path.endswith("gpht.py")
        assert finding.line > 0
        assert "_hits" in finding.message
        assert report.exit_code == 1


class TestMutationCatchesBlockingHandler:
    """A time.sleep added to an async serve handler must be flagged."""

    def _scratch(self, tmp_path, source):
        serve = tmp_path / "serve"
        serve.mkdir()
        (serve / "__init__.py").write_text("")
        (serve / "frontends.py").write_text(source)
        return AnalyzeEngine().run([str(tmp_path)])

    def test_pristine_frontends_copy_is_clean(self, tmp_path):
        report = self._scratch(tmp_path, FRONTENDS.read_text())
        assert report.findings == []

    def test_sleeping_handler_is_flagged(self, tmp_path):
        mutated = FRONTENDS.read_text() + (
            "\n\nasync def _scratch_handler() -> None:\n"
            "    time.sleep(0.01)\n"
        )
        report = self._scratch(tmp_path, mutated)
        blocking = [
            f for f in report.findings if f.rule == "async-blocking"
        ]
        assert len(blocking) == 1
        finding = blocking[0]
        assert finding.path.endswith("frontends.py")
        expected_line = (
            mutated.splitlines().index("    time.sleep(0.01)") + 1
        )
        assert finding.line == expected_line
        assert "time.sleep" in finding.message
        assert report.exit_code == 1
