"""Tests for the parallel-port synchronisation latch."""

import pytest

from repro.errors import ConfigurationError
from repro.system.parallel_port import PORT_WIDTH, ParallelPort


def test_starts_all_low():
    assert ParallelPort().value == 0


def test_set_and_clear():
    port = ParallelPort()
    port.set_bit(2)
    assert port.value == 0b100
    assert port.bit(2)
    port.clear_bit(2)
    assert port.value == 0
    assert not port.bit(2)


def test_set_is_idempotent():
    port = ParallelPort()
    port.set_bit(1)
    port.set_bit(1)
    assert port.value == 0b010


def test_toggle():
    port = ParallelPort()
    port.toggle_bit(0)
    assert port.bit(0)
    port.toggle_bit(0)
    assert not port.bit(0)


def test_bits_independent():
    port = ParallelPort()
    port.set_bit(0)
    port.set_bit(2)
    port.clear_bit(0)
    assert port.value == 0b100


def test_reset():
    port = ParallelPort()
    port.set_bit(0)
    port.set_bit(1)
    port.reset()
    assert port.value == 0


@pytest.mark.parametrize("index", [-1, PORT_WIDTH, 10])
def test_out_of_range_bits_rejected(index):
    port = ParallelPort()
    with pytest.raises(ConfigurationError):
        port.set_bit(index)
    with pytest.raises(ConfigurationError):
        port.bit(index)
