"""Tests for system-variability injection and the pipeline's resilience
to it (paper Section 5.1)."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.predictors import GPHTPredictor
from repro.errors import ConfigurationError
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.system.variability import SystemVariability
from repro.workloads.spec2000 import benchmark


@pytest.fixture(scope="module")
def applu_trace():
    return benchmark("applu_in").trace(n_intervals=200)


class TestPerturbation:
    def test_preserves_structure(self, applu_trace):
        perturbed = SystemVariability(seed=1).perturb(applu_trace)
        assert len(perturbed) == len(applu_trace)
        assert perturbed.name == applu_trace.name
        for original, noisy in zip(applu_trace, perturbed):
            assert noisy.uops == original.uops
            assert noisy.uops_per_instruction == original.uops_per_instruction

    def test_actually_perturbs(self, applu_trace):
        perturbed = SystemVariability(seed=1).perturb(applu_trace)
        changed = sum(
            1
            for original, noisy in zip(applu_trace, perturbed)
            if noisy.mem_per_uop != original.mem_per_uop
        )
        assert changed > len(applu_trace) * 0.9

    def test_deterministic_per_seed(self, applu_trace):
        a = SystemVariability(seed=7).perturb(applu_trace)
        b = SystemVariability(seed=7).perturb(applu_trace)
        assert a.mem_per_uop_series() == b.mem_per_uop_series()

    def test_different_seeds_differ(self, applu_trace):
        a = SystemVariability(seed=1).perturb(applu_trace)
        b = SystemVariability(seed=2).perturb(applu_trace)
        assert a.mem_per_uop_series() != b.mem_per_uop_series()

    def test_with_seed(self):
        model = SystemVariability(seed=1)
        assert model.with_seed(9).seed == 9
        assert model.seed == 1

    def test_zero_noise_is_identity_on_rates(self, applu_trace):
        model = SystemVariability(
            mem_noise_sigma=0.0,
            upc_noise_sigma=0.0,
            intrusion_probability=0.0,
        )
        perturbed = model.perturb(applu_trace)
        assert (
            perturbed.mem_per_uop_series() == applu_trace.mem_per_uop_series()
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemVariability(mem_noise_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            SystemVariability(intrusion_probability=1.5)
        with pytest.raises(ConfigurationError):
            SystemVariability(intrusion_slowdown=1.0)


class TestResilience:
    """The paper's claim: fixed-instruction-granularity phases are
    resilient to real-system variations."""

    def test_prediction_accuracy_survives_variability(self, applu_trace):
        clean = evaluate_predictor(
            GPHTPredictor(8, 128), applu_trace.mem_per_uop_series()
        )
        noisy_trace = SystemVariability(seed=3).perturb(applu_trace)
        noisy = evaluate_predictor(
            GPHTPredictor(8, 128), noisy_trace.mem_per_uop_series()
        )
        assert noisy.accuracy > clean.accuracy - 0.08

    def test_management_outcome_stable_under_variability(self, applu_trace):
        machine = Machine()
        baseline = machine.run(
            applu_trace, StaticGovernor(machine.speedstep.fastest)
        )
        managed = machine.run(
            applu_trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        clean = ComparisonMetrics(baseline=baseline, managed=managed)

        noisy_trace = SystemVariability(seed=5).perturb(applu_trace)
        noisy_baseline = machine.run(
            noisy_trace, StaticGovernor(machine.speedstep.fastest)
        )
        noisy_managed = machine.run(
            noisy_trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        noisy = ComparisonMetrics(
            baseline=noisy_baseline, managed=noisy_managed
        )
        assert noisy.edp_improvement == pytest.approx(
            clean.edp_improvement, abs=0.05
        )
