"""Tests for the full simulated machine."""

import pytest

from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.power.daq import DataAcquisitionSystem
from repro.system.machine import Machine
from repro.workloads.segments import SegmentSpec, WorkloadTrace, uniform_trace


def small_machine():
    """A machine with a small PMI granularity for fast tests."""
    return Machine(granularity_uops=1_000_000)


def trace_of(levels, uops=1_000_000, name="t"):
    return uniform_trace(name, levels, uops_per_segment=uops)


class TestRunBasics:
    def test_one_interval_per_granularity(self):
        machine = small_machine()
        trace = trace_of([(0.01, 1.0)] * 7)
        result = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
        assert len(result.intervals) == 7

    def test_totals_match_trace(self):
        machine = small_machine()
        trace = trace_of([(0.01, 1.0)] * 5)
        result = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
        assert result.total_uops == trace.total_uops
        assert result.total_instructions == pytest.approx(
            trace.total_instructions
        )
        assert result.total_seconds > 0
        assert result.total_energy_j > 0

    def test_interval_energy_sums_to_total(self):
        machine = small_machine()
        trace = trace_of([(0.02, 1.2)] * 6)
        result = machine.run(trace, ReactiveGovernor())
        interval_energy = sum(m.energy_j for m in result.intervals)
        # Totals additionally include handler energy.
        assert interval_energy <= result.total_energy_j
        assert interval_energy == pytest.approx(
            result.total_energy_j, rel=0.01
        )

    def test_segments_split_across_interval_boundaries(self):
        """A single big segment must still produce per-granularity
        intervals."""
        machine = small_machine()
        trace = WorkloadTrace(
            "big",
            [SegmentSpec(uops=5_000_000, mem_per_uop=0.01, upc_core=1.0)],
        )
        result = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
        assert len(result.intervals) == 5

    def test_fine_segments_aggregate_into_intervals(self):
        machine = small_machine()
        trace = trace_of([(0.01, 1.0)] * 10, uops=500_000)
        result = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
        assert len(result.intervals) == 5
        assert result.intervals[0].record.uops == 1_000_000


class TestGovernance:
    def test_static_governor_never_transitions(self):
        machine = small_machine()
        trace = trace_of([(0.0, 1.5), (0.04, 1.0)] * 5)
        result = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
        assert result.transition_count == 0
        assert set(result.frequency_series()) == {1500}

    def test_reactive_governor_follows_phases(self):
        machine = small_machine()
        trace = trace_of([(0.0, 1.5)] * 3 + [(0.04, 1.0)] * 3)
        result = machine.run(trace, ReactiveGovernor())
        # Interval 3 observes phase 6, so interval 4 runs at 600 MHz.
        assert result.frequency_series()[4] == 600
        assert result.transition_count >= 1

    def test_decision_takes_effect_next_interval(self):
        machine = small_machine()
        trace = trace_of([(0.04, 1.0)] * 3)
        result = machine.run(trace, ReactiveGovernor())
        frequencies = result.frequency_series()
        assert frequencies[0] == 1500  # starts at the baseline point
        assert frequencies[1] == 600   # reaction to interval 0

    def test_governor_is_reset_between_runs(self):
        machine = small_machine()
        governor = PhasePredictionGovernor(GPHTPredictor(4, 16))
        trace = trace_of([(0.01, 1.0)] * 3)
        machine.run(trace, governor)
        result = machine.run(trace, governor)
        assert len(governor.decisions) == 3
        assert result.intervals[0].record.interval_index == 0

    def test_initial_point_override(self):
        machine = small_machine()
        slow = machine.speedstep.slowest
        trace = trace_of([(0.0, 1.5)] * 2)
        result = machine.run(
            trace, StaticGovernor(slow), initial_point=slow
        )
        assert set(result.frequency_series()) == {600}


class TestOverheads:
    def test_handler_overhead_is_invisible(self):
        """The paper's 'no observable overheads' claim: handler time is
        a vanishing fraction of execution at 100M-uop granularity."""
        machine = Machine()  # full 100M-uop granularity
        trace = uniform_trace(
            "t", [(0.01, 1.0)] * 5, uops_per_segment=100_000_000
        )
        result = machine.run(
            trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        assert result.handler_overhead_fraction < 1e-3

    def test_handler_seconds_reported(self):
        machine = small_machine()
        trace = trace_of([(0.01, 1.0)] * 4)
        result = machine.run(trace, ReactiveGovernor())
        assert result.handler_seconds > 0


class TestEnergyBehaviour:
    def test_slow_execution_draws_less_power(self):
        machine = small_machine()
        trace = trace_of([(0.03, 1.0)] * 6)
        fast = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
        slow = machine.run(
            trace,
            StaticGovernor(machine.speedstep.slowest),
            initial_point=machine.speedstep.slowest,
        )
        assert slow.average_power_w < fast.average_power_w
        assert slow.total_seconds > fast.total_seconds

    def test_memory_bound_run_uses_less_power_than_cpu_bound(self):
        machine = small_machine()
        cpu = machine.run(
            trace_of([(0.0, 1.5)] * 4, name="cpu"),
            StaticGovernor(machine.speedstep.fastest),
        )
        mem = machine.run(
            trace_of([(0.05, 1.5)] * 4, name="mem"),
            StaticGovernor(machine.speedstep.fastest),
        )
        assert mem.average_power_w < cpu.average_power_w


class TestDAQIntegration:
    def test_daq_sees_the_whole_run(self):
        machine = small_machine()
        daq = DataAcquisitionSystem()
        trace = trace_of([(0.01, 1.0)] * 4)
        result = machine.run(trace, ReactiveGovernor(), daq=daq)
        times, *_ = daq.raw_arrays()
        assert daq.sample_count > 0
        assert times[-1] <= result.total_seconds


class TestPartialIntervals:
    def test_trailing_partial_interval_counts_toward_totals_only(self):
        machine = Machine(granularity_uops=1_000_000)
        # 2.5 intervals of work: the final half interval never triggers
        # a PMI, so it appears in totals but not in the interval log.
        trace = WorkloadTrace(
            "partial",
            [SegmentSpec(uops=2_500_000, mem_per_uop=0.01, upc_core=1.0)],
        )
        result = machine.run(trace, ReactiveGovernor())
        assert len(result.intervals) == 2
        assert result.total_uops == 2_500_000
        interval_seconds = sum(m.seconds for m in result.intervals)
        assert result.total_seconds > interval_seconds

    def test_trace_shorter_than_granularity_has_no_intervals(self):
        machine = Machine(granularity_uops=10_000_000)
        trace = WorkloadTrace(
            "tiny",
            [SegmentSpec(uops=1_000_000, mem_per_uop=0.01, upc_core=1.0)],
        )
        result = machine.run(trace, ReactiveGovernor())
        assert result.intervals == ()
        assert result.total_energy_j > 0
        assert result.transition_count == 0
