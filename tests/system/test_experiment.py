"""Tests for the baseline-vs-managed experiment harness."""

import pytest

from repro.core.governor import PhasePredictionGovernor, ReactiveGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.experiment import run_comparison, run_suite
from repro.system.machine import Machine
from repro.workloads.spec2000 import benchmark


@pytest.fixture(scope="module")
def machine():
    return Machine()


def test_run_comparison_structure(machine):
    result = run_comparison(
        benchmark("swim_in"),
        lambda: ReactiveGovernor(),
        machine,
        n_intervals=30,
    )
    assert result.benchmark_name == "swim_in"
    assert result.baseline.governor_name.startswith("Static")
    assert result.managed.governor_name == "Reactive"
    assert result.baseline.workload_name == result.managed.workload_name


def test_baseline_runs_at_full_speed(machine):
    result = run_comparison(
        benchmark("swim_in"), lambda: ReactiveGovernor(), machine,
        n_intervals=20,
    )
    assert set(result.baseline.frequency_series()) == {1500}


def test_memory_bound_benchmark_improves_edp(machine):
    result = run_comparison(
        benchmark("mcf_inp"),
        lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
        machine,
        n_intervals=60,
    )
    assert result.comparison.edp_improvement > 0.4


def test_run_suite_preserves_order_and_keys(machine):
    names = ["swim_in", "crafty_in"]
    results = run_suite(names, lambda: ReactiveGovernor(), machine,
                        n_intervals=15)
    assert list(results) == names
    for name, comparison in results.items():
        assert comparison.benchmark_name == name


def test_fresh_governor_per_benchmark(machine):
    created = []

    def factory():
        governor = ReactiveGovernor()
        created.append(governor)
        return governor

    run_suite(["swim_in", "crafty_in"], factory, machine, n_intervals=10)
    assert len(created) == 2
    assert created[0] is not created[1]


def test_default_machine_is_built_when_omitted():
    result = run_comparison(
        benchmark("crafty_in"), lambda: ReactiveGovernor(), n_intervals=5
    )
    assert result.baseline.total_seconds > 0


def test_compare_governors_shares_one_baseline(machine):
    from repro.core.predictors import GPHTPredictor
    from repro.core.governor import PhasePredictionGovernor
    from repro.system.experiment import compare_governors

    comparisons = compare_governors(
        benchmark("applu_in"),
        {
            "gpht": lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
            "reactive": lambda: ReactiveGovernor(),
        },
        machine,
        n_intervals=60,
    )
    assert list(comparisons) == ["gpht", "reactive"]
    gpht = comparisons["gpht"]
    reactive = comparisons["reactive"]
    # Shared baseline: identical baseline runs by construction.
    assert gpht.baseline.total_energy_j == reactive.baseline.total_energy_j
    assert gpht.baseline.total_seconds == reactive.baseline.total_seconds
    # On the variable benchmark the proactive governor wins.
    assert gpht.edp_improvement > reactive.edp_improvement
