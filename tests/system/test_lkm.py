"""Tests for the kernel-module analogue and its PMI handler."""

import pytest

from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.predictors import LastValuePredictor
from repro.cpu.dvfs import DVFSInterface
from repro.errors import ConfigurationError
from repro.pmc.counters import PMCBank
from repro.pmc.events import PAPER_COUNTER_CONFIG, PMCEvent
from repro.pmc.interrupt import PMIController
from repro.system.lkm import (
    IN_HANDLER_BIT,
    PHASE_TOGGLE_BIT,
    PhaseMonitorLKM,
)
from repro.system.parallel_port import ParallelPort


def make_lkm(governor=None, granularity=1000):
    bank = PMCBank(PAPER_COUNTER_CONFIG)
    dvfs = DVFSInterface()
    port = ParallelPort()
    if governor is None:
        governor = PhasePredictionGovernor(LastValuePredictor())
    lkm = PhaseMonitorLKM(
        governor, bank, dvfs, port, granularity_uops=granularity
    )
    return lkm, bank, dvfs, port


def run_interval(lkm, bank, uops=1000, mem=0.012, cycles=800, time_s=0.0):
    bank.advance(
        {PMCEvent.UOPS_RETIRED: uops, PMCEvent.BUS_TRAN_MEM: uops * mem},
        cycles,
    )
    return lkm.handle_interrupt(time_s)


class TestLifecycle:
    def test_load_arms_counters_and_registers_handler(self):
        lkm, bank, _, _ = make_lkm()
        pmi = PMIController()
        lkm.load(pmi)
        assert lkm.loaded
        assert pmi.handler_registered
        assert bank.overflow_threshold(PMCEvent.UOPS_RETIRED) == 1000

    def test_unload_reverses_load(self):
        lkm, bank, _, _ = make_lkm()
        pmi = PMIController()
        lkm.load(pmi)
        lkm.unload(pmi)
        assert not lkm.loaded
        assert not pmi.handler_registered
        assert bank.overflow_threshold(PMCEvent.UOPS_RETIRED) is None

    def test_double_load_raises(self):
        lkm, _, _, _ = make_lkm()
        pmi = PMIController()
        lkm.load(pmi)
        with pytest.raises(ConfigurationError):
            lkm.load(pmi)

    def test_unload_without_load_raises(self):
        lkm, _, _, _ = make_lkm()
        with pytest.raises(ConfigurationError):
            lkm.unload(PMIController())

    def test_rejects_bad_parameters(self):
        bank = PMCBank(PAPER_COUNTER_CONFIG)
        dvfs = DVFSInterface()
        governor = StaticGovernor(dvfs.table.fastest)
        with pytest.raises(ConfigurationError):
            PhaseMonitorLKM(governor, bank, dvfs, granularity_uops=0)
        with pytest.raises(ConfigurationError):
            PhaseMonitorLKM(governor, bank, dvfs, handler_overhead_s=-1.0)


class TestHandlerFlow:
    """The Figure 8 control flow, step by step."""

    def test_handler_classifies_and_programs_dvfs(self):
        lkm, bank, dvfs, _ = make_lkm()
        run_interval(lkm, bank, mem=0.012)  # phase 3 -> 1200 MHz next
        assert dvfs.current.frequency_mhz == 1200

    def test_handler_restarts_counters(self):
        lkm, bank, _, _ = make_lkm()
        run_interval(lkm, bank)
        assert bank.read(PMCEvent.UOPS_RETIRED) == 0
        assert bank.tsc_cycles == 0
        assert bank.running

    def test_handler_toggles_phase_bit(self):
        lkm, bank, _, port = make_lkm()
        run_interval(lkm, bank)
        assert port.bit(PHASE_TOGGLE_BIT)
        run_interval(lkm, bank)
        assert not port.bit(PHASE_TOGGLE_BIT)

    def test_handler_clears_in_handler_bit_on_exit(self):
        lkm, bank, _, port = make_lkm()
        run_interval(lkm, bank)
        assert not port.bit(IN_HANDLER_BIT)

    def test_handler_cost_includes_transition(self):
        lkm, bank, dvfs, _ = make_lkm(granularity=1000)
        cost_with_change = run_interval(lkm, bank, mem=0.05)
        # Second identical interval: DVFS already at the target.
        cost_same = run_interval(lkm, bank, mem=0.05)
        assert cost_with_change > cost_same
        assert cost_same == pytest.approx(5e-6)

    def test_total_handler_seconds_accumulates(self):
        lkm, bank, _, _ = make_lkm()
        a = run_interval(lkm, bank, mem=0.05)
        b = run_interval(lkm, bank, mem=0.05)
        assert lkm.total_handler_seconds == pytest.approx(a + b)


class TestKernelLog:
    def test_log_records_interval_facts(self):
        lkm, bank, _, _ = make_lkm()
        run_interval(lkm, bank, uops=1000, mem=0.012, cycles=800, time_s=1.5)
        record = lkm.read_log()[0]
        assert record.interval_index == 0
        assert record.time_s == 1.5
        assert record.uops == 1000
        assert record.mem_per_uop == pytest.approx(0.012)
        assert record.upc == pytest.approx(1000 / 800)
        assert record.actual_phase == 3
        assert record.predicted_phase == 3
        assert record.frequency_mhz == 1500
        assert record.next_frequency_mhz == 1200

    def test_log_grows_per_interval(self):
        lkm, bank, _, _ = make_lkm()
        for _ in range(5):
            run_interval(lkm, bank)
        assert len(lkm.read_log()) == 5
        indices = [r.interval_index for r in lkm.read_log()]
        assert indices == [0, 1, 2, 3, 4]

    def test_clear_log(self):
        lkm, bank, _, _ = make_lkm()
        run_interval(lkm, bank)
        lkm.clear_log()
        assert lkm.read_log() == ()
        assert lkm.total_handler_seconds == 0.0
        run_interval(lkm, bank)
        assert lkm.read_log()[0].interval_index == 0
