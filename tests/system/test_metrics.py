"""Tests for run results and comparison metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.system.lkm import KernelLogRecord
from repro.system.metrics import (
    ComparisonMetrics,
    IntervalMetrics,
    RunResult,
    mean,
)


def record(index=0, actual=3, predicted=3, frequency=1500):
    return KernelLogRecord(
        interval_index=index,
        time_s=float(index),
        uops=1e8,
        mem_transactions=1.2e6,
        instructions=8e7,
        tsc_cycles=1e8,
        mem_per_uop=0.012,
        upc=1.0,
        actual_phase=actual,
        predicted_phase=predicted,
        frequency_mhz=frequency,
        next_frequency_mhz=frequency,
    )


def interval(index=0, seconds=0.1, energy=1.0, instructions=8e7, **kwargs):
    return IntervalMetrics(
        record=record(index, **kwargs),
        seconds=seconds,
        energy_j=energy,
        instructions=instructions,
    )


def run_result(intervals, seconds=None, energy=None, name="bench",
               governor="gov"):
    total_seconds = seconds if seconds is not None else sum(
        m.seconds for m in intervals
    )
    total_energy = energy if energy is not None else sum(
        m.energy_j for m in intervals
    )
    return RunResult(
        workload_name=name,
        governor_name=governor,
        intervals=tuple(intervals),
        total_instructions=sum(m.instructions for m in intervals),
        total_uops=1e8 * len(intervals),
        total_seconds=total_seconds,
        total_energy_j=total_energy,
        handler_seconds=1e-5 * len(intervals),
        transition_count=0,
    )


class TestIntervalMetrics:
    def test_power_and_bips(self):
        m = interval(seconds=0.5, energy=5.0, instructions=1e9)
        assert m.power_w == pytest.approx(10.0)
        assert m.bips == pytest.approx(2.0)

    def test_zero_duration_guards(self):
        m = interval(seconds=0.0, energy=0.0)
        assert m.power_w == 0.0
        assert m.bips == 0.0


class TestRunResult:
    def test_aggregate_metrics(self):
        result = run_result([interval(i) for i in range(4)])
        assert result.bips == pytest.approx(
            (4 * 8e7) / 1e9 / (4 * 0.1)
        )
        assert result.average_power_w == pytest.approx(10.0)
        assert result.edp == pytest.approx(4.0 * 0.4)

    def test_series_accessors(self):
        result = run_result(
            [interval(0, actual=1), interval(1, actual=6, frequency=600)]
        )
        assert result.actual_phases() == [1, 6]
        assert result.frequency_series() == [1500, 600]
        assert len(result.power_series()) == 2
        assert len(result.bips_series()) == 2
        assert result.mem_per_uop_series() == [0.012, 0.012]

    def test_prediction_accuracy_uses_next_interval(self):
        intervals = [
            interval(0, actual=1, predicted=6),
            interval(1, actual=6, predicted=6),
            interval(2, actual=6, predicted=1),
            interval(3, actual=1, predicted=1),
        ]
        result = run_result(intervals)
        # Scored pairs: (pred0=6 vs actual1=6) hit, (pred1=6 vs actual2=6)
        # hit, (pred2=1 vs actual3=1) hit -> 3/3.
        assert result.prediction_accuracy() == 1.0

    def test_prediction_accuracy_counts_misses(self):
        intervals = [
            interval(0, actual=1, predicted=1),
            interval(1, actual=6, predicted=6),  # pred0 was wrong
            interval(2, actual=6, predicted=6),  # pred1 was right
        ]
        assert run_result(intervals).prediction_accuracy() == pytest.approx(0.5)

    def test_prediction_accuracy_short_run(self):
        assert run_result([interval(0)]).prediction_accuracy() == 1.0

    def test_handler_overhead_fraction(self):
        result = run_result([interval(i) for i in range(2)])
        assert result.handler_overhead_fraction == pytest.approx(
            2e-5 / 0.2
        )


class TestComparisonMetrics:
    def baseline_and_managed(self):
        baseline = run_result(
            [interval(i, seconds=0.1, energy=1.2) for i in range(4)]
        )
        managed = run_result(
            [interval(i, seconds=0.11, energy=0.6) for i in range(4)],
            governor="managed",
        )
        return baseline, managed

    def test_normalised_metrics(self):
        baseline, managed = self.baseline_and_managed()
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        assert comparison.normalized_power == pytest.approx(
            (0.6 / 0.11) / (1.2 / 0.1)
        )
        assert comparison.normalized_bips == pytest.approx(0.1 / 0.11)
        assert comparison.performance_degradation == pytest.approx(
            1 - 0.1 / 0.11
        )
        assert comparison.energy_savings == pytest.approx(0.5)

    def test_edp_improvement(self):
        baseline, managed = self.baseline_and_managed()
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        expected = 1 - (2.4 * 0.44) / (4.8 * 0.4)
        assert comparison.edp_improvement == pytest.approx(expected)

    def test_rejects_mismatched_workloads(self):
        baseline = run_result([interval(0)], name="a")
        managed = run_result([interval(0)], name="b")
        with pytest.raises(ConfigurationError):
            ComparisonMetrics(baseline=baseline, managed=managed)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])


class TestPhaseSummary:
    def test_aggregates_by_actual_phase(self):
        intervals = [
            interval(0, actual=1, seconds=0.1, energy=1.2),
            interval(1, actual=6, seconds=0.3, energy=0.9),
            interval(2, actual=6, seconds=0.3, energy=0.9),
            interval(3, actual=1, seconds=0.1, energy=1.2),
        ]
        summary = run_result(intervals).phase_summary()
        assert set(summary) == {1, 6}
        assert summary[1].interval_count == 2
        assert summary[6].seconds == pytest.approx(0.6)
        assert summary[6].energy_j == pytest.approx(1.8)

    def test_time_shares_sum_to_one(self):
        intervals = [
            interval(0, actual=1, seconds=0.1),
            interval(1, actual=3, seconds=0.2),
            interval(2, actual=6, seconds=0.7),
        ]
        summary = run_result(intervals).phase_summary()
        assert sum(s.time_share for s in summary.values()) == pytest.approx(1.0)

    def test_mean_power_per_phase(self):
        intervals = [interval(0, actual=2, seconds=0.5, energy=5.0)]
        summary = run_result(intervals).phase_summary()
        assert summary[2].mean_power_w == pytest.approx(10.0)

    def test_memory_phases_draw_less_power_end_to_end(self):
        """On a real mixed run at a fixed frequency, phase-6 intervals
        draw less power than phase-1 intervals."""
        from repro.core.governor import StaticGovernor
        from repro.system.machine import Machine
        from repro.workloads.segments import uniform_trace

        machine = Machine(granularity_uops=1_000_000)
        trace = uniform_trace(
            "mix", [(0.0, 1.5)] * 3 + [(0.05, 1.5)] * 3,
            uops_per_segment=1_000_000,
        )
        result = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        summary = result.phase_summary()
        assert summary[6].mean_power_w < summary[1].mean_power_w
