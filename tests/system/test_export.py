"""Tests for run-result export (CSV/JSON)."""

import csv
import io
import json

import pytest

from repro.core.governor import ReactiveGovernor
from repro.system.export import (
    INTERVAL_COLUMNS,
    intervals_to_rows,
    run_summary,
    run_to_csv,
    run_to_json,
)
from repro.system.machine import Machine
from repro.workloads.segments import uniform_trace


@pytest.fixture(scope="module")
def result():
    machine = Machine(granularity_uops=1_000_000)
    trace = uniform_trace(
        "mix", [(0.0, 1.5), (0.04, 1.0)] * 3, uops_per_segment=1_000_000
    )
    return machine.run(trace, ReactiveGovernor())


class TestRows:
    def test_one_row_per_interval(self, result):
        rows = intervals_to_rows(result)
        assert len(rows) == len(result.intervals)

    def test_rows_carry_all_columns(self, result):
        for row in intervals_to_rows(result):
            assert set(row) == set(INTERVAL_COLUMNS)

    def test_row_values_match_intervals(self, result):
        row = intervals_to_rows(result)[0]
        interval = result.intervals[0]
        assert row["actual_phase"] == interval.record.actual_phase
        assert row["power_w"] == pytest.approx(interval.power_w)


class TestCSV:
    def test_round_trips_through_csv_reader(self, result):
        text = run_to_csv(result)
        reader = csv.DictReader(io.StringIO(text))
        rows = list(reader)
        assert len(rows) == len(result.intervals)
        assert reader.fieldnames == list(INTERVAL_COLUMNS)
        assert int(rows[0]["actual_phase"]) in range(1, 7)

    def test_frequencies_serialised(self, result):
        text = run_to_csv(result)
        rows = list(csv.DictReader(io.StringIO(text)))
        frequencies = {int(r["frequency_mhz"]) for r in rows}
        assert frequencies <= {1500, 1400, 1200, 1000, 800, 600}


class TestJSON:
    def test_summary_fields(self, result):
        summary = run_summary(result)
        assert summary["workload"] == "mix"
        assert summary["intervals"] == len(result.intervals)
        assert summary["bips"] == pytest.approx(result.bips)
        assert summary["edp"] == pytest.approx(result.edp)

    def test_json_parses_and_matches(self, result):
        payload = json.loads(run_to_json(result))
        assert payload["summary"]["governor"] == "Reactive"
        assert len(payload["intervals"]) == len(result.intervals)

    def test_json_without_intervals(self, result):
        payload = json.loads(run_to_json(result, include_intervals=False))
        assert "intervals" not in payload
        assert "summary" in payload
