"""Tests for the DVFS mode-set register interface."""

import pytest

from repro.cpu.dvfs import DEFAULT_TRANSITION_SECONDS, DVFSInterface
from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults_to_fastest_point(self):
        dvfs = DVFSInterface()
        assert dvfs.current.frequency_mhz == 1500

    def test_custom_initial_point(self):
        table = SpeedStepTable()
        dvfs = DVFSInterface(table, initial=table.at_frequency(600))
        assert dvfs.current.frequency_mhz == 600

    def test_rejects_initial_point_outside_table(self):
        with pytest.raises(ConfigurationError):
            DVFSInterface(initial=OperatingPoint(900, 1000))

    def test_rejects_negative_transition_time(self):
        with pytest.raises(ConfigurationError):
            DVFSInterface(transition_seconds=-1e-6)


class TestRequest:
    def test_same_setting_is_free(self):
        """Figure 8's 'Same as current setting?' short-circuit."""
        dvfs = DVFSInterface()
        cost = dvfs.request(dvfs.current)
        assert cost == 0.0
        assert dvfs.transition_count == 0

    def test_change_pays_transition_and_updates(self):
        dvfs = DVFSInterface()
        target = dvfs.table.at_frequency(600)
        cost = dvfs.request(target, time_s=1.0)
        assert cost == pytest.approx(DEFAULT_TRANSITION_SECONDS)
        assert dvfs.current == target
        assert dvfs.transition_count == 1

    def test_transition_log_records_endpoints(self):
        dvfs = DVFSInterface()
        dvfs.request(dvfs.table.at_frequency(800), time_s=2.5)
        record = dvfs.transitions[0]
        assert record.time_s == 2.5
        assert record.previous.frequency_mhz == 1500
        assert record.new.frequency_mhz == 800

    def test_rejects_unsupported_point(self):
        dvfs = DVFSInterface()
        with pytest.raises(ConfigurationError, match="not supported"):
            dvfs.request(OperatingPoint(1300, 1400))

    def test_repeated_toggling_counts_each_change(self):
        dvfs = DVFSInterface()
        fast = dvfs.table.fastest
        slow = dvfs.table.slowest
        for _ in range(3):
            dvfs.request(slow)
            dvfs.request(fast)
        assert dvfs.transition_count == 6


class TestReset:
    def test_reset_restores_fastest_and_clears_log(self):
        dvfs = DVFSInterface()
        dvfs.request(dvfs.table.slowest)
        dvfs.reset()
        assert dvfs.current == dvfs.table.fastest
        assert dvfs.transitions == ()

    def test_reset_to_specific_point(self):
        dvfs = DVFSInterface()
        dvfs.reset(dvfs.table.at_frequency(1000))
        assert dvfs.current.frequency_mhz == 1000

    def test_reset_rejects_foreign_point(self):
        dvfs = DVFSInterface()
        with pytest.raises(ConfigurationError):
            dvfs.reset(OperatingPoint(2000, 1500))
