"""Tests for the analytic timing model, including the paper's Section 4
DVFS-(in)variance properties."""

import pytest

from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec

TABLE = SpeedStepTable()
FASTEST = TABLE.fastest
SLOWEST = TABLE.slowest


def segment(mem=0.01, upc=1.0, uops=100_000_000, overlap=0.0):
    return SegmentSpec(
        uops=uops, mem_per_uop=mem, upc_core=upc, mem_overlap=overlap
    )


class TestValidation:
    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigurationError):
            TimingModel(memory_latency_ns=0)

    def test_rejects_out_of_range_overlap(self):
        with pytest.raises(ConfigurationError):
            TimingModel(overlap=1.0)
        with pytest.raises(ConfigurationError):
            TimingModel(overlap=-0.1)

    def test_boundary_rejects_negative_mem(self):
        with pytest.raises(ConfigurationError):
            TimingModel().max_upc_boundary(-0.001, FASTEST)


class TestCycleAccounting:
    def test_core_cycles_are_frequency_free(self):
        model = TimingModel()
        seg = segment(upc=2.0, uops=1_000_000)
        assert model.core_cycles(seg) == pytest.approx(500_000)

    def test_cpu_bound_segment_has_no_stalls(self):
        model = TimingModel()
        seg = segment(mem=0.0)
        assert model.stall_cycles(seg, FASTEST) == 0.0
        assert model.upc(seg, FASTEST) == pytest.approx(seg.upc_core)

    def test_stall_cycles_scale_with_frequency(self):
        model = TimingModel(memory_latency_ns=100.0)
        seg = segment(mem=0.01)
        fast_stall = model.stall_cycles(seg, FASTEST)
        slow_stall = model.stall_cycles(seg, SLOWEST)
        # 1.5 GHz spends 2.5x more cycles per fixed-ns transaction.
        assert fast_stall / slow_stall == pytest.approx(2.5)

    def test_total_cycles_sum(self):
        model = TimingModel()
        seg = segment()
        assert model.cycles(seg, FASTEST) == pytest.approx(
            model.core_cycles(seg) + model.stall_cycles(seg, FASTEST)
        )

    def test_seconds_from_cycles(self):
        model = TimingModel()
        seg = segment()
        expected = model.cycles(seg, FASTEST) / FASTEST.frequency_hz
        assert model.seconds(seg, FASTEST) == pytest.approx(expected)

    def test_execute_consistency(self):
        model = TimingModel()
        seg = segment()
        execution = model.execute(seg, FASTEST)
        assert execution.cycles == pytest.approx(
            execution.core_cycles + execution.stall_cycles
        )
        assert execution.duty == pytest.approx(
            execution.core_cycles / execution.cycles
        )
        assert execution.upc == pytest.approx(seg.uops / execution.cycles)

    def test_overlap_reduces_stalls(self):
        full = TimingModel(overlap=0.0)
        half = TimingModel(overlap=0.5)
        seg = segment(mem=0.02)
        assert half.stall_cycles(seg, FASTEST) == pytest.approx(
            full.stall_cycles(seg, FASTEST) / 2
        )

    def test_segment_overlap_composes_with_platform_overlap(self):
        model = TimingModel(overlap=0.5)
        seg = segment(mem=0.02, overlap=0.5)
        # 50% of 50% exposed -> quarter of the raw latency.
        assert model.segment_latency_ns(seg) == pytest.approx(
            model.memory_latency_ns * 0.25
        )


class TestDVFSDependence:
    """The paper's Figure 7: UPC varies with frequency, Mem/Uop does not."""

    def test_memory_bound_upc_rises_at_lower_frequency(self):
        model = TimingModel()
        seg = segment(mem=0.03, upc=1.0)
        upcs = [model.upc(seg, p) for p in TABLE]
        # TABLE is fastest-first, so UPC must be strictly increasing.
        assert all(b > a for a, b in zip(upcs, upcs[1:]))

    def test_cpu_bound_upc_is_frequency_independent(self):
        model = TimingModel()
        seg = segment(mem=0.0, upc=1.9)
        upcs = [model.upc(seg, p) for p in TABLE]
        assert all(u == pytest.approx(1.9) for u in upcs)

    def test_memory_bound_upc_change_is_large(self):
        """Highly memory-bound configurations change UPC substantially
        across the frequency range (the paper observes up to ~80%)."""
        model = TimingModel()
        seg = segment(mem=0.0475, upc=0.35)
        change = model.upc(seg, SLOWEST) / model.upc(seg, FASTEST) - 1.0
        assert change > 0.5

    def test_mem_per_uop_is_exactly_dvfs_invariant(self):
        """Mem/Uop is a ratio of frequency-independent event counts; the
        simulator must not introduce any frequency dependence."""
        seg = segment(mem=0.0123)
        for point in TABLE:
            # The metric is carried by the segment, untouched by timing.
            assert seg.memory_transactions / seg.uops == pytest.approx(0.0123)


class TestSlowdown:
    def test_slowdown_of_reference_is_one(self):
        model = TimingModel()
        assert model.slowdown(segment(), FASTEST, FASTEST) == pytest.approx(1.0)

    def test_cpu_bound_slowdown_equals_frequency_ratio(self):
        model = TimingModel()
        seg = segment(mem=0.0)
        assert model.slowdown(seg, SLOWEST, FASTEST) == pytest.approx(2.5)

    def test_memory_bound_slowdown_is_small(self):
        """Fully memory-bound work has CPU slack: halving frequency
        barely stretches execution (the basis of the DVFS savings)."""
        model = TimingModel()
        seg = segment(mem=0.10, upc=1.5)
        assert model.slowdown(seg, SLOWEST, FASTEST) < 1.15

    def test_slowdown_monotone_in_frequency(self):
        model = TimingModel()
        seg = segment(mem=0.01)
        slowdowns = [model.slowdown(seg, p, FASTEST) for p in TABLE]
        assert all(b >= a for a, b in zip(slowdowns, slowdowns[1:]))


class TestBoundary:
    def test_boundary_at_zero_mem_is_peak(self):
        model = TimingModel()
        assert model.max_upc_boundary(0.0, FASTEST, peak_upc=2.0) == pytest.approx(2.0)

    def test_boundary_decreases_with_memory_intensity(self):
        model = TimingModel()
        values = [
            model.max_upc_boundary(m, FASTEST)
            for m in (0.0, 0.01, 0.02, 0.04, 0.055)
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_boundary_matches_figure6_scale(self):
        """At Mem/Uop ~ 0.03 the paper's boundary sits near UPC ~ 0.2."""
        model = TimingModel()
        assert model.max_upc_boundary(0.03, FASTEST) == pytest.approx(
            0.2, rel=0.25
        )
