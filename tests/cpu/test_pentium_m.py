"""Tests for the simulated Pentium-M core."""

import pytest

from repro.cpu.dvfs import DVFSInterface
from repro.cpu.pentium_m import PentiumM
from repro.cpu.timing import TimingModel
from repro.pmc.events import PMCEvent
from repro.workloads.segments import SegmentSpec


def segment(uops=100_000_000, mem=0.01, upc=1.0, upi=1.25):
    return SegmentSpec(
        uops=uops, mem_per_uop=mem, upc_core=upc, uops_per_instruction=upi
    )


class TestExecution:
    def test_event_counts_are_exact(self):
        core = PentiumM()
        seg = segment()
        result = core.execute(seg)
        assert result.events[PMCEvent.UOPS_RETIRED] == seg.uops
        assert result.events[PMCEvent.BUS_TRAN_MEM] == pytest.approx(
            seg.uops * 0.01
        )
        assert result.events[PMCEvent.INSTR_RETIRED] == pytest.approx(
            seg.uops / 1.25
        )

    def test_cycle_event_matches_timing(self):
        core = PentiumM()
        seg = segment()
        result = core.execute(seg)
        assert result.events[PMCEvent.CPU_CLK_UNHALTED] == pytest.approx(
            result.timing.cycles
        )

    def test_runs_at_programmed_operating_point(self):
        dvfs = DVFSInterface()
        core = PentiumM(dvfs=dvfs)
        slow = dvfs.table.at_frequency(600)
        dvfs.request(slow)
        result = core.execute(segment())
        assert result.point == slow

    def test_slower_point_takes_longer(self):
        dvfs = DVFSInterface()
        core = PentiumM(dvfs=dvfs)
        seg = segment(mem=0.005)
        fast = core.execute(seg).timing.seconds
        dvfs.request(dvfs.table.slowest)
        slow = core.execute(seg).timing.seconds
        assert slow > fast

    def test_default_components(self):
        core = PentiumM()
        assert isinstance(core.timing, TimingModel)
        assert core.operating_point.frequency_mhz == 1500

    def test_mem_per_uop_recoverable_from_events(self):
        """The ratio the governor computes from the two counters is the
        segment's true Mem/Uop, at any frequency."""
        dvfs = DVFSInterface()
        core = PentiumM(dvfs=dvfs)
        seg = segment(mem=0.0234)
        for point in dvfs.table:
            dvfs.request(point)
            events = core.execute(seg).events
            ratio = events[PMCEvent.BUS_TRAN_MEM] / events[PMCEvent.UOPS_RETIRED]
            assert ratio == pytest.approx(0.0234)
