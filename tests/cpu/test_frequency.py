"""Tests for operating points and the SpeedStep table."""

import pytest

from repro.cpu.frequency import (
    PENTIUM_M_OPERATING_POINTS,
    OperatingPoint,
    SpeedStepTable,
)
from repro.errors import ConfigurationError


class TestOperatingPoint:
    def test_unit_conversions(self):
        point = OperatingPoint(1500, 1484)
        assert point.frequency_ghz == pytest.approx(1.5)
        assert point.frequency_hz == pytest.approx(1.5e9)
        assert point.voltage_v == pytest.approx(1.484)

    def test_ordering_is_by_frequency(self):
        slow = OperatingPoint(600, 956)
        fast = OperatingPoint(1500, 1484)
        assert slow < fast
        assert max(slow, fast) is fast

    def test_equality(self):
        assert OperatingPoint(800, 1116) == OperatingPoint(800, 1116)
        assert OperatingPoint(800, 1116) != OperatingPoint(800, 1117)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(0, 1000)
        with pytest.raises(ConfigurationError):
            OperatingPoint(-600, 1000)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(600, 0)

    def test_str_shows_both_quantities(self):
        assert str(OperatingPoint(600, 956)) == "(600 MHz, 956 mV)"


class TestPaperOperatingPoints:
    """The exact six SpeedStep pairs of the paper's Table 2."""

    def test_six_points(self):
        assert len(PENTIUM_M_OPERATING_POINTS) == 6

    def test_table2_values(self):
        expected = [
            (1500, 1484),
            (1400, 1452),
            (1200, 1356),
            (1000, 1228),
            (800, 1116),
            (600, 956),
        ]
        actual = [
            (p.frequency_mhz, p.voltage_mv) for p in PENTIUM_M_OPERATING_POINTS
        ]
        assert actual == expected

    def test_voltage_decreases_with_frequency(self):
        voltages = [p.voltage_mv for p in PENTIUM_M_OPERATING_POINTS]
        assert voltages == sorted(voltages, reverse=True)


class TestSpeedStepTable:
    def test_default_is_pentium_m(self):
        table = SpeedStepTable()
        assert table.points == PENTIUM_M_OPERATING_POINTS

    def test_orders_fastest_first(self):
        points = [OperatingPoint(600, 956), OperatingPoint(1500, 1484)]
        table = SpeedStepTable(points)
        assert table.fastest.frequency_mhz == 1500
        assert table.slowest.frequency_mhz == 600
        assert table[0].frequency_mhz == 1500

    def test_len_iter_contains(self):
        table = SpeedStepTable()
        assert len(table) == 6
        assert list(table) == list(PENTIUM_M_OPERATING_POINTS)
        assert OperatingPoint(800, 1116) in table
        assert OperatingPoint(900, 1116) not in table

    def test_contains_requires_matching_voltage(self):
        table = SpeedStepTable()
        assert OperatingPoint(800, 1200) not in table

    def test_index_of(self):
        table = SpeedStepTable()
        assert table.index_of(OperatingPoint(1500, 1484)) == 0
        assert table.index_of(OperatingPoint(600, 956)) == 5

    def test_index_of_unknown_point_raises(self):
        with pytest.raises(ConfigurationError):
            SpeedStepTable().index_of(OperatingPoint(900, 1000))

    def test_at_frequency(self):
        point = SpeedStepTable().at_frequency(1200)
        assert point.voltage_mv == 1356

    def test_at_unknown_frequency_raises(self):
        with pytest.raises(ConfigurationError, match="not a supported"):
            SpeedStepTable().at_frequency(1300)

    def test_slower_than(self):
        table = SpeedStepTable()
        slower = table.slower_than(table.at_frequency(1000))
        assert [p.frequency_mhz for p in slower] == [800, 600]

    def test_slower_than_slowest_is_empty(self):
        table = SpeedStepTable()
        assert table.slower_than(table.slowest) == ()

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SpeedStepTable([])

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SpeedStepTable(
                [OperatingPoint(600, 956), OperatingPoint(600, 1000)]
            )

    def test_repr_lists_points(self):
        table = SpeedStepTable([OperatingPoint(600, 956)])
        assert "600 MHz" in repr(table)
