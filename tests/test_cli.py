"""Tests for the command-line interface."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "applu_in" in out
        assert "mcf_inp" in out
        assert out.count("\n") >= 33

    def test_descriptions_present(self, capsys):
        _, out, _ = run_cli(capsys, "list")
        assert "running example" in out


class TestRun:
    def test_default_run(self, capsys):
        code, out, _ = run_cli(capsys, "run", "swim_in", "--intervals", "30")
        assert code == 0
        assert "EDP improvement" in out
        assert "GPHT_8_128" in out

    def test_reactive_governor(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--governor", "reactive",
            "--intervals", "20",
        )
        assert code == 0
        assert "Reactive" in out

    def test_bounded_policy(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--policy", "bounded",
            "--intervals", "20",
        )
        assert code == 0
        assert "bounded_5%" in out

    def test_json_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "10", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["workload"] == "swim_in"
        assert len(payload["intervals"]) == 10

    def test_csv_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "10", "--csv"
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 10

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "run", "nosuch")
        assert code == 2
        assert "unknown benchmark" in err


class TestAccuracy:
    def test_selected_benchmarks(self, capsys):
        code, out, _ = run_cli(
            capsys, "accuracy", "applu_in", "--intervals", "200"
        )
        assert code == 0
        assert "GPHT_8_1024" in out
        assert "applu_in" in out


class TestCharacterize:
    def test_characterize_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "characterize", "applu_in", "--intervals", "200"
        )
        assert code == 0
        assert "quadrant" in out
        assert "Q3" in out
        assert "predictability gain" in out


class TestQuadrants:
    def test_places_registry(self, capsys):
        code, out, _ = run_cli(capsys, "quadrants", "--intervals", "100")
        assert code == 0
        for quadrant in ("Q1", "Q2", "Q3", "Q4"):
            assert quadrant in out


class TestReport:
    def test_report_runs_and_exits_zero(self, capsys):
        # Default (canonical) lengths: the tight 6X claim needs them.
        code, out, _ = run_cli(capsys, "report")
        assert code == 0
        assert "Reproduction certificate" in out
        assert "NOT REPRODUCED" not in out


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rejects_unknown_policy(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "swim_in", "--policy", "warp"])


class TestExportTrace:
    def test_round_trips(self, capsys):
        from repro.workloads.serialization import trace_from_json

        code, out, _ = run_cli(
            capsys, "export-trace", "swim_in", "--intervals", "4"
        )
        assert code == 0
        trace = trace_from_json(out)
        assert trace.name == "swim_in"
        assert len(trace) == 4
