"""Tests for the command-line interface."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "applu_in" in out
        assert "mcf_inp" in out
        assert out.count("\n") >= 33

    def test_descriptions_present(self, capsys):
        _, out, _ = run_cli(capsys, "list")
        assert "running example" in out


class TestRun:
    def test_default_run(self, capsys):
        code, out, _ = run_cli(capsys, "run", "swim_in", "--intervals", "30")
        assert code == 0
        assert "EDP improvement" in out
        assert "GPHT_8_128" in out

    def test_reactive_governor(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--governor", "reactive",
            "--intervals", "20",
        )
        assert code == 0
        assert "Reactive" in out

    def test_bounded_policy(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--policy", "bounded",
            "--intervals", "20",
        )
        assert code == 0
        assert "bounded_5%" in out

    def test_json_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "10", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["workload"] == "swim_in"
        assert len(payload["intervals"]) == 10

    def test_csv_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "10", "--csv"
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 10

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "run", "nosuch")
        assert code == 2
        assert "unknown benchmark" in err


class TestAccuracy:
    def test_selected_benchmarks(self, capsys):
        code, out, _ = run_cli(
            capsys, "accuracy", "applu_in", "--intervals", "200"
        )
        assert code == 0
        assert "GPHT_8_1024" in out
        assert "applu_in" in out


class TestCharacterize:
    def test_characterize_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "characterize", "applu_in", "--intervals", "200"
        )
        assert code == 0
        assert "quadrant" in out
        assert "Q3" in out
        assert "predictability gain" in out


class TestQuadrants:
    def test_places_registry(self, capsys):
        code, out, _ = run_cli(capsys, "quadrants", "--intervals", "100")
        assert code == 0
        for quadrant in ("Q1", "Q2", "Q3", "Q4"):
            assert quadrant in out


class TestReport:
    def test_report_runs_and_exits_zero(self, capsys):
        # Default (canonical) lengths: the tight 6X claim needs them.
        code, out, _ = run_cli(capsys, "report")
        assert code == 0
        assert "Reproduction certificate" in out
        assert "NOT REPRODUCED" not in out


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rejects_unknown_policy(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "swim_in", "--policy", "warp"])


class TestExportTrace:
    def test_round_trips(self, capsys):
        from repro.workloads.serialization import trace_from_json

        code, out, _ = run_cli(
            capsys, "export-trace", "swim_in", "--intervals", "4"
        )
        assert code == 0
        trace = trace_from_json(out)
        assert trace.name == "swim_in"
        assert len(trace) == 4


class TestJobsValidation:
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_non_positive_jobs_rejected(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "pht", "--jobs", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err
        assert value in err

    def test_non_numeric_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "swim_in", "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_jobs_one_accepted(self, capsys):
        code, _, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "10", "--no-cache",
            "--jobs", "1",
        )
        assert code == 0


class TestTraceFlags:
    def test_run_trace_writes_jsonl(self, capsys, tmp_path, monkeypatch):
        from repro.obs.events import PredictionMade
        from repro.obs.export import events_from_jsonl

        out = tmp_path / "trace.jsonl"
        code, _, err = run_cli(
            capsys, "run", "applu_in", "--intervals", "25", "--no-cache",
            "--trace-out", str(out),
        )
        assert code == 0
        assert "trace:" in err
        events = events_from_jsonl(out.read_text(encoding="utf-8"))
        assert len(events) > 0
        assert any(isinstance(e, PredictionMade) for e in events)

    def test_run_trace_default_output_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _, _ = run_cli(
            capsys, "run", "applu_in", "--intervals", "10", "--no-cache",
            "--trace",
        )
        assert code == 0
        assert (tmp_path / "repro-trace.jsonl").exists()

    def test_traced_run_output_identical_to_untraced(self, capsys, tmp_path):
        code, untraced, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "20", "--no-cache"
        )
        assert code == 0
        code, traced, _ = run_cli(
            capsys, "run", "swim_in", "--intervals", "20", "--no-cache",
            "--trace-out", str(tmp_path / "t.jsonl"),
        )
        assert code == 0
        assert traced == untraced

    def test_sweep_trace_records_cell_events(self, capsys, tmp_path):
        from repro.obs.events import CellFinished, CellStarted
        from repro.obs.export import events_from_jsonl

        out = tmp_path / "sweep.jsonl"
        code, _, _ = run_cli(
            capsys, "sweep", "frequency", "swim_in", "--intervals", "10",
            "--no-cache", "--trace-out", str(out),
        )
        assert code == 0
        events = events_from_jsonl(out.read_text(encoding="utf-8"))
        started = [e for e in events if isinstance(e, CellStarted)]
        finished = [e for e in events if isinstance(e, CellFinished)]
        assert len(started) == len(finished) > 0


class TestTraceCommands:
    def record(self, capsys, tmp_path, *extra):
        out = tmp_path / "rec.jsonl"
        code, _, err = run_cli(
            capsys, "trace", "record", "applu_in", "--intervals", "30",
            "--out", str(out), *extra,
        )
        assert code == 0
        assert "trace:" in err
        return out

    def test_record_reconciles_with_counters(self, capsys, tmp_path):
        from repro.obs.export import events_from_jsonl
        from repro.obs.metrics import trace_metrics

        out = self.record(capsys, tmp_path)
        events = events_from_jsonl(out.read_text(encoding="utf-8"))
        registry = trace_metrics(events)
        assert registry.counter("events.interval_sampled").value == 30
        assert registry.counter("events.pmi_handled").value == 30
        lookups = (
            registry.counter("predictor.pht_hits").value
            + registry.counter("predictor.pht_misses").value
        )
        assert lookups == registry.counter("events.prediction_made").value

    def test_record_to_stdout(self, capsys):
        code, out, _ = run_cli(
            capsys, "trace", "record", "swim_in", "--intervals", "10"
        )
        assert code == 0
        assert out.splitlines()
        assert json.loads(out.splitlines()[0])["event"] == "interval_sampled"

    def test_record_rejects_bad_intervals(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "record", "swim_in", "--intervals", "0"])
        assert excinfo.value.code == 2

    def test_summarize(self, capsys, tmp_path):
        out = self.record(capsys, tmp_path)
        code, text, _ = run_cli(capsys, "trace", "summarize", str(out))
        assert code == 0
        assert "Trace summary" in text
        assert "predictor.pht_hit_rate" in text

    def test_summarize_json(self, capsys, tmp_path):
        out = self.record(capsys, tmp_path)
        code, text, _ = run_cli(
            capsys, "trace", "summarize", str(out), "--format", "json"
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["event_counts"]["interval_sampled"] > 0
        assert "predictor.pht_hit_rate" in payload["metrics"]
        assert payload["events"] == sum(payload["event_counts"].values())

    def test_export_csv_is_text_format(self, capsys, tmp_path):
        out = self.record(capsys, tmp_path)
        code, text, _ = run_cli(capsys, "trace", "export", str(out))
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        assert rows[0]["event"] == "interval_sampled"
        # --format text is the same CSV rendering, spelled like every
        # other result-printing subcommand.
        code, explicit, _ = run_cli(
            capsys, "trace", "export", str(out), "--format", "text"
        )
        assert code == 0
        assert explicit == text

    def test_export_json_round_trip(self, capsys, tmp_path):
        from repro.obs.export import events_from_jsonl

        out = self.record(capsys, tmp_path)
        code, text, _ = run_cli(
            capsys, "trace", "export", str(out), "--format", "json"
        )
        assert code == 0
        original = events_from_jsonl(out.read_text(encoding="utf-8"))
        assert events_from_jsonl(text) == original

    def test_export_rejects_legacy_format_spellings(self, capsys, tmp_path):
        out = self.record(capsys, tmp_path)
        for legacy in ("csv", "jsonl"):
            with pytest.raises(SystemExit) as excinfo:
                main(["trace", "export", str(out), "--format", legacy])
            assert excinfo.value.code == 2

    def test_missing_file_is_a_cli_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "trace", "summarize", str(tmp_path / "absent.jsonl")
        )
        assert code == 2
        assert "cannot read trace file" in err

    def test_corrupt_file_is_a_cli_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "interval_sampled"\n', encoding="utf-8")
        code, _, err = run_cli(capsys, "trace", "summarize", str(bad))
        assert code == 2
        assert "line 1" in err


class TestServeLoadgenCLI:
    def test_chaos_kill_requires_self_host(self, capsys):
        code, _, err = run_cli(
            capsys, "serve", "loadgen", "--chaos-kill", "10:0"
        )
        assert code == 2
        assert "--self-host" in err

    def test_self_host_chaos_run_recovers(self, capsys):
        # connections=1 makes the kill schedule fully deterministic, so
        # the digest-verified run must survive the mid-stream kill with
        # zero errors and at least one recorded recovery.
        code, out, err = run_cli(
            capsys,
            "serve",
            "loadgen",
            "--self-host",
            "2",
            "--chaos-kill",
            "10:0",
            "--sessions",
            "2",
            "--samples",
            "48",
            "--batch",
            "8",
            "--connections",
            "1",
            "--format",
            "json",
        )
        assert code == 0
        assert "self-hosting 2 workers" in err
        payload = json.loads(out)
        assert payload["errors"] == 0
        assert payload["recoveries"] >= 1
        assert payload["replayed_samples"] >= 0
        assert payload["outcome_digest"]
