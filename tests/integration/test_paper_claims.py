"""The paper's headline quantitative claims, verified end to end.

Absolute numbers come from a simulated platform, so each claim is tested
as a *shape*: the direction and rough magnitude the paper reports, with
tolerant thresholds (see EXPERIMENTS.md for measured values).
"""

import pytest

from repro.analysis.accuracy import evaluate_predictor, misprediction_improvement
from repro.analysis.witnesses import spec_phase_witnesses
from repro.core.dvfs_policy import derive_bounded_policy
from repro.core.governor import PhasePredictionGovernor, ReactiveGovernor
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.system.experiment import run_suite
from repro.system.machine import Machine
from repro.workloads.spec2000 import (
    FIG4_BENCHMARK_ORDER,
    FIG12_BENCHMARKS,
    FIG13_BENCHMARKS,
    VARIABLE_BENCHMARKS,
    benchmark,
)

N_ACCURACY = 1000
N_INTERVALS = 300


@pytest.fixture(scope="module")
def machine():
    return Machine()


@pytest.fixture(scope="module")
def gpht_suite(machine):
    return run_suite(
        FIG12_BENCHMARKS,
        lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
        machine,
        n_intervals=N_INTERVALS,
    )


@pytest.fixture(scope="module")
def reactive_suite(machine):
    return run_suite(
        FIG12_BENCHMARKS,
        lambda: ReactiveGovernor(),
        machine,
        n_intervals=N_INTERVALS,
    )


class TestPredictionClaims:
    def test_above_90pct_accuracy_for_many_benchmarks(self):
        """'Our runtime phase prediction methodology achieves above 90%
        prediction accuracies for many of the experimented benchmarks.'"""
        high = 0
        for name in FIG4_BENCHMARK_ORDER:
            series = benchmark(name).mem_series(N_ACCURACY)
            result = evaluate_predictor(GPHTPredictor(8, 1024), series)
            if result.accuracy > 0.90:
                high += 1
        assert high >= 20

    def test_applu_6x_misprediction_reduction(self):
        """'For highly variable applications, our approach can reduce
        mispredictions by more than 6X over commonly-used statistical
        approaches' — demonstrated on applu."""
        series = benchmark("applu_in").mem_series(N_ACCURACY)
        last = evaluate_predictor(LastValuePredictor(), series)
        gpht = evaluate_predictor(GPHTPredictor(8, 1024), series)
        assert misprediction_improvement(last, gpht) > 6.0

    def test_applu_gpht_under_10pct_mispredictions(self):
        """'GPHT achieves less than 8% mispredictions' (we allow 10%)."""
        series = benchmark("applu_in").mem_series(N_ACCURACY)
        gpht = evaluate_predictor(GPHTPredictor(8, 1024), series)
        assert gpht.misprediction_rate < 0.10

    def test_variable_benchmarks_average_2x_reduction(self):
        """'On average, for the Q3 and Q4 benchmarks, our GPHT predictor
        leads to 2.4X less mispredictions than the statistical
        predictors.'"""
        factors = []
        for name in VARIABLE_BENCHMARKS:
            series = benchmark(name).mem_series(N_ACCURACY)
            last = evaluate_predictor(LastValuePredictor(), series)
            gpht = evaluate_predictor(GPHTPredictor(8, 1024), series)
            factors.append(misprediction_improvement(last, gpht))
        assert sum(factors) / len(factors) > 2.0

    def test_pht_128_matches_1024(self):
        """Figure 5: 'down to 128 entries, GPHT performs almost
        identically to the 1024 entry predictor.'"""
        for name in VARIABLE_BENCHMARKS:
            series = benchmark(name).mem_series(N_ACCURACY)
            big = evaluate_predictor(GPHTPredictor(8, 1024), series)
            small = evaluate_predictor(GPHTPredictor(8, 128), series)
            assert small.accuracy == pytest.approx(big.accuracy, abs=0.03)

    def test_pht_1_converges_to_last_value(self):
        """Figure 5's other endpoint."""
        for name in ("applu_in", "equake_in"):
            series = benchmark(name).mem_series(N_ACCURACY)
            one = evaluate_predictor(GPHTPredictor(8, 1), series)
            last = evaluate_predictor(LastValuePredictor(), series)
            assert one.accuracy == pytest.approx(last.accuracy, abs=0.02)


class TestManagementClaims:
    def test_q2_benchmarks_exceed_50pct_edp_improvement(self, gpht_suite):
        """'The trivial Q2 applications swim and mcf exhibit above 60%
        EDP improvements' (we require > 50% on the simulated platform)."""
        for name in ("swim_in", "mcf_inp"):
            assert gpht_suite[name].comparison.edp_improvement > 0.50, name

    def test_best_q3_edp_improvement_near_34pct(self, gpht_suite):
        """'EDP improvements as high as 34% — in the case of equake.'"""
        equake = gpht_suite["equake_in"].comparison.edp_improvement
        assert 0.25 < equake < 0.50

    def test_equake_is_the_best_q3(self, gpht_suite):
        q3 = {n: gpht_suite[n].comparison.edp_improvement
              for n in ("applu_in", "equake_in", "mgrid_in")}
        assert max(q3, key=q3.get) == "equake_in"

    def test_gpht_beats_reactive_on_every_variable_benchmark(
        self, gpht_suite, reactive_suite
    ):
        """Figure 12(a): proactive management achieves superior EDP
        improvements for the variable Q3/Q4 benchmarks."""
        for name in VARIABLE_BENCHMARKS:
            gpht = gpht_suite[name].comparison.edp_improvement
            reactive = reactive_suite[name].comparison.edp_improvement
            assert gpht > reactive, name

    def test_gpht_average_beats_reactive_average(
        self, gpht_suite, reactive_suite
    ):
        """'GPHT-based dynamic management achieves an EDP improvement of
        27% ... last value based reactive approach achieves 20%.'"""
        gpht = sum(
            gpht_suite[n].comparison.edp_improvement
            for n in FIG12_BENCHMARKS
        ) / len(FIG12_BENCHMARKS)
        reactive = sum(
            reactive_suite[n].comparison.edp_improvement
            for n in FIG12_BENCHMARKS
        ) / len(FIG12_BENCHMARKS)
        assert gpht > reactive + 0.01
        assert 0.15 < gpht < 0.45

    def test_q1_benchmarks_near_baseline(self, machine):
        """'Many of the Q1 benchmarks experience little power savings
        and performance degradations.'"""
        results = run_suite(
            ["crafty_in", "eon_cook", "sixtrack_in"],
            lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
            machine,
            n_intervals=60,
        )
        for name, comparison in results.items():
            assert abs(comparison.comparison.edp_improvement) < 0.05, name
            assert comparison.comparison.performance_degradation < 0.02, name


class TestBoundedDegradationClaims:
    """Section 6.3 / Figure 13."""

    @pytest.fixture(scope="class")
    def bounded_results(self, machine):
        policy = derive_bounded_policy(
            0.05, witnesses_by_phase=spec_phase_witnesses()
        )
        return run_suite(
            FIG13_BENCHMARKS,
            lambda: PhasePredictionGovernor(GPHTPredictor(8, 128), policy),
            machine,
            n_intervals=N_INTERVALS,
        ), policy

    def test_all_degradations_below_5pct(self, bounded_results):
        results, _ = bounded_results
        for name in FIG13_BENCHMARKS:
            degradation = results[name].comparison.performance_degradation
            assert degradation < 0.05, name

    def test_edp_improvements_reduced_at_least_2x(
        self, bounded_results, gpht_suite
    ):
        """'EDP improvements are reduced by more than 2X from previous
        results to conservatively meet the desired performance targets.'"""
        results, _ = bounded_results
        for name in FIG13_BENCHMARKS:
            bounded = results[name].comparison.edp_improvement
            aggressive = gpht_suite[name].comparison.edp_improvement
            assert bounded < aggressive / 2.0, name

    def test_bounded_runs_still_save_power(self, bounded_results):
        results, _ = bounded_results
        for name in FIG13_BENCHMARKS:
            assert results[name].comparison.power_savings > 0.03, name
