"""Integration tests for the DAQ measurement path against the machine's
internal energy accounting (the paper's Figure 9 platform)."""

import pytest

from repro.core.governor import ReactiveGovernor, StaticGovernor
from repro.power.daq import DataAcquisitionSystem, LoggingMachine
from repro.system.machine import Machine
from repro.workloads.segments import uniform_trace


@pytest.fixture(scope="module")
def measured_run():
    """A short run with the DAQ attached; intervals are long enough
    (milliseconds) that every one collects many 40us samples."""
    machine = Machine(granularity_uops=10_000_000)
    daq = DataAcquisitionSystem()
    trace = uniform_trace(
        "mix",
        [(0.0, 1.5)] * 4 + [(0.04, 1.0)] * 4 + [(0.01, 1.2)] * 4,
        uops_per_segment=10_000_000,
    )
    result = machine.run(trace, ReactiveGovernor(), daq=daq)
    windows = LoggingMachine().attribute_phases(daq)
    return result, daq, windows


class TestAttribution:
    def test_one_window_per_interval(self, measured_run):
        result, _, windows = measured_run
        assert len(windows) == len(result.intervals)

    def test_recovered_power_matches_internal_accounting(self, measured_run):
        """The external DAQ must agree with the machine's exact energy
        integration to within sampling quantisation."""
        result, _, windows = measured_run
        for interval, window in zip(result.intervals, windows):
            assert window.mean_power_w == pytest.approx(
                interval.power_w, rel=0.02
            )

    def test_window_energy_matches_interval_energy(self, measured_run):
        result, _, windows = measured_run
        for interval, window in zip(result.intervals, windows):
            assert window.energy_j == pytest.approx(
                interval.energy_j, rel=0.05
            )

    def test_total_sampled_span_matches_run_time(self, measured_run):
        result, daq, _ = measured_run
        times, *_ = daq.raw_arrays()
        assert times[-1] == pytest.approx(result.total_seconds, rel=0.01)

    def test_phase_power_reflects_behaviour(self, measured_run):
        """CPU-bound intervals draw more power than memory-bound ones at
        the same frequency — visible through the external path too."""
        result, _, windows = measured_run
        cpu_windows = [
            w
            for w, m in zip(windows, result.intervals)
            if m.record.actual_phase == 1
            and m.record.frequency_mhz == 1500
        ]
        mem_windows = [
            w
            for w, m in zip(windows, result.intervals)
            if m.record.actual_phase == 6
            and m.record.frequency_mhz == 1500
        ]
        if cpu_windows and mem_windows:
            assert min(w.mean_power_w for w in cpu_windows) > max(
                w.mean_power_w for w in mem_windows
            )


class TestBaselineMeasurement:
    def test_static_run_has_frequency_flat_power_per_behaviour(self):
        machine = Machine(granularity_uops=10_000_000)
        daq = DataAcquisitionSystem()
        trace = uniform_trace(
            "flat", [(0.01, 1.2)] * 6, uops_per_segment=10_000_000
        )
        machine.run(
            trace, StaticGovernor(machine.speedstep.fastest), daq=daq
        )
        windows = LoggingMachine().attribute_phases(daq)
        powers = [w.mean_power_w for w in windows]
        assert max(powers) - min(powers) < 0.01
