"""End-to-end integration tests of the deployed framework."""

import pytest

from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark


@pytest.fixture(scope="module")
def machine():
    return Machine()


@pytest.fixture(scope="module")
def applu_runs(machine):
    trace = benchmark("applu_in").trace(n_intervals=200)
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    managed = machine.run(
        trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
    )
    return baseline, managed


class TestApplu:
    """The paper's running example (Figures 2 and 10)."""

    def test_managed_run_improves_edp(self, applu_runs):
        baseline, managed = applu_runs
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        assert comparison.edp_improvement > 0.15

    def test_power_savings_exceed_performance_loss(self, applu_runs):
        baseline, managed = applu_runs
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        assert comparison.power_savings > comparison.performance_degradation

    def test_mem_per_uop_identical_between_runs(self, applu_runs):
        """Figure 10's key observation: the Mem/Uop traces of the
        baseline and the managed runs are 'almost identical', because
        the metric is DVFS invariant."""
        baseline, managed = applu_runs
        for b, m in zip(
            baseline.mem_per_uop_series(), managed.mem_per_uop_series()
        ):
            assert m == pytest.approx(b, rel=1e-9)

    def test_actual_phases_identical_between_runs(self, applu_runs):
        baseline, managed = applu_runs
        assert baseline.actual_phases() == managed.actual_phases()

    def test_online_prediction_accuracy_is_high(self, applu_runs):
        _, managed = applu_runs
        assert managed.prediction_accuracy() > 0.8

    def test_managed_run_visits_multiple_frequencies(self, applu_runs):
        _, managed = applu_runs
        assert len(set(managed.frequency_series())) >= 4

    def test_per_interval_power_drops_in_memory_phases(self, applu_runs):
        _, managed = applu_runs
        by_phase = {}
        for m in managed.intervals:
            by_phase.setdefault(m.record.actual_phase, []).append(m.power_w)
        if 1 in by_phase and 6 in by_phase:
            cpu_power = sum(by_phase[1]) / len(by_phase[1])
            mem_power = sum(by_phase[6]) / len(by_phase[6])
            assert mem_power < cpu_power


class TestGovernorComparison:
    def test_gpht_beats_reactive_on_variable_workload(self, machine):
        trace = benchmark("equake_in").trace(n_intervals=300)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        gpht = machine.run(
            trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        reactive = machine.run(trace, ReactiveGovernor())
        gpht_edp = ComparisonMetrics(baseline=baseline, managed=gpht)
        reactive_edp = ComparisonMetrics(baseline=baseline, managed=reactive)
        assert gpht_edp.edp_improvement > reactive_edp.edp_improvement

    def test_stable_workload_all_governors_agree(self, machine):
        trace = benchmark("swim_in").trace(n_intervals=80)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        gpht = machine.run(
            trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        reactive = machine.run(trace, ReactiveGovernor())
        gpht_cmp = ComparisonMetrics(baseline=baseline, managed=gpht)
        reactive_cmp = ComparisonMetrics(baseline=baseline, managed=reactive)
        assert gpht_cmp.edp_improvement == pytest.approx(
            reactive_cmp.edp_improvement, abs=0.02
        )

    def test_cpu_bound_workload_stays_at_full_speed(self, machine):
        trace = benchmark("crafty_in").trace(n_intervals=40)
        managed = machine.run(
            trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        assert set(managed.frequency_series()) == {1500}
        assert managed.transition_count == 0
