"""Registry-wide full-system smoke: every benchmark runs end to end.

A breadth test complementing the depth tests elsewhere: each of the 33
synthetic SPEC2000 benchmarks is executed on the full machine under the
deployed GPHT governor, and universal invariants are checked on every
run.  Catches registry entries that would break the pipeline (e.g. a
generator emitting out-of-range values) without pinning any magnitudes.
"""

import pytest

from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import FIG4_BENCHMARK_ORDER, benchmark

N_INTERVALS = 40
TABLE = PhaseTable()


@pytest.fixture(scope="module")
def machine():
    return Machine()


@pytest.fixture(scope="module")
def runs(machine):
    results = {}
    for name in FIG4_BENCHMARK_ORDER:
        trace = benchmark(name).trace(n_intervals=N_INTERVALS)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        managed = machine.run(
            trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        results[name] = (baseline, managed)
    return results


@pytest.mark.parametrize("name", FIG4_BENCHMARK_ORDER)
def test_run_invariants(runs, name):
    baseline, managed = runs[name]

    # Every interval completed and is internally consistent.
    assert len(managed.intervals) == N_INTERVALS
    for interval in managed.intervals:
        record = interval.record
        assert record.actual_phase in TABLE.phase_ids
        assert record.predicted_phase in TABLE.phase_ids
        assert record.frequency_mhz in (1500, 1400, 1200, 1000, 800, 600)
        assert interval.seconds > 0
        assert interval.energy_j > 0

    # Aggregates are physical.
    assert managed.total_energy_j > 0
    assert 0.0 <= managed.prediction_accuracy() <= 1.0
    assert managed.handler_overhead_fraction < 1e-3

    # Management never makes the run faster than the pinned baseline,
    # and never consumes more energy than it.
    comparison = ComparisonMetrics(baseline=baseline, managed=managed)
    assert comparison.performance_degradation >= -1e-9
    assert managed.total_energy_j <= baseline.total_energy_j + 1e-9


def test_phases_identical_across_governors_everywhere(runs):
    """The DVFS-invariance guarantee holds on every registry entry."""
    for name, (baseline, managed) in runs.items():
        assert baseline.actual_phases() == managed.actual_phases(), name
