"""Integration tests combining the extension subsystems."""

import pytest

from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.objectives import derive_objective_policy
from repro.core.predictors import GPHTPredictor
from repro.core.thermal_governor import ThermalManagedGovernor
from repro.power.daq import DataAcquisitionSystem, LoggingMachine
from repro.power.thermal import ThermalModel
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.multiprogram import round_robin
from repro.workloads.spec2000 import benchmark


class TestObjectivePoliciesEndToEnd:
    @pytest.fixture(scope="class")
    def machine(self):
        return Machine()

    def test_objective_ordering_holds_on_real_runs(self, machine):
        """energy-optimal saves the most energy; ed2p keeps the most
        performance — measured, not just derived."""
        trace = benchmark("equake_in").trace(n_intervals=150)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        outcomes = {}
        for objective in ("energy", "edp", "ed2p"):
            policy = derive_objective_policy(objective)
            managed = machine.run(
                trace,
                PhasePredictionGovernor(GPHTPredictor(8, 128), policy),
            )
            outcomes[objective] = ComparisonMetrics(
                baseline=baseline, managed=managed
            )
        assert (
            outcomes["energy"].energy_savings
            >= outcomes["edp"].energy_savings - 1e-9
        )
        assert (
            outcomes["edp"].energy_savings
            >= outcomes["ed2p"].energy_savings - 1e-9
        )
        assert (
            outcomes["ed2p"].performance_degradation
            <= outcomes["energy"].performance_degradation + 1e-9
        )

    def test_edp_objective_actually_minimises_measured_edp(self, machine):
        trace = benchmark("swim_in").trace(n_intervals=60)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        measured = {}
        for objective in ("energy", "edp", "ed2p"):
            policy = derive_objective_policy(objective)
            managed = machine.run(
                trace,
                PhasePredictionGovernor(GPHTPredictor(8, 128), policy),
            )
            measured[objective] = managed.edp
        assert measured["edp"] <= min(measured.values()) * 1.02
        assert measured["edp"] < baseline.edp


class TestThermalWithMeasurement:
    def test_dtm_run_with_daq_attached(self):
        """Thermal management, DAQ sampling and phase prediction all
        cooperate on one run; the DAQ confirms throttled intervals draw
        less power."""
        machine = Machine(granularity_uops=10_000_000)
        thermal = ThermalModel(c_th_j_per_k=0.05)  # fast tau for short run
        daq = DataAcquisitionSystem()
        governor = ThermalManagedGovernor(
            PhasePredictionGovernor(GPHTPredictor(8, 128)),
            thermal,
            trip_c=70.0,
        )
        trace = benchmark("crafty_in").trace(
            n_intervals=120, uops_per_interval=10_000_000
        )
        result = machine.run(trace, governor, daq=daq, thermal=thermal)
        windows = LoggingMachine().attribute_phases(daq)
        assert len(windows) == len(result.intervals)
        assert governor.throttle_engagements >= 1
        assert thermal.peak_temperature_c < 78.0

        throttled_power = [
            w.mean_power_w
            for w, m in zip(windows, result.intervals)
            if m.record.frequency_mhz == 600
        ]
        full_power = [
            w.mean_power_w
            for w, m in zip(windows, result.intervals)
            if m.record.frequency_mhz == 1500
        ]
        assert throttled_power and full_power
        assert max(throttled_power) < min(full_power)


class TestMultiprogramFullSystem:
    def test_variability_resilient_multiprogram_management(self):
        """Co-scheduled applications with injected system noise still
        yield positive, stable EDP improvements."""
        from repro.system.variability import SystemVariability

        machine = Machine()
        mix = round_robin(
            [
                benchmark("gzip_log").trace(n_intervals=60),
                benchmark("mcf_inp").trace(n_intervals=60),
            ],
            quantum_uops=200_000_000,
        )
        noisy = SystemVariability(seed=11).perturb(mix)
        baseline = machine.run(
            noisy, StaticGovernor(machine.speedstep.fastest)
        )
        managed = machine.run(
            noisy, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        assert comparison.edp_improvement > 0.15
        assert managed.prediction_accuracy() > 0.75
