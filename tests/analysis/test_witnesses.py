"""Tests for empirical per-phase witness derivation."""

import pytest

from repro.analysis.witnesses import spec_phase_witnesses
from repro.core.phases import PhaseTable
from repro.workloads.generators import FlatPattern
from repro.workloads.spec2000 import BenchmarkSpec


def test_covers_every_phase_the_suite_visits():
    witnesses = spec_phase_witnesses(n_intervals=200)
    # The full SPEC registry touches all six phases.
    assert set(witnesses) == {1, 2, 3, 4, 5, 6}
    for segments in witnesses.values():
        assert segments


def test_witness_classifies_into_its_phase():
    table = PhaseTable()
    witnesses = spec_phase_witnesses(table, n_intervals=200)
    for phase_id, segments in witnesses.items():
        assert table.classify(segments[0].mem_per_uop) == phase_id


def test_witness_is_the_phase_minimum():
    """A tiny custom registry with known levels: the witness must carry
    the per-phase minimum Mem/Uop and minimum upc_core."""
    registry = {
        "a": BenchmarkSpec(name="a", pattern=FlatPattern(0.022, 1.8)),
        "b": BenchmarkSpec(name="b", pattern=FlatPattern(0.028, 1.2)),
    }
    witnesses = spec_phase_witnesses(benchmarks=registry, n_intervals=50)
    assert set(witnesses) == {5}
    witness = witnesses[5][0]
    assert witness.mem_per_uop == pytest.approx(0.022)
    assert witness.upc_core == pytest.approx(1.2)


def test_unvisited_phases_absent():
    registry = {
        "cpu": BenchmarkSpec(name="cpu", pattern=FlatPattern(0.001, 1.5)),
    }
    witnesses = spec_phase_witnesses(benchmarks=registry, n_intervals=50)
    assert set(witnesses) == {1}
