"""Tests for the parameter-sweep helpers (typed SweepResult API)."""

import pytest

from repro.analysis.sweeps import (
    sweep_frequencies,
    sweep_gphr_depth,
    sweep_granularity,
    sweep_pht_entries,
)
from repro.core.governor import ReactiveGovernor
from repro.errors import ConfigurationError
from repro.exec.results import SweepResult


class TestPHTSweep:
    def test_shape(self):
        result = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=300
        )
        assert result.axes == ("benchmark", "pht_entries")
        assert result.axis_values("benchmark") == ("applu_in",)
        assert result.axis_values("pht_entries") == (1, 128)
        assert result.metric == "accuracy"
        assert result.parameter("gphr_depth") == 8
        assert result.parameter("n_intervals") == 300

    def test_capacity_helps_on_variable_benchmark(self):
        result = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=500
        )
        assert result.value("applu_in", 128) > result.value("applu_in", 1) + 0.2

    def test_to_dict_restores_legacy_shape(self):
        result = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=300
        )
        nested = result.to_dict()
        assert set(nested) == {"applu_in"}
        assert set(nested["applu_in"]) == {1, 128}
        assert nested["applu_in"][128] == result.value("applu_in", 128)

    def test_rejects_empty_sizes(self):
        with pytest.raises(ConfigurationError):
            sweep_pht_entries(["applu_in"], pht_sizes=())

    def test_provenance_records_engine_accounting(self):
        result = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=300
        )
        assert result.provenance is not None
        assert result.provenance.runner == "serial"
        assert result.provenance.total_cells == 2
        assert result.provenance.executed == 2
        assert result.provenance.cache_hits == 0


class TestLegacyDictShim:
    def test_dict_style_access_is_gone(self):
        # PR-2's DeprecationWarning shims have been removed outright;
        # nested-dict consumers must go through to_dict() explicitly.
        result = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=300
        )
        with pytest.raises(TypeError):
            result["applu_in"]
        with pytest.raises(TypeError):
            len(result)
        with pytest.raises(TypeError):
            "applu_in" in result
        for legacy in ("keys", "items", "values", "get"):
            assert not hasattr(result, legacy)
        assert result.to_dict()["applu_in"][128] == result.value(
            "applu_in", 128
        )

    def test_typed_access_does_not_warn(self, recwarn):
        result = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1,), n_intervals=300
        )
        result.value("applu_in", 1)
        result.to_dict()
        result.axis_values("benchmark")
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert deprecations == []


class TestDepthSweep:
    def test_depth_helps_on_variable_benchmark(self):
        result = sweep_gphr_depth(
            ["equake_in"], depths=(1, 8), n_intervals=500
        )
        assert result.value("equake_in", 8) > result.value("equake_in", 1) + 0.1
        assert result.parameter("pht_entries") == 1024

    def test_rejects_empty_depths(self):
        with pytest.raises(ConfigurationError):
            sweep_gphr_depth(["applu_in"], depths=())


class TestGranularitySweep:
    def test_shape_and_positive_improvement(self):
        result = sweep_granularity(
            "swim_in",
            granularities=(25_000_000, 100_000_000),
            governor_factory=ReactiveGovernor,
            n_segments=120,
        )
        assert result.axis_values("granularity_uops") == (
            25_000_000,
            100_000_000,
        )
        for granularity in (25_000_000, 100_000_000):
            assert (
                result.value(granularity, metric="edp_improvement") > 0.3
            )
        assert result.provenance is not None
        assert result.provenance.runner == "inline"

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sweep_granularity("swim_in", (), ReactiveGovernor)


class TestFrequencySweep:
    def test_covers_all_operating_points(self):
        result = sweep_frequencies("swim_in", n_intervals=20)
        assert set(result.axis_values("frequency_mhz")) == {
            1500, 1400, 1200, 1000, 800, 600,
        }

    def test_mem_per_uop_invariant_bips_and_power_monotone(self):
        result = sweep_frequencies("swim_in", n_intervals=20)
        frequencies = sorted(result.axis_values("frequency_mhz"), reverse=True)
        mems = [result.value(f, metric="mem_per_uop") for f in frequencies]
        assert max(mems) - min(mems) < 1e-12
        powers = [result.value(f, metric="power_w") for f in frequencies]
        assert all(b < a for a, b in zip(powers, powers[1:]))
        bips = [result.value(f, metric="bips") for f in frequencies]
        assert all(b <= a for a, b in zip(bips, bips[1:]))

    def test_upc_rises_as_frequency_drops_for_memory_bound(self):
        result = sweep_frequencies("mcf_inp", n_intervals=20)
        frequencies = sorted(result.axis_values("frequency_mhz"), reverse=True)
        upcs = [result.value(f, metric="upc") for f in frequencies]
        assert all(b > a for a, b in zip(upcs, upcs[1:]))

    def test_custom_machine_matches_engine_path(self):
        from repro.system.machine import Machine

        inline = sweep_frequencies("swim_in", n_intervals=15, machine=Machine())
        engine = sweep_frequencies("swim_in", n_intervals=15)
        assert inline.provenance is not None
        assert inline.provenance.runner == "inline"
        assert inline == engine  # provenance excluded from equality

    def test_full_round_trip_through_legacy_shape(self):
        result = sweep_frequencies("swim_in", n_intervals=15)
        rebuilt = SweepResult.from_dict(
            result.to_dict(),
            name=result.name,
            axes=result.axes,
            metric=result.metric,
            parameters=dict(result.parameters),
        )
        assert rebuilt == result
