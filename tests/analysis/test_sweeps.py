"""Tests for the parameter-sweep helpers."""

import pytest

from repro.analysis.sweeps import (
    sweep_frequencies,
    sweep_gphr_depth,
    sweep_granularity,
    sweep_pht_entries,
)
from repro.core.governor import ReactiveGovernor
from repro.errors import ConfigurationError


class TestPHTSweep:
    def test_shape(self):
        results = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=300
        )
        assert set(results) == {"applu_in"}
        assert set(results["applu_in"]) == {1, 128}

    def test_capacity_helps_on_variable_benchmark(self):
        results = sweep_pht_entries(
            ["applu_in"], pht_sizes=(1, 128), n_intervals=500
        )
        assert results["applu_in"][128] > results["applu_in"][1] + 0.2

    def test_rejects_empty_sizes(self):
        with pytest.raises(ConfigurationError):
            sweep_pht_entries(["applu_in"], pht_sizes=())


class TestDepthSweep:
    def test_depth_helps_on_variable_benchmark(self):
        results = sweep_gphr_depth(
            ["equake_in"], depths=(1, 8), n_intervals=500
        )
        assert results["equake_in"][8] > results["equake_in"][1] + 0.1

    def test_rejects_empty_depths(self):
        with pytest.raises(ConfigurationError):
            sweep_gphr_depth(["applu_in"], depths=())


class TestGranularitySweep:
    def test_shape_and_positive_improvement(self):
        results = sweep_granularity(
            "swim_in",
            granularities=(25_000_000, 100_000_000),
            governor_factory=ReactiveGovernor,
            n_segments=120,
        )
        assert set(results) == {25_000_000, 100_000_000}
        for comparison in results.values():
            assert comparison.edp_improvement > 0.3

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sweep_granularity("swim_in", (), ReactiveGovernor)


class TestFrequencySweep:
    def test_covers_all_operating_points(self):
        results = sweep_frequencies("swim_in", n_intervals=20)
        assert set(results) == {1500, 1400, 1200, 1000, 800, 600}

    def test_mem_per_uop_invariant_bips_and_power_monotone(self):
        results = sweep_frequencies("swim_in", n_intervals=20)
        frequencies = sorted(results, reverse=True)
        mems = [results[f]["mem_per_uop"] for f in frequencies]
        assert max(mems) - min(mems) < 1e-12
        powers = [results[f]["power_w"] for f in frequencies]
        assert all(b < a for a, b in zip(powers, powers[1:]))
        bips = [results[f]["bips"] for f in frequencies]
        assert all(b <= a for a, b in zip(bips, bips[1:]))

    def test_upc_rises_as_frequency_drops_for_memory_bound(self):
        results = sweep_frequencies("mcf_inp", n_intervals=20)
        frequencies = sorted(results, reverse=True)
        upcs = [results[f]["upc"] for f in frequencies]
        assert all(b > a for a, b in zip(upcs, upcs[1:]))
