"""Tests for the reproduction-certificate report."""

import pytest

from repro.analysis.paper_report import (
    Claim,
    claims_by_name,
    measure_claims,
    render_report,
)


@pytest.fixture(scope="module")
def claims():
    # The canonical lengths: the 6X factor is a tight claim (measured
    # 6.2X) and needs the full training horizon to hold.
    return measure_claims(n_accuracy=1000, n_intervals=300)


class TestClaims:
    def test_covers_the_headline_set(self, claims):
        names = set(claims_by_name(claims))
        assert "6X misprediction reduction (applu)" in names
        assert "bounded degradation below 5%" in names
        assert len(claims) == 8

    def test_all_claims_reproduce(self, claims):
        failing = [claim.name for claim in claims if not claim.holds]
        assert failing == []

    def test_measured_values_are_populated(self, claims):
        for claim in claims:
            assert claim.measured
            assert claim.paper

    def test_verdict_rendering(self):
        good = Claim(name="x", paper="p", measured="m", holds=True)
        bad = Claim(name="x", paper="p", measured="m", holds=False)
        assert good.verdict == "REPRODUCED"
        assert bad.verdict == "NOT REPRODUCED"


class TestRendering:
    def test_report_layout(self, claims):
        text = render_report(claims)
        assert text.startswith("Reproduction certificate: 8/8")
        assert "REPRODUCED" in text
        assert "claim" in text.splitlines()[2]

    def test_report_counts_failures(self):
        claims = [
            Claim(name="a", paper="p", measured="m", holds=True),
            Claim(name="b", paper="p", measured="m", holds=False),
        ]
        text = render_report(claims)
        assert text.startswith("Reproduction certificate: 1/2")
        assert "NOT REPRODUCED" in text
