"""Tests for the sample-variation metrics."""

import pytest

from repro.analysis.variability import (
    phase_transition_rate,
    sample_variation_pct,
)
from repro.errors import ConfigurationError


class TestSampleVariation:
    def test_flat_series_has_zero_variation(self):
        assert sample_variation_pct([0.01] * 10) == 0.0

    def test_every_jump_counts(self):
        assert sample_variation_pct([0.0, 0.02, 0.0, 0.02]) == 100.0

    def test_threshold_is_strict(self):
        # Delta of exactly 0.005 does not count (the paper counts
        # changes of *more than* 0.005).
        assert sample_variation_pct([0.0, 0.005, 0.0]) == 0.0
        assert sample_variation_pct([0.0, 0.0051, 0.0]) == 100.0

    def test_partial_variation(self):
        series = [0.0, 0.0, 0.02, 0.02, 0.02]
        assert sample_variation_pct(series) == pytest.approx(25.0)

    def test_custom_delta(self):
        series = [0.0, 0.002, 0.0]
        assert sample_variation_pct(series, delta=0.001) == 100.0
        assert sample_variation_pct(series, delta=0.003) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sample_variation_pct([0.01])
        with pytest.raises(ConfigurationError):
            sample_variation_pct([0.01, 0.02], delta=0.0)


class TestPhaseTransitionRate:
    def test_constant_sequence(self):
        assert phase_transition_rate([3, 3, 3, 3]) == 0.0

    def test_alternating_sequence(self):
        assert phase_transition_rate([1, 6, 1, 6]) == 1.0

    def test_partial(self):
        assert phase_transition_rate([1, 1, 2, 2]) == pytest.approx(1 / 3)

    def test_requires_two_samples(self):
        with pytest.raises(ConfigurationError):
            phase_transition_rate([1])
