"""Tests for the plain-text reporting helpers."""

import pytest

from repro.analysis.reporting import format_percent, format_series, format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 22.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_columns_align(self):
        text = format_table(["a", "b"], [["xxxx", 1.0], ["y", 2.0]])
        lines = text.splitlines()
        # Both data rows position column b at the same offset.
        assert lines[2].index("1.0000") == lines[3].index("2.0000")

    def test_floats_rendered_with_four_decimals(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_non_floats_use_str(self):
        text = format_table(["v"], [[12], ["abc"]])
        assert "12" in text
        assert "abc" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = format_table(["a"], [["x"]])
        assert text.splitlines()[0].startswith("a")


def test_format_percent():
    assert format_percent(0.341) == "34.1%"
    assert format_percent(0.341, decimals=0) == "34%"


def test_format_series():
    assert format_series("s", [1.0, 2.0], decimals=1) == "s: [1.0, 2.0]"


class TestSparkline:
    def test_length_matches_input(self):
        from repro.analysis.reporting import sparkline

        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_extremes_map_to_extremes(self):
        from repro.analysis.reporting import sparkline

        text = sparkline([0.0, 1.0])
        assert text[0] == " "
        assert text[-1] == "\u2588"

    def test_flat_series_renders_midline(self):
        from repro.analysis.reporting import sparkline

        assert set(sparkline([5.0, 5.0, 5.0])) == {"\u2584"}

    def test_explicit_bounds_clamp(self):
        from repro.analysis.reporting import sparkline

        text = sparkline([-10.0, 20.0], lo=0.0, hi=10.0)
        assert text[0] == " "
        assert text[-1] == "\u2588"

    def test_empty_rejected(self):
        from repro.analysis.reporting import sparkline

        with pytest.raises(ConfigurationError):
            sparkline([])


class TestPhaseTimeline:
    def test_scales_to_phase_range(self):
        from repro.analysis.reporting import phase_timeline

        text = phase_timeline([1, 6])
        assert text[0] == " "
        assert text[-1] == "\u2588"

    def test_empty_rejected(self):
        from repro.analysis.reporting import phase_timeline

        with pytest.raises(ConfigurationError):
            phase_timeline([])
