"""Tests for the offline prediction evaluation harness."""

import pytest

from repro.analysis.accuracy import (
    evaluate_predictor,
    evaluate_suite,
    misprediction_improvement,
)
from repro.core.phases import PhaseTable
from repro.core.predictors import (
    GPHTPredictor,
    LastValuePredictor,
    OraclePredictor,
)
from repro.errors import ConfigurationError

TABLE = PhaseTable()


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


class TestEvaluateProtocol:
    def test_scores_n_minus_one_predictions(self):
        result = evaluate_predictor(
            LastValuePredictor(), series_for([1, 1, 1, 1, 1])
        )
        assert result.total == 4
        assert len(result.predictions) == len(result.actuals) == 4

    def test_last_value_on_constant_series_is_perfect(self):
        result = evaluate_predictor(LastValuePredictor(), series_for([2] * 10))
        assert result.accuracy == 1.0
        assert result.misprediction_rate == 0.0

    def test_last_value_on_alternation_is_zero(self):
        result = evaluate_predictor(
            LastValuePredictor(), series_for([1, 6] * 10)
        )
        assert result.accuracy == 0.0

    def test_last_value_accuracy_equals_one_minus_transition_rate(self):
        phases = [1, 1, 2, 2, 2, 5, 5, 1, 1, 1]
        result = evaluate_predictor(LastValuePredictor(), series_for(phases))
        transitions = sum(
            1 for a, b in zip(phases, phases[1:]) if a != b
        )
        expected = 1 - transitions / (len(phases) - 1)
        assert result.accuracy == pytest.approx(expected)

    def test_predictor_is_reset_before_evaluation(self):
        predictor = LastValuePredictor()
        evaluate_predictor(predictor, series_for([6, 6, 6]))
        result = evaluate_predictor(predictor, series_for([1, 1, 1]))
        assert result.accuracy == 1.0

    def test_requires_two_samples(self):
        with pytest.raises(ConfigurationError):
            evaluate_predictor(LastValuePredictor(), [0.01])

    def test_custom_phase_table(self):
        coarse = PhaseTable([0.02])
        # 0.012 and 0.018 are both phase 1 under the coarse table.
        result = evaluate_predictor(
            LastValuePredictor(), [0.012, 0.018, 0.012], coarse
        )
        assert result.accuracy == 1.0

    def test_result_counts(self):
        result = evaluate_predictor(
            LastValuePredictor(), series_for([1, 1, 6, 6])
        )
        assert result.correct == 2
        assert result.total == 3


class TestEvaluateSuite:
    def test_runs_every_factory_on_every_benchmark(self):
        suite = evaluate_suite(
            [LastValuePredictor, lambda: GPHTPredictor(4, 16)],
            {
                "a": series_for([1, 1, 1, 1]),
                "b": series_for([1, 6, 1, 6, 1, 6]),
            },
        )
        assert set(suite) == {"a", "b"}
        assert set(suite["a"]) == {"LastValue", "GPHT_4_16"}

    def test_fresh_predictor_per_benchmark(self):
        """GPHT state must not leak: benchmark 'b' is evaluated from a
        cold table even though 'a' trained the same pattern."""
        pattern = series_for([1, 6] * 50)
        suite = evaluate_suite(
            [lambda: GPHTPredictor(4, 16)],
            {"a": pattern, "b": series_for([1, 6] * 3)},
        )
        # The short series leaves no room to train: accuracy far from 1.
        assert suite["b"]["GPHT_4_16"].accuracy < 0.9


class TestMispredictionImprovement:
    def test_factor(self):
        phases = [1, 6] * 30
        last = evaluate_predictor(LastValuePredictor(), series_for(phases))
        oracle = evaluate_predictor(
            OraclePredictor(phases), series_for(phases)
        )
        gpht = evaluate_predictor(GPHTPredictor(4, 16), series_for(phases))
        assert misprediction_improvement(last, gpht) > 5.0
        assert misprediction_improvement(last, oracle) == float("inf")

    def test_equal_predictors_give_one(self):
        phases = [1, 1, 6, 6, 1, 1, 6, 6]
        a = evaluate_predictor(LastValuePredictor(), series_for(phases))
        b = evaluate_predictor(LastValuePredictor(), series_for(phases))
        assert misprediction_improvement(a, b) == pytest.approx(1.0)
