"""Tests for whole-benchmark characterisation."""

import pytest

from repro.analysis.characterize import characterization_rows, characterize
from repro.workloads.quadrants import Quadrant
from repro.workloads.spec2000 import benchmark


@pytest.fixture(scope="module")
def applu():
    return characterize(benchmark("applu_in"), n_intervals=600)


@pytest.fixture(scope="module")
def swim():
    return characterize(benchmark("swim_in"), n_intervals=600)


class TestCharacterize:
    def test_quadrants(self, applu, swim):
        assert applu.quadrant == Quadrant.Q3
        assert swim.quadrant == Quadrant.Q2

    def test_occupancy_sums_to_one(self, applu):
        assert sum(applu.phase_occupancy.values()) == pytest.approx(1.0)

    def test_swim_lives_in_phase_6(self, swim):
        assert swim.dominant_phase == 6
        assert swim.phase_occupancy[6] > 0.95

    def test_applu_spreads_over_phases(self, applu):
        assert len(applu.phase_occupancy) >= 4

    def test_run_lengths_cover_occupied_phases(self, applu):
        for phase_id in applu.mean_run_length:
            assert phase_id in applu.phase_occupancy
            assert applu.mean_run_length[phase_id] >= 1.0

    def test_swim_single_run_outlives_the_window(self, applu, swim):
        # swim never transitions, so its only run is the truncated
        # trailing one — correctly excluded from duration statistics.
        assert swim.mean_run_length == {}
        assert applu.mean_run_length[applu.dominant_phase] < 10

    def test_predictability(self, applu, swim):
        assert swim.last_value_accuracy > 0.99
        assert swim.predictability_gain == pytest.approx(0.0, abs=0.02)
        assert applu.last_value_accuracy < 0.55
        assert applu.predictability_gain > 0.3


class TestRows:
    def test_rows_render(self, applu):
        rows = dict(characterization_rows(applu))
        assert rows["benchmark"] == "applu_in"
        assert rows["quadrant"] == "Q3"
        assert "P6" in rows["phase occupancy"]
        assert rows["predictability gain"].startswith("+")
