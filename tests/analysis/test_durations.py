"""Tests for phase run-length analysis (extension)."""

import pytest

from repro.analysis.durations import DurationStatistics, PhaseRun, phase_runs
from repro.errors import ConfigurationError


class TestPhaseRuns:
    def test_encodes_runs(self):
        runs = phase_runs([1, 1, 1, 5, 5, 2])
        assert runs == [
            PhaseRun(phase=1, start=0, length=3),
            PhaseRun(phase=5, start=3, length=2),
            PhaseRun(phase=2, start=5, length=1),
        ]

    def test_single_run(self):
        assert phase_runs([4, 4]) == [PhaseRun(phase=4, start=0, length=2)]

    def test_lengths_sum_to_sequence(self):
        phases = [1, 2, 2, 3, 1, 1, 1, 6]
        assert sum(r.length for r in phase_runs(phases)) == len(phases)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            phase_runs([])


class TestDurationStatistics:
    def make_stats(self):
        # Runs: 1x3, 5x2, 1x3, 5x4; trailing 1-run excluded.
        phases = [1, 1, 1, 5, 5, 1, 1, 1, 5, 5, 5, 5, 1]
        return DurationStatistics.from_sequence(phases)

    def test_from_sequence_excludes_trailing_run(self):
        stats = self.make_stats()
        assert stats.run_count(1) == 2
        assert stats.run_count(5) == 2

    def test_histogram(self):
        stats = self.make_stats()
        assert stats.histogram(1) == {3: 2}
        assert stats.histogram(5) == {2: 1, 4: 1}

    def test_mean_and_median(self):
        stats = self.make_stats()
        assert stats.mean_duration(1) == pytest.approx(3.0)
        assert stats.mean_duration(5) == pytest.approx(3.0)
        assert stats.median_duration(5) == 2

    def test_unseen_phase_raises(self):
        stats = self.make_stats()
        with pytest.raises(ConfigurationError):
            stats.mean_duration(3)
        with pytest.raises(ConfigurationError):
            stats.median_duration(3)

    def test_observed_phases(self):
        assert self.make_stats().observed_phases() == (1, 5)

    def test_record_validation(self):
        stats = DurationStatistics()
        with pytest.raises(ConfigurationError):
            stats.record(1, 0)

    def test_continuation_probability(self):
        stats = self.make_stats()
        # Phase 5 runs: lengths {2, 4}.  At elapsed=1 both continue.
        assert stats.continuation_probability(5, 1) == 1.0
        # At elapsed=2: both reached 2; only the 4-run continues.
        assert stats.continuation_probability(5, 2) == 0.5
        # At elapsed=4: the 4-run reached it and ended there.
        assert stats.continuation_probability(5, 4) == 0.0

    def test_continuation_beyond_observed_is_zero(self):
        stats = self.make_stats()
        assert stats.continuation_probability(5, 10) == 0.0

    def test_continuation_for_unseen_phase_is_one(self):
        stats = self.make_stats()
        assert stats.continuation_probability(3, 1) == 1.0

    def test_continuation_validation(self):
        with pytest.raises(ConfigurationError):
            self.make_stats().continuation_probability(5, 0)
