"""Tests for the package's public API surface."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core",
        "repro.core.predictors",
        "repro.cpu",
        "repro.pmc",
        "repro.power",
        "repro.workloads",
        "repro.system",
        "repro.analysis",
        "repro.exec",
        "repro.learn",
        "repro.serve",
    ],
)
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_quickstart_from_docstring_runs():
    """The quickstart in the package docstring must keep working."""
    from repro import GPHTPredictor, Machine, PhasePredictionGovernor
    from repro.workloads import benchmark

    machine = Machine()
    trace = benchmark("applu_in").trace(n_intervals=20)
    governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
    result = machine.run(trace, governor)
    assert result.bips > 0
    assert result.average_power_w > 0
    assert result.edp > 0


class TestStableTopLevelSurface:
    """docs/api.md promises these import straight from ``repro``."""

    DOCUMENTED = [
        "PhasePredictor",
        "PhaseObservation",
        "PhaseSession",
        "SessionConfig",
        "SampleOutcome",
        "BatchOutcomes",
        "ExecutionEngine",
        "ExperimentSpec",
        "make_engine",
        "PredictionResult",
        "evaluate_predictor",
        "evaluate_predictor_batch",
    ]

    def test_documented_names_import_from_repro(self):
        for name in self.DOCUMENTED:
            assert name in repro.__all__, name
            assert hasattr(repro, name), name

    def test_lazy_names_are_the_submodule_objects(self):
        from repro.analysis import evaluate_predictor_batch
        from repro.exec import ExecutionEngine
        from repro.serve import PhaseSession

        assert repro.PhaseSession is PhaseSession
        assert repro.ExecutionEngine is ExecutionEngine
        assert repro.evaluate_predictor_batch is evaluate_predictor_batch

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name
