"""SessionManager: lifecycle, overload, eviction, durable checkpoints."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import SessionClosed, SessionOpened, SessionRestored
from repro.obs.tracer import RingBufferTracer
from repro.serve import (
    MIGRATED_CLOSE_REASON,
    CheckpointStore,
    OverloadedError,
    SessionConfig,
    SessionManager,
    UnknownSessionError,
)


class TestLifecycle:
    def test_open_get_close(self):
        manager = SessionManager()
        session = manager.open()
        assert manager.get(session.session_id) is session
        assert manager.active_sessions == 1
        manager.close(session.session_id)
        assert manager.active_sessions == 0

    def test_ids_are_unique_and_never_reused(self):
        manager = SessionManager()
        first = manager.open()
        manager.close(first.session_id)
        second = manager.open()
        assert first.session_id != second.session_id

    def test_unknown_session_raises(self):
        manager = SessionManager()
        with pytest.raises(UnknownSessionError):
            manager.get("s999")
        with pytest.raises(UnknownSessionError):
            manager.close("s999")

    def test_closed_session_is_gone(self):
        manager = SessionManager()
        session = manager.open()
        manager.close(session.session_id)
        with pytest.raises(UnknownSessionError):
            manager.get(session.session_id)

    def test_restore_opens_a_new_session(self):
        manager = SessionManager()
        original = manager.open(SessionConfig(governor="reactive"))
        for index in range(4):
            original.feed(index, 0.001)
        restored = manager.restore(original.snapshot())
        assert restored.session_id != original.session_id
        assert restored.samples == 4

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionManager(max_sessions=0)
        with pytest.raises(ConfigurationError):
            SessionManager(idle_timeout_s=0.0)


class TestOverload:
    def test_session_ceiling_enforced(self):
        manager = SessionManager(max_sessions=2)
        manager.open()
        manager.open()
        with pytest.raises(OverloadedError):
            manager.open()

    def test_closing_frees_a_slot(self):
        manager = SessionManager(max_sessions=1)
        session = manager.open()
        manager.close(session.session_id)
        assert manager.open() is not None

    def test_restore_respects_the_ceiling(self):
        manager = SessionManager(max_sessions=1)
        session = manager.open()
        checkpoint = session.snapshot()
        with pytest.raises(OverloadedError):
            manager.restore(checkpoint)


class TestIdleEviction:
    def test_idle_sessions_evicted_on_logical_clock(self):
        # No wall clock: time is the request count, one tick per request.
        manager = SessionManager(idle_timeout_s=3)
        idle = manager.open()
        for _ in range(5):
            manager.tick()
        assert manager.evict_idle() == [idle.session_id]
        with pytest.raises(UnknownSessionError):
            manager.get(idle.session_id)

    def test_active_sessions_survive_eviction(self):
        manager = SessionManager(idle_timeout_s=3)
        busy = manager.open()
        for _ in range(5):
            manager.tick()
            manager.get(busy.session_id)  # refreshes the idle timer
        assert manager.evict_idle() == []

    def test_open_sweeps_idle_sessions_first(self):
        manager = SessionManager(max_sessions=1, idle_timeout_s=2)
        stale = manager.open()
        for _ in range(5):
            manager.tick()
        fresh = manager.open()  # evicts the stale one instead of failing
        assert fresh.session_id != stale.session_id
        assert manager.active_sessions == 1

    def test_no_timeout_means_no_eviction(self):
        manager = SessionManager()
        manager.open()
        for _ in range(1000):
            manager.tick()
        assert manager.evict_idle() == []


class TestObservability:
    def test_lifecycle_events_traced(self):
        tracer = RingBufferTracer()
        manager = SessionManager(idle_timeout_s=2, tracer=tracer)
        session = manager.open()
        for _ in range(5):
            manager.tick()
        manager.evict_idle()
        opened = [e for e in tracer.events() if isinstance(e, SessionOpened)]
        closed = [e for e in tracer.events() if isinstance(e, SessionClosed)]
        assert [e.session for e in opened] == [session.session_id]
        assert [(e.session, e.reason) for e in closed] == [
            (session.session_id, "evicted")
        ]

    def test_metrics_track_the_population(self):
        manager = SessionManager()
        a = manager.open()
        manager.open()
        manager.close(a.session_id)
        metrics = manager.metrics
        assert metrics.counter("serve.sessions_opened").value == 2
        assert metrics.counter("serve.sessions_closed").value == 1
        assert metrics.gauge("serve.sessions_active").value == 1.0

    def test_stats_payload(self):
        manager = SessionManager(max_sessions=8)
        manager.open()
        stats = manager.stats()
        assert stats["sessions_active"] == 1
        assert stats["max_sessions"] == 8
        assert isinstance(stats["metrics"], dict)


def _store_manager(tmp_path, cadence=4, **kwargs):
    store = CheckpointStore(tmp_path, synchronous=True)
    manager = SessionManager(
        max_sessions=kwargs.pop("max_sessions", 4),
        checkpoint_store=store,
        checkpoint_every=cadence,
        **kwargs,
    )
    return store, manager


class TestDurableCheckpoints:
    def test_open_writes_the_initial_checkpoint(self, tmp_path):
        store, manager = _store_manager(tmp_path)
        session = manager.open()
        record = store.load(session.session_id)
        assert record is not None
        assert record.checkpoint["samples"] == 0

    def test_cadence_gates_checkpoint_writes(self, tmp_path):
        store, manager = _store_manager(tmp_path, cadence=4)
        session = manager.open()
        for index in range(3):
            session.feed(index, 0.02)
            assert manager.maybe_checkpoint(session.session_id) is False
        assert store.load(session.session_id).checkpoint["samples"] == 0
        session.feed(3, 0.02)
        assert manager.maybe_checkpoint(session.session_id) is True
        assert store.load(session.session_id).checkpoint["samples"] == 4
        assert (
            manager.metrics.counter("serve.checkpoints_written").value == 2
        )

    def test_maybe_checkpoint_without_store_is_a_noop(self):
        manager = SessionManager()
        session = manager.open()
        assert manager.maybe_checkpoint(session.session_id) is False
        assert manager.maybe_checkpoint("s999") is False

    def test_close_deletes_the_checkpoint(self, tmp_path):
        store, manager = _store_manager(tmp_path)
        session = manager.open()
        manager.close(session.session_id)
        assert store.load(session.session_id) is None

    def test_migrated_close_keeps_the_checkpoint(self, tmp_path):
        # The target worker's restore takes ownership of the store
        # file; a `migrated` close on the source must not race it with
        # a delete.
        store, manager = _store_manager(tmp_path)
        session = manager.open()
        manager.close(session.session_id, reason=MIGRATED_CLOSE_REASON)
        assert store.load(session.session_id) is not None

    def test_eviction_deletes_the_checkpoint(self, tmp_path):
        store, manager = _store_manager(tmp_path, idle_timeout_s=2)
        session = manager.open()
        for _ in range(5):
            manager.tick()
        assert manager.evict_idle() == [session.session_id]
        assert store.load(session.session_id) is None

    def test_negative_cadence_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            SessionManager(checkpoint_every=-1)


class TestRestoreAs:
    def test_preserves_the_session_id(self):
        manager = SessionManager()
        original = manager.open()
        for index in range(4):
            original.feed(index, 0.02)
        checkpoint = original.snapshot()
        manager.close(original.session_id)
        restored = manager.restore_as(original.session_id, checkpoint)
        assert restored.session_id == original.session_id
        assert restored.samples == 4
        assert manager.get(original.session_id) is restored

    def test_live_id_collision_rejected(self):
        manager = SessionManager()
        session = manager.open()
        with pytest.raises(ConfigurationError, match="already"):
            manager.restore_as(session.session_id, session.snapshot())

    def test_empty_id_rejected(self):
        manager = SessionManager()
        with pytest.raises(ConfigurationError, match="session"):
            manager.restore_as("", manager.open().snapshot())

    def test_minted_ids_never_collide_with_restored_ones(self):
        # Adopting "s3" must push the minting counter past 3, or the
        # next opened session would reuse a restored id.
        manager = SessionManager()
        checkpoint = SessionManager().open().snapshot()
        manager.restore_as("s3", checkpoint)
        fresh = manager.open()
        assert fresh.session_id not in ("s3",)
        assert manager.active_sessions == 2

    def test_respects_the_ceiling(self):
        manager = SessionManager(max_sessions=1)
        checkpoint = SessionManager().open().snapshot()
        manager.open()
        with pytest.raises(OverloadedError):
            manager.restore_as("other", checkpoint)

    def test_emits_session_restored_event(self):
        tracer = RingBufferTracer()
        manager = SessionManager(tracer=tracer)
        donor = SessionManager().open()
        for index in range(3):
            donor.feed(index, 0.02)
        manager.restore_as("s7", donor.snapshot())
        restored = [
            e for e in tracer.events() if isinstance(e, SessionRestored)
        ]
        assert [(e.session, e.samples) for e in restored] == [("s7", 3)]
