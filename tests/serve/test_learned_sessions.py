"""Trained repro.learn models served through the session stack.

The acceptance bar for the learned-model integration: a trained tree
(or Markov) artifact must ride the existing serve machinery — session
snapshot/restore, the durable CheckpointStore worker-restart path and
`serve replay` verification — bit-for-bit, with the trained stratum
surviving every hop.
"""

import pathlib

import pytest

from repro.core.phases import PhaseTable
from repro.errors import ConfigurationError
from repro.learn import (
    phase_dataset_from_series,
    session_config_params,
    train_markov,
    train_phase_tree,
)
from repro.serve import PhaseSession, SessionConfig, load_trace, replay_trace
from repro.serve.checkpoint import CheckpointStore
from repro.workloads import benchmark

FIXTURE_TRACE = (
    pathlib.Path(__file__).parent.parent
    / "learn"
    / "fixtures"
    / "tiny_trace.jsonl"
)

TABLE = PhaseTable()


def _train_series():
    return list(benchmark("applu_in").mem_series(200, seed=11))


def _tree_artifact():
    dataset = phase_dataset_from_series(_train_series(), history_length=4)
    return train_phase_tree(dataset)[1]


def _markov_artifact():
    dataset = phase_dataset_from_series(_train_series(), history_length=3)
    return train_markov(dataset, order=3)[1]


def _session_for(artifact):
    config = SessionConfig.from_payload(session_config_params(artifact))
    session = PhaseSession(config, session_id="learned")
    session.predictor.restore_state(dict(artifact.state))
    return session


def _live_series():
    return list(benchmark("swim_in").mem_series(120, seed=4))


def _feed(session, series, start=0):
    return [
        session.feed(start + i, value) for i, value in enumerate(series)
    ]


@pytest.mark.parametrize(
    "make_artifact",
    [_tree_artifact, _markov_artifact],
    ids=["tree", "markov"],
)
class TestLearnedSessionCheckpoints:
    def test_snapshot_restores_into_fresh_session(self, make_artifact):
        artifact = make_artifact()
        series = _live_series()
        original = _session_for(artifact)
        _feed(original, series[:60])
        snapshot = original.snapshot()

        restored = PhaseSession.from_snapshot(snapshot, session_id="twin")
        assert restored.snapshot() == snapshot
        left = _feed(original, series[60:], start=60)
        right = _feed(restored, series[60:], start=60)
        assert left == right
        assert restored.snapshot() == original.snapshot()

    def test_worker_restart_through_checkpoint_store(
        self, make_artifact, tmp_path
    ):
        artifact = make_artifact()
        series = _live_series()
        session = _session_for(artifact)
        _feed(session, series[:50])

        store = CheckpointStore(tmp_path / "ckpt", synchronous=True)
        store.save("worker-0", session.snapshot())
        store.close()

        # The restarted worker reopens the store cold.
        reopened = CheckpointStore(tmp_path / "ckpt", synchronous=True)
        stored = reopened.load("worker-0")
        assert stored is not None
        revived = PhaseSession.from_snapshot(
            stored.checkpoint, session_id="worker-0"
        )
        reopened.close()

        left = _feed(session, series[50:], start=50)
        right = _feed(revived, series[50:], start=50)
        assert left == right
        assert revived.snapshot() == session.snapshot()

    def test_replay_trace_with_trained_state_matches_offline(
        self, make_artifact
    ):
        artifact = make_artifact()
        events = load_trace(FIXTURE_TRACE)
        config = SessionConfig.from_payload(session_config_params(artifact))
        report = replay_trace(
            events, config, predictor_state=dict(artifact.state)
        )
        assert report.matches_offline
        assert report.samples > 0

    def test_replay_with_mid_stream_snapshot(self, make_artifact):
        artifact = make_artifact()
        events = load_trace(FIXTURE_TRACE)
        config = SessionConfig.from_payload(session_config_params(artifact))
        report = replay_trace(
            events,
            config,
            snapshot_at=40,
            predictor_state=dict(artifact.state),
        )
        assert report.snapshot_at == 40
        assert report.matches_offline


class TestLearnedSessionConfig:
    def test_learned_tree_payload_round_trip(self):
        config = SessionConfig(governor="learned_tree", history_length=6)
        assert SessionConfig.from_payload(config.to_payload()) == config

    def test_markov_payload_round_trip(self):
        config = SessionConfig(
            governor="markov", markov_order=2, markov_alpha=0.25
        )
        assert SessionConfig.from_payload(config.to_payload()) == config

    def test_markov_alpha_type_is_validated(self):
        with pytest.raises(ConfigurationError, match="markov_alpha"):
            SessionConfig.from_payload({"markov_alpha": "0.5"})
        with pytest.raises(ConfigurationError, match="markov_alpha"):
            SessionConfig.from_payload({"markov_alpha": True})

    def test_unknown_fields_still_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown session"):
            SessionConfig.from_payload(
                {"governor": "markov", "markov_beta": 1.0}
            )

    def test_untrained_learned_governors_serve_from_scratch(self):
        # Without an artifact the learned governors still serve (the
        # tree falls back to last-value; markov learns online).
        for governor in ("learned_tree", "markov"):
            session = PhaseSession(SessionConfig(governor=governor))
            outcomes = _feed(session, _live_series()[:30])
            assert len(outcomes) == 30
