"""Self-healing serving: checkpoint recovery, auto-restart, migration.

The property at the center (the paper-style losslessness claim,
promoted to the failure domain): for any kill point, a session restored
from its last durable checkpoint and replayed over the remaining stream
ends in a state *bit-identical* to an uninterrupted twin fed the same
stream.  The tests assert it at three levels — manager+store in one
process (hypothesis, any cadence/kill point), a real sharded server
with a killed and auto-restarted worker, and the load generator's chaos
mode, whose outcome digest must equal an undisturbed run's.
"""

import json
import socket
import tempfile
import threading
import time

from hypothesis import given, settings, strategies as st

from repro.serve import (
    ChaosEvent,
    ChaosSchedule,
    ShardedServer,
    aggregate_stats,
    handle_request,
    run_loadgen,
    shard_for,
)
from repro.serve.checkpoint import CheckpointStore
from repro.serve.manager import SessionManager

mem_values = st.sampled_from([0.001, 0.011, 0.02, 0.03, 0.045, 0.06])


def _feed(manager, session_id, series, start=0):
    for index, value in enumerate(series[start:], start):
        response = handle_request(
            manager,
            {
                "op": "sample",
                "session": session_id,
                "interval": index,
                "mem_per_uop": value,
            },
        )
        assert response["ok"], response


class TestCrashReplayProperty:
    @given(
        series=st.lists(mem_values, min_size=2, max_size=48),
        cadence=st.integers(min_value=1, max_value=16),
        cut=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_post_replay_snapshot_bit_identical_to_twin(
        self, series, cadence, cut
    ):
        kill_at = int(len(series) * cut)
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(root, synchronous=True)
            manager = SessionManager(
                max_sessions=4, checkpoint_store=store, checkpoint_every=cadence
            )
            session_id = handle_request(manager, {"op": "hello"})["session"]
            _feed(manager, session_id, series[:kill_at])

            # Crash: the manager (worker process) is simply abandoned.
            # A replacement adopts the session from its last durable
            # checkpoint and the client replays from the restored count.
            successor = SessionManager(
                max_sessions=4, checkpoint_store=store, checkpoint_every=cadence
            )
            record = store.load(session_id)
            assert record is not None  # hello wrote the initial checkpoint
            restored = successor.restore_as(session_id, record.checkpoint)
            assert restored.samples <= kill_at  # replay window, never ahead
            _feed(manager=successor, session_id=session_id, series=series,
                  start=restored.samples)

            twin = SessionManager(max_sessions=4)
            twin_id = handle_request(twin, {"op": "hello"})["session"]
            _feed(twin, twin_id, series)

            recovered = successor.get(session_id).snapshot()
            straight = twin.get(twin_id).snapshot()
            assert recovered == straight


class _Client:
    def __init__(self, port):
        self._sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, **request):
        self._file.write(json.dumps(request) + "\n")
        self._file.flush()
        return json.loads(self._file.readline())

    def close(self):
        self._sock.close()


def _await_recovery(client, session_id, attempts=400, delay=0.05):
    """Poll a session's stats until its restarted worker answers."""
    for _ in range(attempts):
        response = client.rpc(op="stats", session=session_id)
        if response.get("ok"):
            return response["stats"]["samples"]
        assert response["error"] in ("worker_unavailable", "worker_recovering")
        time.sleep(delay)
    raise AssertionError("session never recovered")


class TestAutoRestart:
    def test_kill_restart_replay_matches_uninterrupted_twin(self):
        series = [0.001, 0.02, 0.06, 0.02, 0.001, 0.045, 0.03, 0.011] * 4
        server = ShardedServer(
            workers=2, max_sessions=8, auto_restart=True, checkpoint_every=4
        )
        port = server.start()
        try:
            client = _Client(port)
            session = client.rpc(op="hello")["session"]
            fed = 20
            for index in range(fed):
                assert client.rpc(
                    op="sample", session=session, interval=index,
                    mem_per_uop=series[index],
                )["ok"]
            server.kill_worker(shard_for(session, 2))
            resumed = _await_recovery(client, session)
            assert 0 < resumed <= fed  # restored from a checkpoint, not lost
            for index in range(resumed, len(series)):
                assert client.rpc(
                    op="sample", session=session, interval=index,
                    mem_per_uop=series[index],
                )["ok"]
            snapshot = client.rpc(op="snapshot", session=session)["checkpoint"]

            twin = SessionManager(max_sessions=1)
            twin_id = handle_request(twin, {"op": "hello"})["session"]
            _feed(twin, twin_id, series)
            assert snapshot == json.loads(
                json.dumps(twin.get(twin_id).snapshot())
            )
            stats = client.rpc(op="stats")["stats"]
            assert stats["workers_alive"] == 2
            assert stats["workers_recovering"] == 0
            assert server.metrics.counter("serve.worker_restarts").value == 1
            client.close()
        finally:
            server.stop()

    def test_recovering_error_code_is_transient(self):
        server = ShardedServer(workers=1, auto_restart=True)
        port = server.start()
        try:
            client = _Client(port)
            session = client.rpc(op="hello")["session"]
            server.kill_worker(0)
            # The first failed forward marks the worker down and kicks
            # the restart; until it finishes, responses carry one of
            # the two transient codes with the `recovering` detail.
            response = client.rpc(
                op="sample", session=session, interval=0, mem_per_uop=0.02
            )
            assert response["ok"] is False
            assert response["error"] in (
                "worker_unavailable", "worker_recovering"
            )
            assert response["recovering"] in (True, False)
            resumed = _await_recovery(client, session)
            assert resumed == 0
            client.close()
        finally:
            server.stop()


class TestChaosLoadgen:
    def test_chaos_digest_equals_undisturbed_digest(self):
        kwargs = dict(
            sessions=4, samples_per_session=160, batch_size=8,
            connections=1, seed=11,
        )
        server = ShardedServer(workers=2, auto_restart=True)
        port = server.start()
        clean = run_loadgen("127.0.0.1", port, **kwargs)
        server.stop()
        assert clean.errors == 0

        server = ShardedServer(workers=2, auto_restart=True)
        port = server.start()
        chaos = ChaosSchedule(
            server.kill_worker, [ChaosEvent(15, 0), ChaosEvent(55, 1)]
        )
        try:
            result = run_loadgen("127.0.0.1", port, chaos=chaos, **kwargs)
        finally:
            server.stop()
        assert len(chaos.fired) == 2
        assert result.errors == 0
        assert result.recoveries >= 1
        assert result.replayed_samples >= 1
        assert result.outcome_digest == clean.outcome_digest

    def test_kill_during_verify_epilogue_replays_and_reverifies(self):
        # A 1-session/48-sample/batch-8 run finishes feeding by request
        # 8, so a kill at request 10 lands *inside* the verify epilogue.
        # The restarted worker adopts the session from its last
        # checkpoint (32 samples); the epilogue must report the rollback
        # so the driver replays the tail and verifies again, instead of
        # counting sample-count mismatches as errors.
        kwargs = dict(
            sessions=1, samples_per_session=48, batch_size=8,
            connections=1, seed=3,
        )
        server = ShardedServer(workers=2, auto_restart=True)
        port = server.start()
        clean = run_loadgen("127.0.0.1", port, **kwargs)
        server.stop()
        assert clean.errors == 0

        server = ShardedServer(workers=2, auto_restart=True)
        port = server.start()
        chaos = ChaosSchedule(server.kill_worker, [ChaosEvent(10, 0)])
        try:
            result = run_loadgen("127.0.0.1", port, chaos=chaos, **kwargs)
        finally:
            server.stop()
        assert len(chaos.fired) == 1
        assert result.errors == 0
        assert result.recoveries >= 1
        assert result.replayed_samples >= 1
        assert result.outcome_digest == clean.outcome_digest


class TestMigration:
    def test_round_trip_under_concurrent_traffic(self):
        series = [0.001, 0.02, 0.06, 0.02, 0.001, 0.045, 0.03, 0.011] * 3
        server = ShardedServer(workers=2, max_sessions=8)
        port = server.start()
        try:
            client = _Client(port)
            moving = client.rpc(op="hello")["session"]
            noisy = client.rpc(op="hello")["session"]
            home = shard_for(moving, 2)

            stop = threading.Event()
            noise_errors = []

            def hammer():
                other = _Client(port)
                index = 0
                while not stop.is_set():
                    response = other.rpc(
                        op="sample", session=noisy, interval=index,
                        mem_per_uop=0.02,
                    )
                    if not response.get("ok"):
                        noise_errors.append(response)
                        break
                    index += 1
                other.close()

            noise = threading.Thread(target=hammer)
            noise.start()
            try:
                index = 0
                for hop, target in enumerate([1 - home, home, 1 - home]):
                    for _ in range(4):
                        assert client.rpc(
                            op="sample", session=moving, interval=index,
                            mem_per_uop=series[index],
                        )["ok"]
                        index += 1
                    migrated = client.rpc(
                        op="migrate", session=moving, worker=target
                    )
                    assert migrated["ok"], migrated
                    assert migrated["to_worker"] == target
                    assert migrated["samples"] == index
                for index in range(index, len(series)):
                    assert client.rpc(
                        op="sample", session=moving, interval=index,
                        mem_per_uop=series[index],
                    )["ok"]
            finally:
                stop.set()
                noise.join(timeout=30)
            assert not noise_errors

            # The migrated session is bit-identical to a never-moved twin.
            snapshot = client.rpc(op="snapshot", session=moving)["checkpoint"]
            twin = SessionManager(max_sessions=1)
            twin_id = handle_request(twin, {"op": "hello"})["session"]
            _feed(twin, twin_id, series)
            assert snapshot == json.loads(
                json.dumps(twin.get(twin_id).snapshot())
            )
            assert (
                server.metrics.counter("serve.sessions_migrated").value == 3
            )
            client.close()
        finally:
            server.stop()

    def test_migrate_to_same_worker_is_a_noop(self):
        server = ShardedServer(workers=2)
        port = server.start()
        try:
            client = _Client(port)
            session = client.rpc(op="hello")["session"]
            home = shard_for(session, 2)
            response = client.rpc(op="migrate", session=session, worker=home)
            assert response["ok"] is True
            assert response["migrated"] is False
            client.close()
        finally:
            server.stop()

    def test_migrate_validates_fields(self):
        server = ShardedServer(workers=2)
        port = server.start()
        try:
            client = _Client(port)
            assert client.rpc(op="migrate")["error"] == "bad_request"
            assert (
                client.rpc(op="migrate", session="s1", worker=9)["error"]
                == "bad_request"
            )
            assert (
                client.rpc(op="migrate", session="s1", extra=1)["error"]
                == "bad_request"
            )
            # Unknown (but valid-looking) session: the source worker
            # answers unknown_session and the router propagates it.
            missing = client.rpc(op="migrate", session="s999")
            assert missing["error"] == "unknown_session"
            client.close()
        finally:
            server.stop()


class TestAggregateStatsMidRestart:
    def test_recovering_slot_counted_separately(self):
        manager = SessionManager(max_sessions=3)
        handle_request(manager, {"op": "hello"})
        alive = handle_request(manager, {"op": "stats"})["stats"]
        merged = aggregate_stats([None, alive], recovering=[0])
        assert merged["workers"] == 2
        assert merged["workers_alive"] == 1
        assert merged["workers_recovering"] == 1
        assert merged["sessions_active"] == 1
        assert merged["per_worker"][0] is None

    def test_out_of_range_recovering_indices_ignored(self):
        merged = aggregate_stats([None], recovering=[0, 5, -1])
        assert merged["workers_recovering"] == 1
