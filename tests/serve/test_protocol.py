"""Wire protocol: dispatch, error codes, JSON line handling."""

import json

import pytest

from repro.serve import (
    PROTOCOL_VERSION,
    SessionManager,
    handle_line,
    handle_request,
    parse_response,
)


@pytest.fixture
def manager():
    return SessionManager(max_sessions=4)


def hello(manager, **fields):
    response = handle_request(manager, {"op": "hello", **fields})
    assert response["ok"], response
    return response["session"]


class TestHello:
    def test_opens_a_session(self, manager):
        response = handle_request(manager, {"op": "hello"})
        assert response["ok"] is True
        assert response["protocol"] == PROTOCOL_VERSION
        assert response["session"] == "s1"
        assert manager.active_sessions == 1

    def test_accepts_inline_session_config(self, manager):
        response = handle_request(
            manager, {"op": "hello", "governor": "reactive", "policy": "table2"}
        )
        assert response["ok"] and response["governor"] == "reactive"

    def test_rejects_unsupported_protocol(self, manager):
        response = handle_request(manager, {"op": "hello", "protocol": 99})
        assert response["ok"] is False
        assert response["error"] == "unsupported_protocol"

    def test_rejects_unknown_fields(self, manager):
        response = handle_request(manager, {"op": "hello", "turbo": True})
        assert response["error"] == "bad_request"

    def test_rejects_bad_config(self, manager):
        response = handle_request(manager, {"op": "hello", "governor": "x"})
        assert response["error"] == "bad_request"

    def test_overload_maps_to_server_overloaded(self, manager):
        for _ in range(4):
            hello(manager)
        response = handle_request(manager, {"op": "hello"})
        assert response["error"] == "server_overloaded"


class TestSample:
    def test_feeds_and_answers(self, manager):
        session = hello(manager)
        response = handle_request(
            manager,
            {
                "op": "sample",
                "session": session,
                "interval": 0,
                "mem_per_uop": 0.001,
            },
        )
        assert response["ok"] is True
        assert response["interval"] == 0
        assert response["phase"] == 1
        assert response["hit"] is None
        assert response["frequency_mhz"] > 0

    def test_out_of_order_is_bad_request(self, manager):
        session = hello(manager)
        response = handle_request(
            manager,
            {
                "op": "sample",
                "session": session,
                "interval": 7,
                "mem_per_uop": 0.001,
            },
        )
        assert response["error"] == "bad_request"

    def test_unknown_session(self, manager):
        response = handle_request(
            manager,
            {"op": "sample", "session": "s77", "interval": 0, "mem_per_uop": 0.1},
        )
        assert response["error"] == "unknown_session"

    def test_missing_field_is_bad_request(self, manager):
        session = hello(manager)
        response = handle_request(
            manager, {"op": "sample", "session": session, "interval": 0}
        )
        assert response["error"] == "bad_request"
        assert "mem_per_uop" in response["message"]

    def test_wrong_types_are_bad_request(self, manager):
        session = hello(manager)
        response = handle_request(
            manager,
            {
                "op": "sample",
                "session": session,
                "interval": True,
                "mem_per_uop": 0.1,
            },
        )
        assert response["error"] == "bad_request"


class TestSnapshotRestore:
    def test_round_trip_over_the_wire(self, manager):
        session = hello(manager)
        for index, value in enumerate([0.001, 0.02, 0.05]):
            handle_request(
                manager,
                {
                    "op": "sample",
                    "session": session,
                    "interval": index,
                    "mem_per_uop": value,
                },
            )
        snapshot = handle_request(manager, {"op": "snapshot", "session": session})
        assert snapshot["ok"] is True
        restored = handle_request(
            manager, {"op": "restore", "checkpoint": snapshot["checkpoint"]}
        )
        assert restored["ok"] is True
        assert restored["samples"] == 3
        assert restored["session"] != session

    def test_restore_rejects_garbage(self, manager):
        response = handle_request(
            manager, {"op": "restore", "checkpoint": {"version": 1}}
        )
        assert response["error"] == "bad_request"
        response = handle_request(manager, {"op": "restore", "checkpoint": 5})
        assert response["error"] == "bad_request"

    def test_snapshot_carries_negotiated_protocol(self, manager):
        session = hello(manager, protocol=1)
        snapshot = handle_request(
            manager, {"op": "snapshot", "session": session}
        )
        assert snapshot["protocol"] == 1

    def test_restore_under_explicit_id(self, manager):
        session = hello(manager)
        handle_request(
            manager,
            {
                "op": "sample",
                "session": session,
                "interval": 0,
                "mem_per_uop": 0.02,
            },
        )
        checkpoint = handle_request(
            manager, {"op": "snapshot", "session": session}
        )["checkpoint"]
        handle_request(manager, {"op": "bye", "session": session})
        restored = handle_request(
            manager,
            {"op": "restore", "session": session, "checkpoint": checkpoint},
        )
        assert restored["ok"] is True, restored
        assert restored["session"] == session
        assert restored["samples"] == 1

    def test_restore_under_live_id_rejected(self, manager):
        session = hello(manager)
        checkpoint = handle_request(
            manager, {"op": "snapshot", "session": session}
        )["checkpoint"]
        response = handle_request(
            manager,
            {"op": "restore", "session": session, "checkpoint": checkpoint},
        )
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    @pytest.mark.parametrize(
        "bad_id", ["", "-leading", "has space", "a" * 65, 7]
    )
    def test_restore_invalid_ids_rejected(self, manager, bad_id):
        session = hello(manager)
        checkpoint = handle_request(
            manager, {"op": "snapshot", "session": session}
        )["checkpoint"]
        handle_request(manager, {"op": "bye", "session": session})
        response = handle_request(
            manager,
            {"op": "restore", "session": bad_id, "checkpoint": checkpoint},
        )
        assert response["error"] == "bad_request"

    def test_restore_re_pins_the_wire_protocol(self, manager):
        # Migration path: a v1 session restored on another worker must
        # stay v1 — the batch op keeps being refused after the move.
        session = hello(manager, protocol=1)
        snapshot = handle_request(
            manager, {"op": "snapshot", "session": session}
        )
        handle_request(manager, {"op": "bye", "session": session})
        restored = handle_request(
            manager,
            {
                "op": "restore",
                "session": session,
                "protocol": snapshot["protocol"],
                "checkpoint": snapshot["checkpoint"],
            },
        )
        assert restored["ok"] is True
        batch = handle_request(
            manager,
            {
                "op": "sample_batch",
                "session": session,
                "start_interval": 0,
                "samples": [0.02, 0.02],
            },
        )
        assert batch["error"] == "unsupported_protocol"

    def test_restore_rejects_unsupported_protocol_pin(self, manager):
        session = hello(manager)
        checkpoint = handle_request(
            manager, {"op": "snapshot", "session": session}
        )["checkpoint"]
        response = handle_request(
            manager,
            {"op": "restore", "protocol": 99, "checkpoint": checkpoint},
        )
        assert response["error"] == "unsupported_protocol"


class TestStatsAndBye:
    def test_session_stats(self, manager):
        session = hello(manager)
        response = handle_request(manager, {"op": "stats", "session": session})
        assert response["stats"]["samples"] == 0

    def test_server_stats(self, manager):
        hello(manager)
        response = handle_request(manager, {"op": "stats"})
        assert response["stats"]["sessions_active"] == 1

    def test_bye_closes(self, manager):
        session = hello(manager)
        response = handle_request(manager, {"op": "bye", "session": session})
        assert response["ok"] is True
        assert manager.active_sessions == 0

    def test_bye_accepts_a_close_reason(self, manager):
        session = hello(manager)
        response = handle_request(
            manager, {"op": "bye", "session": session, "reason": "migrated"}
        )
        assert response["ok"] is True
        assert manager.active_sessions == 0

    @pytest.mark.parametrize("bad", ["", "x" * 65, 7, None])
    def test_bye_rejects_malformed_reasons(self, manager, bad):
        session = hello(manager)
        response = handle_request(
            manager, {"op": "bye", "session": session, "reason": bad}
        )
        assert response["error"] == "bad_request"
        assert manager.active_sessions == 1  # session untouched


class TestDispatch:
    def test_unknown_op(self, manager):
        response = handle_request(manager, {"op": "reboot"})
        assert response["error"] == "bad_request"

    def test_missing_op(self, manager):
        response = handle_request(manager, {})
        assert response["error"] == "bad_request"

    def test_every_request_ticks_the_logical_clock(self, manager):
        before = manager.now()
        handle_request(manager, {"op": "stats"})
        handle_request(manager, {"op": "nope"})
        assert manager.now() == before + 2

    def test_errors_counted(self, manager):
        handle_request(manager, {"op": "nope"})
        assert manager.metrics.counter("serve.errors").value == 1


class TestHandleLine:
    def test_round_trip(self, manager):
        line = handle_line(manager, json.dumps({"op": "hello"}))
        ok, payload = parse_response(line)
        assert ok and payload["session"] == "s1"

    def test_invalid_json_is_bad_request(self, manager):
        ok, payload = parse_response(handle_line(manager, "{oops"))
        assert not ok and payload["error"] == "bad_request"

    def test_non_object_is_bad_request(self, manager):
        ok, payload = parse_response(handle_line(manager, "[1,2,3]"))
        assert not ok and payload["error"] == "bad_request"

    def test_responses_are_single_lines(self, manager):
        line = handle_line(manager, json.dumps({"op": "stats"}))
        assert "\n" not in line


class TestSampleBatch:
    def _batch(self, manager, session, start, samples):
        return handle_request(
            manager,
            {
                "op": "sample_batch",
                "session": session,
                "start_interval": start,
                "samples": samples,
            },
        )

    def test_matches_n_single_samples(self, manager):
        series = [0.001, 0.02, 0.05, 0.02, 0.001, 0.06]
        single = hello(manager)
        singles = [
            handle_request(
                manager,
                {
                    "op": "sample",
                    "session": single,
                    "interval": i,
                    "mem_per_uop": value,
                },
            )
            for i, value in enumerate(series)
        ]
        batched = hello(manager)
        response = self._batch(manager, batched, 0, series)
        assert response["ok"] is True
        assert response["count"] == len(series)
        assert response["outcomes"] == [
            [
                r["interval"],
                r["phase"],
                r["predicted"],
                r["frequency_mhz"],
                r["degraded"],
                r["hit"],
            ]
            for r in singles
        ]

    def test_accepts_pair_elements(self, manager):
        session = hello(manager)
        response = self._batch(manager, session, 0, [[0.001, 1.5], 0.02])
        assert response["ok"] is True
        assert response["count"] == 2

    def test_empty_batch_is_bad_request(self, manager):
        session = hello(manager)
        response = self._batch(manager, session, 0, [])
        assert response["error"] == "bad_request"

    def test_oversized_batch_is_bad_request(self, manager):
        from repro.serve import MAX_BATCH_SAMPLES

        session = hello(manager)
        response = self._batch(
            manager, session, 0, [0.001] * (MAX_BATCH_SAMPLES + 1)
        )
        assert response["error"] == "bad_request"

    def test_malformed_elements_are_bad_request(self, manager):
        session = hello(manager)
        for bad in [["x"], [True], [[0.1, 0.2, 0.3]], [[]], [None]]:
            response = self._batch(manager, session, 0, bad)
            assert response["error"] == "bad_request", bad

    def test_rejection_is_atomic(self, manager):
        session = hello(manager)
        response = self._batch(manager, session, 0, [0.001, 0.02, -1.0])
        assert response["error"] == "bad_request"
        # The valid prefix was not applied: interval 0 is still next.
        response = self._batch(manager, session, 0, [0.001])
        assert response["ok"] is True

    def test_wrong_start_interval_is_bad_request(self, manager):
        session = hello(manager)
        response = self._batch(manager, session, 3, [0.001])
        assert response["error"] == "bad_request"

    def test_unknown_session(self, manager):
        response = self._batch(manager, "s99", 0, [0.001])
        assert response["error"] == "unknown_session"


class TestProtocolNegotiation:
    def test_v1_still_negotiable(self, manager):
        response = handle_request(manager, {"op": "hello", "protocol": 1})
        assert response["ok"] is True
        assert response["protocol"] == 1

    def test_v1_session_cannot_sample_batch(self, manager):
        session = hello(manager, protocol=1)
        response = handle_request(
            manager,
            {
                "op": "sample_batch",
                "session": session,
                "start_interval": 0,
                "samples": [0.001],
            },
        )
        assert response["ok"] is False
        assert response["error"] == "unsupported_protocol"

    def test_v1_session_still_samples(self, manager):
        session = hello(manager, protocol=1)
        response = handle_request(
            manager,
            {
                "op": "sample",
                "session": session,
                "interval": 0,
                "mem_per_uop": 0.001,
            },
        )
        assert response["ok"] is True

    def test_non_integer_protocol_rejected(self, manager):
        for version in (1.0, "2", True, None):
            response = handle_request(
                manager, {"op": "hello", "protocol": version}
            )
            assert response["error"] == "unsupported_protocol", version


class TestIdleSweepOnRequestCadence:
    """Regression: idle eviction must fire under steady-state traffic.

    Before the sweep moved into handle_request, evict_idle() only ran
    from _reserve_slot(), so with constant traffic to live sessions and
    no new opens an abandoned session was never evicted.
    """

    def test_abandoned_session_evicted_without_new_open(self):
        manager = SessionManager(max_sessions=4, idle_timeout_s=5)
        busy = hello(manager)
        idle = hello(manager)
        assert manager.active_sessions == 2
        # Drive only the busy session past the idle timeout — no hello,
        # no restore, just steady sample traffic.
        for i in range(10):
            response = handle_request(
                manager,
                {
                    "op": "sample",
                    "session": busy,
                    "interval": i,
                    "mem_per_uop": 0.001,
                },
            )
            assert response["ok"] is True
        assert manager.active_sessions == 1
        response = handle_request(
            manager,
            {"op": "sample", "session": idle, "interval": 0, "mem_per_uop": 0.1},
        )
        assert response["error"] == "unknown_session"
