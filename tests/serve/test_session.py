"""PhaseSession: the online classify/observe/predict loop."""

import pytest

from repro.core.predictors import PhasePredictor
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingBufferTracer
from repro.serve import SESSION_GOVERNORS, PhaseSession, SessionConfig


class FakeClock:
    """Scripted time source: returns queued values, then the last one."""

    def __init__(self, values):
        self._values = list(values)

    def __call__(self):
        if len(self._values) > 1:
            return self._values.pop(0)
        return self._values[0]


class TestSessionConfig:
    def test_defaults_match_paper_deployment(self):
        config = SessionConfig()
        assert config.governor == "gpht"
        assert config.policy == "table2"
        assert config.gphr_depth == 8
        assert config.pht_entries == 128

    def test_unknown_governor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown session governor"):
            SessionConfig(governor="oracle")

    def test_nonpositive_latency_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="latency budget"):
            SessionConfig(latency_budget_s=0.0)

    def test_payload_round_trip(self):
        config = SessionConfig(
            governor="fixed_window", window_size=4, latency_budget_s=0.5
        )
        assert SessionConfig.from_payload(config.to_payload()) == config

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown session config"):
            SessionConfig.from_payload({"governor": "gpht", "depth": 3})

    def test_from_payload_rejects_wrong_types(self):
        with pytest.raises(ConfigurationError, match="gphr_depth"):
            SessionConfig.from_payload({"gphr_depth": "8"})

    @pytest.mark.parametrize("governor", SESSION_GOVERNORS)
    def test_build_predictor_for_every_governor(self, governor):
        predictor = SessionConfig(governor=governor).build_predictor()
        assert isinstance(predictor, PhasePredictor)


class TestFeed:
    def test_first_sample_has_no_hit(self):
        session = PhaseSession()
        outcome = session.feed(0, 0.001)
        assert outcome.hit is None
        assert outcome.interval == 0
        assert session.samples == 1
        assert session.scored == 0

    def test_out_of_order_sample_rejected(self):
        session = PhaseSession()
        session.feed(0, 0.001)
        with pytest.raises(ConfigurationError, match="out-of-order"):
            session.feed(2, 0.001)
        with pytest.raises(ConfigurationError, match="out-of-order"):
            session.feed(0, 0.001)

    def test_negative_metric_rejected(self):
        session = PhaseSession()
        with pytest.raises(ConfigurationError, match=">= 0"):
            session.feed(0, -0.1)

    def test_hits_scored_against_next_actual(self):
        # A constant series: from the second sample on, last-value-style
        # prediction is always right.
        session = PhaseSession(SessionConfig(governor="reactive"))
        outcomes = [session.feed(i, 0.001) for i in range(5)]
        assert outcomes[0].hit is None
        assert all(outcome.hit is True for outcome in outcomes[1:])
        assert session.scored == 4
        assert session.correct == 4
        assert session.accuracy == 1.0

    def test_accuracy_defaults_to_one_before_scoring(self):
        assert PhaseSession().accuracy == 1.0

    def test_recommended_frequency_tracks_predicted_phase(self):
        session = PhaseSession(SessionConfig(governor="reactive"))
        low = session.feed(0, 0.001)  # phase 1 -> fastest point
        high = session.feed(1, 0.05)  # deep-memory phase -> slowest point
        assert low.frequency_mhz > high.frequency_mhz

    def test_samples_counted_in_metrics(self):
        metrics = MetricsRegistry()
        session = PhaseSession(metrics=metrics)
        session.feed(0, 0.001)
        session.feed(1, 0.001)
        assert metrics.counter("serve.samples").value == 2.0


class TestPredict:
    def test_cold_start_is_default_phase(self):
        predicted, frequency_mhz = PhaseSession().predict()
        assert predicted == PhasePredictor.DEFAULT_PHASE
        assert frequency_mhz > 0

    def test_predict_does_not_advance_the_session(self):
        session = PhaseSession()
        outcome = session.feed(0, 0.001)
        before = session.samples
        predicted, _ = session.predict()
        assert predicted == outcome.predicted_phase
        assert session.samples == before


class TestDegradation:
    def _session(self, latencies, budget=1.0, cooldown=2, tracer=None):
        # feed() reads the clock twice, so each sample consumes a
        # (start, end) pair: latency k = values[2k+1] - values[2k].
        ticks = []
        t = 0.0
        for latency in latencies:
            ticks.extend([t, t + latency])
            t += latency + 1.0
        return PhaseSession(
            SessionConfig(latency_budget_s=budget, cooldown=cooldown),
            clock=FakeClock(ticks or [0.0]),
            tracer=tracer if tracer is not None else RingBufferTracer(),
        )

    def test_stays_normal_within_budget(self):
        session = self._session([0.1, 0.2, 0.3])
        for i in range(3):
            assert not session.feed(i, 0.001).degraded
        assert session.degraded_events == 0

    def test_overrun_enters_degraded_mode(self):
        session = self._session([0.1, 5.0, 0.1])
        assert not session.feed(0, 0.001).degraded
        # The overrunning sample itself was served normally; degradation
        # applies from the next sample on.
        assert not session.feed(1, 0.001).degraded
        assert session.degraded
        assert session.degraded_events == 1
        assert session.feed(2, 0.001).degraded

    def test_cooldown_restores_normal_mode(self):
        session = self._session([5.0, 0.1, 0.1, 0.1], cooldown=2)
        session.feed(0, 0.001)
        assert session.degraded
        session.feed(1, 0.001)
        assert session.degraded  # one in-budget sample is not enough
        session.feed(2, 0.001)
        assert not session.degraded  # cooldown=2 reached
        assert session.feed(3, 0.001).degraded is False

    def test_overrun_mid_cooldown_resets_the_streak(self):
        session = self._session([5.0, 0.1, 5.0, 0.1, 0.1, 0.1], cooldown=3)
        for i in range(5):
            session.feed(i, 0.001)
        # Streak was broken by the overrun at sample 2: only samples 3-4
        # count, so cooldown=3 is not yet reached.
        assert session.degraded
        session.feed(5, 0.001)
        assert not session.degraded

    def test_degraded_mode_predicts_last_value(self):
        session = self._session([5.0, 0.1, 0.1], cooldown=99)
        session.feed(0, 0.001)
        outcome = session.feed(1, 0.05)
        assert session.degraded
        assert outcome.predicted_phase == outcome.actual_phase

    def test_degradation_events_traced(self):
        tracer = RingBufferTracer()
        session = self._session([5.0], tracer=tracer)
        session.feed(0, 0.001)
        kinds = [type(event).__name__ for event in tracer.events()]
        assert "SessionDegraded" in kinds

    def test_no_clock_means_no_degradation(self):
        session = PhaseSession(SessionConfig(latency_budget_s=1e-12))
        for i in range(10):
            assert not session.feed(i, 0.001).degraded


class TestStats:
    def test_stats_payload_is_json_scalars(self):
        session = PhaseSession(session_id="s9")
        session.feed(0, 0.001)
        stats = session.stats()
        assert stats["session"] == "s9"
        assert stats["samples"] == 1
        assert all(
            value is None or isinstance(value, (str, int, float, bool))
            for value in stats.values()
        )
