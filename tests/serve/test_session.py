"""PhaseSession: the online classify/observe/predict loop."""

import pytest

from repro.core.predictors import PhasePredictor
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingBufferTracer
from repro.serve import SESSION_GOVERNORS, PhaseSession, SessionConfig


class FakeClock:
    """Scripted time source: returns queued values, then the last one."""

    def __init__(self, values):
        self._values = list(values)

    def __call__(self):
        if len(self._values) > 1:
            return self._values.pop(0)
        return self._values[0]


class TestSessionConfig:
    def test_defaults_match_paper_deployment(self):
        config = SessionConfig()
        assert config.governor == "gpht"
        assert config.policy == "table2"
        assert config.gphr_depth == 8
        assert config.pht_entries == 128

    def test_unknown_governor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown session governor"):
            SessionConfig(governor="oracle")

    def test_nonpositive_latency_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="latency budget"):
            SessionConfig(latency_budget_s=0.0)

    def test_payload_round_trip(self):
        config = SessionConfig(
            governor="fixed_window", window_size=4, latency_budget_s=0.5
        )
        assert SessionConfig.from_payload(config.to_payload()) == config

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown session config"):
            SessionConfig.from_payload({"governor": "gpht", "depth": 3})

    def test_from_payload_rejects_wrong_types(self):
        with pytest.raises(ConfigurationError, match="gphr_depth"):
            SessionConfig.from_payload({"gphr_depth": "8"})

    @pytest.mark.parametrize("governor", SESSION_GOVERNORS)
    def test_build_predictor_for_every_governor(self, governor):
        predictor = SessionConfig(governor=governor).build_predictor()
        assert isinstance(predictor, PhasePredictor)


class TestFeed:
    def test_first_sample_has_no_hit(self):
        session = PhaseSession()
        outcome = session.feed(0, 0.001)
        assert outcome.hit is None
        assert outcome.interval == 0
        assert session.samples == 1
        assert session.scored == 0

    def test_out_of_order_sample_rejected(self):
        session = PhaseSession()
        session.feed(0, 0.001)
        with pytest.raises(ConfigurationError, match="out-of-order"):
            session.feed(2, 0.001)
        with pytest.raises(ConfigurationError, match="out-of-order"):
            session.feed(0, 0.001)

    def test_negative_metric_rejected(self):
        session = PhaseSession()
        with pytest.raises(ConfigurationError, match=">= 0"):
            session.feed(0, -0.1)

    def test_hits_scored_against_next_actual(self):
        # A constant series: from the second sample on, last-value-style
        # prediction is always right.
        session = PhaseSession(SessionConfig(governor="reactive"))
        outcomes = [session.feed(i, 0.001) for i in range(5)]
        assert outcomes[0].hit is None
        assert all(outcome.hit is True for outcome in outcomes[1:])
        assert session.scored == 4
        assert session.correct == 4
        assert session.accuracy == 1.0

    def test_accuracy_defaults_to_one_before_scoring(self):
        assert PhaseSession().accuracy == 1.0

    def test_recommended_frequency_tracks_predicted_phase(self):
        session = PhaseSession(SessionConfig(governor="reactive"))
        low = session.feed(0, 0.001)  # phase 1 -> fastest point
        high = session.feed(1, 0.05)  # deep-memory phase -> slowest point
        assert low.frequency_mhz > high.frequency_mhz

    def test_samples_counted_in_metrics(self):
        metrics = MetricsRegistry()
        session = PhaseSession(metrics=metrics)
        session.feed(0, 0.001)
        session.feed(1, 0.001)
        assert metrics.counter("serve.samples").value == 2.0


class TestPredict:
    def test_cold_start_is_default_phase(self):
        predicted, frequency_mhz = PhaseSession().predict()
        assert predicted == PhasePredictor.DEFAULT_PHASE
        assert frequency_mhz > 0

    def test_predict_does_not_advance_the_session(self):
        session = PhaseSession()
        outcome = session.feed(0, 0.001)
        before = session.samples
        predicted, _ = session.predict()
        assert predicted == outcome.predicted_phase
        assert session.samples == before


class TestDegradation:
    def _session(self, latencies, budget=1.0, cooldown=2, tracer=None):
        # feed() reads the clock twice, so each sample consumes a
        # (start, end) pair: latency k = values[2k+1] - values[2k].
        ticks = []
        t = 0.0
        for latency in latencies:
            ticks.extend([t, t + latency])
            t += latency + 1.0
        return PhaseSession(
            SessionConfig(latency_budget_s=budget, cooldown=cooldown),
            clock=FakeClock(ticks or [0.0]),
            tracer=tracer if tracer is not None else RingBufferTracer(),
        )

    def test_stays_normal_within_budget(self):
        session = self._session([0.1, 0.2, 0.3])
        for i in range(3):
            assert not session.feed(i, 0.001).degraded
        assert session.degraded_events == 0

    def test_overrun_enters_degraded_mode(self):
        session = self._session([0.1, 5.0, 0.1])
        assert not session.feed(0, 0.001).degraded
        # The overrunning sample itself was served normally; degradation
        # applies from the next sample on.
        assert not session.feed(1, 0.001).degraded
        assert session.degraded
        assert session.degraded_events == 1
        assert session.feed(2, 0.001).degraded

    def test_cooldown_restores_normal_mode(self):
        session = self._session([5.0, 0.1, 0.1, 0.1], cooldown=2)
        session.feed(0, 0.001)
        assert session.degraded
        session.feed(1, 0.001)
        assert session.degraded  # one in-budget sample is not enough
        session.feed(2, 0.001)
        assert not session.degraded  # cooldown=2 reached
        assert session.feed(3, 0.001).degraded is False

    def test_overrun_mid_cooldown_resets_the_streak(self):
        session = self._session([5.0, 0.1, 5.0, 0.1, 0.1, 0.1], cooldown=3)
        for i in range(5):
            session.feed(i, 0.001)
        # Streak was broken by the overrun at sample 2: only samples 3-4
        # count, so cooldown=3 is not yet reached.
        assert session.degraded
        session.feed(5, 0.001)
        assert not session.degraded

    def test_degraded_mode_predicts_last_value(self):
        session = self._session([5.0, 0.1, 0.1], cooldown=99)
        session.feed(0, 0.001)
        outcome = session.feed(1, 0.05)
        assert session.degraded
        assert outcome.predicted_phase == outcome.actual_phase

    def test_degradation_events_traced(self):
        tracer = RingBufferTracer()
        session = self._session([5.0], tracer=tracer)
        session.feed(0, 0.001)
        kinds = [type(event).__name__ for event in tracer.events()]
        assert "SessionDegraded" in kinds

    def test_no_clock_means_no_degradation(self):
        session = PhaseSession(SessionConfig(latency_budget_s=1e-12))
        for i in range(10):
            assert not session.feed(i, 0.001).degraded


class TestStats:
    def test_stats_payload_is_json_scalars(self):
        session = PhaseSession(session_id="s9")
        session.feed(0, 0.001)
        stats = session.stats()
        assert stats["session"] == "s9"
        assert stats["samples"] == 1
        assert all(
            value is None or isinstance(value, (str, int, float, bool))
            for value in stats.values()
        )


class TestFeedBatch:
    def test_matches_single_feeds(self):
        series = [0.001, 0.001, 0.02, 0.05, 0.02, 0.001, 0.06, 0.06]
        single = PhaseSession()
        expected = [single.feed(i, value) for i, value in enumerate(series)]
        batched = PhaseSession()
        outcomes = batched.feed_batch(0, [(value, 0.0) for value in series])
        assert outcomes == expected
        assert batched.samples == single.samples
        assert batched.scored == single.scored
        assert batched.correct == single.correct

    def test_accepts_continuation_batches(self):
        session = PhaseSession()
        session.feed_batch(0, [(0.001, 0.0), (0.02, 0.0)])
        outcomes = session.feed_batch(2, [(0.05, 0.0)])
        assert outcomes[0].interval == 2
        assert session.samples == 3

    def test_empty_batch_is_a_noop(self):
        session = PhaseSession()
        assert session.feed_batch(0, []) == []
        assert session.samples == 0

    def test_validation_is_atomic(self):
        session = PhaseSession()
        session.feed(0, 0.001)
        with pytest.raises(ConfigurationError, match="out-of-order"):
            session.feed_batch(5, [(0.001, 0.0)])
        with pytest.raises(ConfigurationError, match=">= 0"):
            session.feed_batch(1, [(0.001, 0.0), (-0.5, 0.0)])
        # The valid prefix of the rejected batch was NOT applied.
        assert session.samples == 1

    def test_per_batch_metrics(self):
        metrics = MetricsRegistry()
        session = PhaseSession(metrics=metrics)
        session.feed_batch(0, [(0.001, 0.0)] * 5)
        assert metrics.counter("serve.samples").value == 5
        batch_size = metrics.histogram("serve.batch_size")
        assert batch_size.count == 1
        assert batch_size.max == 5.0

    def test_one_latency_observation_per_batch(self):
        metrics = MetricsRegistry()
        session = PhaseSession(
            metrics=metrics, clock=FakeClock([0.0, 0.25])
        )
        session.feed_batch(0, [(0.001, 0.0)] * 4)
        latency = metrics.histogram("serve.sample_latency_s")
        assert latency.count == 1
        assert latency.total == pytest.approx(0.25)

    def test_degradation_transitions_match_single_feeds(self):
        # With a latency budget the state machine must run per sample:
        # the same scripted clock drives a batch and N single feeds to
        # identical outcomes, including mid-batch degradation entry.
        def ticks(latencies):
            values, t = [], 0.0
            for latency in latencies:
                values.extend([t, t + latency])
                t += latency + 1.0
            return values

        latencies = [0.1, 5.0, 0.1, 0.1, 0.1]
        series = [0.001, 0.02, 0.05, 0.02, 0.001]
        config = SessionConfig(latency_budget_s=1.0, cooldown=2)
        single = PhaseSession(config, clock=FakeClock(ticks(latencies)))
        expected = [single.feed(i, value) for i, value in enumerate(series)]
        batched = PhaseSession(config, clock=FakeClock(ticks(latencies)))
        outcomes = batched.feed_batch(0, [(value, 0.0) for value in series])
        assert outcomes == expected
        assert [outcome.degraded for outcome in outcomes] == [
            outcome.degraded for outcome in expected
        ]
        assert batched.degraded == single.degraded
        assert batched.degraded_events == single.degraded_events
        assert batched.snapshot() == single.snapshot()


class TestDegradedAccounting:
    """Degraded-mode predictions must not pollute the normal hit rate."""

    def _degraded_session(self, latencies, **kwargs):
        ticks, t = [], 0.0
        for latency in latencies:
            ticks.extend([t, t + latency])
            t += latency + 1.0
        return PhaseSession(
            SessionConfig(latency_budget_s=1.0, cooldown=99, **kwargs),
            clock=FakeClock(ticks or [0.0]),
        )

    def test_degraded_hits_scored_separately(self):
        # Sample 0 overruns: predictions made from sample 1 on are
        # degraded last-value guesses.  Only prediction 0 (made in
        # normal mode, scored at sample 1) may count toward `scored`.
        session = self._degraded_session([5.0, 0.1, 0.1, 0.1, 0.1])
        for i in range(5):
            session.feed(i, 0.001)
        assert session.scored == 1
        assert session.degraded_scored == 3
        assert session.scored + session.degraded_scored == 4

    def test_degraded_accuracy_exposed(self):
        session = self._degraded_session([5.0, 0.1, 0.1])
        for i in range(3):
            session.feed(i, 0.001)
        assert session.degraded_accuracy == 1.0
        stats = session.stats()
        assert stats["degraded_scored"] == session.degraded_scored
        assert stats["degraded_correct"] == session.degraded_correct
        assert stats["degraded_accuracy"] == session.degraded_accuracy

    def test_counters_survive_checkpoint(self):
        session = self._degraded_session([5.0, 0.1, 0.1, 0.1])
        for i in range(4):
            session.feed(i, 0.001)
        restored = PhaseSession.from_snapshot(session.snapshot())
        assert restored.degraded_scored == session.degraded_scored
        assert restored.degraded_correct == session.degraded_correct
        assert restored.scored == session.scored

    def test_normal_only_session_has_no_degraded_counts(self):
        session = PhaseSession()
        for i in range(5):
            session.feed(i, 0.001)
        assert session.degraded_scored == 0
        assert session.degraded_correct == 0
        assert session.degraded_accuracy == 1.0
