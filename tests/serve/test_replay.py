"""Trace replay: the online service must reproduce the offline evaluator."""

import json

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.cli import main
from repro.core.phases import PhaseTable
from repro.errors import ConfigurationError
from repro.obs.events import CellStarted, IntervalSampled
from repro.serve import (
    SessionConfig,
    extract_samples,
    load_trace,
    replay_trace,
)

TABLE = PhaseTable()


def sampled_events(series, start_interval=0):
    """Build interval_sampled events carrying the given Mem/Uop series."""
    return tuple(
        IntervalSampled(
            interval=start_interval + index,
            time_s=float(index),
            uops=100_000_000,
            mem_transactions=int(value * 100_000_000),
            instructions=80_000_000,
            tsc_cycles=90_000_000,
            mem_per_uop=value,
            upc=1.1,
            frequency_mhz=1500.0,
        )
        for index, value in enumerate(series)
    )


SERIES = [0.001, 0.02, 0.001, 0.05, 0.02, 0.001, 0.02, 0.05, 0.001, 0.02] * 6


class TestExtractSamples:
    def test_lifts_samples_in_order(self):
        samples = extract_samples(sampled_events(SERIES[:5], start_interval=10))
        assert [s.trace_interval for s in samples] == [10, 11, 12, 13, 14]
        assert [s.mem_per_uop for s in samples] == SERIES[:5]

    def test_ignores_other_event_types(self):
        events = sampled_events(SERIES[:3]) + (
            CellStarted(interval=0, label="x", kind="comparison", benchmark="b"),
        )
        assert len(extract_samples(events)) == 3

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="interval_sampled"):
            extract_samples(())


class TestReplayTrace:
    @pytest.mark.parametrize("governor", ["gpht", "reactive", "fixed_window"])
    def test_replay_matches_offline_evaluator(self, governor):
        config = SessionConfig(governor=governor)
        report = replay_trace(sampled_events(SERIES), config)
        offline = evaluate_predictor(config.build_predictor(), SERIES, TABLE)
        assert report.matches_offline
        assert report.online_predictions == offline.predictions
        assert report.actuals == offline.actuals
        assert report.accuracy == offline.accuracy

    @pytest.mark.parametrize("snapshot_at", [1, 17, 30, 59])
    def test_mid_stream_snapshot_changes_nothing(self, snapshot_at):
        straight = replay_trace(sampled_events(SERIES))
        resumed = replay_trace(
            sampled_events(SERIES), snapshot_at=snapshot_at
        )
        assert resumed.matches_offline
        assert resumed.online_predictions == straight.online_predictions

    def test_out_of_range_snapshot_rejected(self):
        events = sampled_events(SERIES[:5])
        with pytest.raises(ConfigurationError, match="snapshot_at"):
            replay_trace(events, snapshot_at=0)
        with pytest.raises(ConfigurationError, match="snapshot_at"):
            replay_trace(events, snapshot_at=5)

    def test_report_payload_is_json_able(self):
        payload = replay_trace(sampled_events(SERIES[:10])).to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["matches_offline"] is True


class TestLoadTrace:
    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_trace(tmp_path / "nope.jsonl")


class TestReplayCLI:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("replay") / "trace.jsonl"
        code = main(
            [
                "trace",
                "record",
                "applu_in",
                "--intervals",
                "80",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        return out

    def test_replay_reproduces_recorded_run(self, trace_file, capsys):
        assert main(["serve", "replay", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "matches offline evaluator" in out
        assert "yes" in out

    def test_replay_with_snapshot_restore(self, trace_file, capsys):
        code = main(
            [
                "serve",
                "replay",
                str(trace_file),
                "--snapshot-at",
                "40",
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches_offline"] is True
        assert payload["snapshot_at"] == 40

    def test_replay_other_governors(self, trace_file):
        # The trace was recorded under the GPHT; replaying another
        # governor still matches *its* offline evaluator (the phase
        # cross-check passes because classification is governor-free).
        assert main(
            ["serve", "replay", str(trace_file), "--governor", "reactive"]
        ) == 0

    def test_missing_trace_exits_2(self, capsys):
        assert main(["serve", "replay", "/nonexistent/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_record_creates_parent_directories(self, tmp_path):
        # Satellite fix: --out into a missing directory tree must work
        # instead of dying with FileNotFoundError.
        out = tmp_path / "deep" / "nested" / "dir" / "trace.jsonl"
        code = main(
            [
                "trace",
                "record",
                "ammp_in",
                "--intervals",
                "10",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_trace_export_creates_parent_directories(self, trace_file, tmp_path):
        out = tmp_path / "made" / "up" / "trace.csv"
        code = main(["trace", "export", str(trace_file), "--out", str(out)])
        assert code == 0
        assert out.read_text().startswith("event,")

    def test_unwritable_out_is_a_clean_error(self, trace_file, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        out = blocker / "trace.csv"  # parent is a file: mkdir fails
        assert main(["trace", "export", str(trace_file), "--out", str(out)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestReplayCLIErrorHandling:
    """Satellite fix: every bad trace file is one clean error line.

    A binary/undecodable trace used to escape ``load_trace`` as a raw
    ``UnicodeDecodeError`` stack trace (only ``OSError`` was caught);
    missing files and sample-free traces must keep their existing clean
    one-line behaviour.
    """

    def _run(self, capsys, path):
        code = main(["serve", "replay", str(path)])
        return code, capsys.readouterr().err

    def test_undecodable_trace_is_one_clean_error_line(self, capsys, tmp_path):
        bad = tmp_path / "binary.jsonl"
        bad.write_bytes(b"\xff\xfe\x00binary garbage\x00")
        code, err = self._run(capsys, bad)
        assert code == 2
        assert err.startswith("error:")
        assert "cannot read trace" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_trace_is_one_clean_error_line(self, capsys, tmp_path):
        code, err = self._run(capsys, tmp_path / "absent.jsonl")
        assert code == 2
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_sample_free_trace_is_one_clean_error_line(self, capsys, tmp_path):
        empty = tmp_path / "no_samples.jsonl"
        empty.write_text(
            json.dumps(CellStarted(
                interval=0, label="x", kind="run", benchmark="applu_in"
            ).to_dict()) + "\n",
            encoding="utf-8",
        )
        code, err = self._run(capsys, empty)
        assert code == 2
        assert err.startswith("error:")
        assert "no interval_sampled events" in err
        assert len(err.strip().splitlines()) == 1
