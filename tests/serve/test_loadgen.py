"""Deterministic load generator: series, digests, chaos, end-to-end runs."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    ChaosEvent,
    ChaosSchedule,
    ShardedServer,
    generate_series,
    run_loadgen,
)
from repro.serve.loadgen import parse_chaos_event


class TestGenerateSeries:
    def test_deterministic_per_seed(self):
        assert generate_series(100, seed=7) == generate_series(100, seed=7)
        assert generate_series(100, seed=7) != generate_series(100, seed=8)

    def test_exact_length(self):
        for n in (0, 1, 5, 100):
            assert len(generate_series(n)) == n

    def test_values_are_valid_mem_per_uop(self):
        assert all(0 <= value < 0.1 for value in generate_series(500))

    def test_has_plateaus(self):
        series = generate_series(200, seed=0)
        runs = sum(
            1 for a, b in zip(series, series[1:]) if a == b
        )
        assert runs > 100  # phase-like, not noise

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError, match="length"):
            generate_series(-1)


class TestValidation:
    def test_v1_cannot_batch(self):
        with pytest.raises(ConfigurationError, match="protocol v1"):
            run_loadgen("127.0.0.1", 1, batch_size=4, protocol=1)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="protocol"):
            run_loadgen("127.0.0.1", 1, protocol=9)

    def test_nonpositive_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="sessions"):
            run_loadgen("127.0.0.1", 1, sessions=0)
        with pytest.raises(ConfigurationError, match="batch_size"):
            run_loadgen("127.0.0.1", 1, batch_size=0)

    def test_chaos_requires_verify_mode(self):
        chaos = ChaosSchedule(lambda worker: None, [ChaosEvent(1, 0)])
        with pytest.raises(ConfigurationError, match="verify"):
            run_loadgen("127.0.0.1", 1, chaos=chaos, verify=False)

    def test_recovery_knobs_validated(self):
        with pytest.raises(ConfigurationError, match="recovery_attempts"):
            run_loadgen("127.0.0.1", 1, recovery_attempts=0)
        with pytest.raises(ConfigurationError, match="recovery_delay_s"):
            run_loadgen("127.0.0.1", 1, recovery_delay_s=-1.0)


class TestChaosSchedule:
    def test_fires_at_exact_request_counts(self):
        killed = []
        schedule = ChaosSchedule(
            killed.append, [ChaosEvent(5, 1), ChaosEvent(2, 0)]
        )
        for expected in ([], [0], [0], [0], [0, 1], [0, 1]):
            schedule.note_request()
            assert killed == expected
        assert schedule.requests == 6
        assert [e.worker for e in schedule.fired] == [0, 1]
        assert schedule.pending == ()

    def test_each_event_fires_once(self):
        killed = []
        schedule = ChaosSchedule(killed.append, [ChaosEvent(1, 0)])
        for _ in range(10):
            schedule.note_request()
        assert killed == [0]

    def test_event_validation(self):
        with pytest.raises(ConfigurationError, match="after_requests"):
            ChaosEvent(0, 0)
        with pytest.raises(ConfigurationError, match="worker"):
            ChaosEvent(1, -1)


class TestParseChaosEvent:
    def test_parses_requests_and_worker(self):
        assert parse_chaos_event("40:1") == ChaosEvent(40, 1)

    @pytest.mark.parametrize("spec", ["", "40", "40:1:2", "a:b", "4.5:0"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="chaos event"):
            parse_chaos_event(spec)


@pytest.fixture(scope="module")
def sharded():
    server = ShardedServer(workers=2, max_sessions=8)
    port = server.start()
    yield port
    server.stop()


class TestRunLoadgen:
    def test_clean_run_no_errors(self, sharded):
        result = run_loadgen(
            "127.0.0.1",
            sharded,
            sessions=4,
            samples_per_session=96,
            batch_size=16,
            connections=2,
        )
        assert result.errors == 0
        assert result.samples == 4 * 96
        assert result.elapsed_s > 0
        assert result.samples_per_s > 0

    def test_digest_independent_of_batch_size(self, sharded):
        kwargs = dict(sessions=3, samples_per_session=80, connections=2)
        batched = run_loadgen(
            "127.0.0.1", sharded, batch_size=8, **kwargs
        )
        single = run_loadgen(
            "127.0.0.1", sharded, batch_size=1, **kwargs
        )
        v1 = run_loadgen(
            "127.0.0.1", sharded, batch_size=1, protocol=1, **kwargs
        )
        assert batched.errors == single.errors == v1.errors == 0
        assert batched.outcome_digest == single.outcome_digest
        assert batched.outcome_digest == v1.outcome_digest

    def test_digest_independent_of_connection_count(self, sharded):
        kwargs = dict(sessions=4, samples_per_session=64, batch_size=16)
        wide = run_loadgen("127.0.0.1", sharded, connections=4, **kwargs)
        narrow = run_loadgen("127.0.0.1", sharded, connections=1, **kwargs)
        assert wide.outcome_digest == narrow.outcome_digest

    def test_seed_changes_digest(self, sharded):
        kwargs = dict(sessions=2, samples_per_session=64, batch_size=16)
        a = run_loadgen("127.0.0.1", sharded, seed=0, **kwargs)
        b = run_loadgen("127.0.0.1", sharded, seed=1, **kwargs)
        assert a.outcome_digest != b.outcome_digest

    def test_payload_is_json_scalars(self, sharded):
        result = run_loadgen(
            "127.0.0.1",
            sharded,
            sessions=1,
            samples_per_session=32,
            batch_size=8,
            connections=1,
        )
        payload = result.to_payload()
        assert payload["samples"] == 32
        assert all(
            isinstance(value, (str, int, float, bool))
            for value in payload.values()
        )
