"""Sharded multi-worker server: routing, aggregation, failure isolation."""

import json
import socket

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.serve import (
    ShardedServer,
    aggregate_stats,
    handle_request,
    merge_metrics,
    mint_shard_session_id,
    shard_for,
    worker_ceilings,
)
from repro.serve.manager import SessionManager


class TestShardFor:
    def test_stable_across_calls(self):
        assert shard_for("s1", 4) == shard_for("s1", 4)

    def test_known_values_pinned(self):
        # The mapping is part of the wire contract (state never
        # migrates), so pin concrete values: any change breaks every
        # deployed topology.
        assert shard_for("s1", 2) == 0
        assert shard_for("s2", 2) == 0
        assert shard_for("s3", 2) == 0
        assert shard_for("s1x1", 2) == 1

    def test_in_range_and_reasonably_balanced(self):
        workers = 4
        counts = [0] * workers
        for i in range(1000):
            counts[shard_for(f"s{i}", workers)] += 1
        assert all(count > 100 for count in counts)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            shard_for("s1", 0)


class TestMintShardSessionId:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 7])
    def test_minted_ids_hash_home(self, workers):
        for shard in range(workers):
            for seq in range(1, 20):
                minted = mint_shard_session_id(seq, shard, workers)
                assert shard_for(minted, workers) == shard

    def test_single_worker_keeps_plain_ids(self):
        assert mint_shard_session_id(1, 0, 1) == "s1"
        assert mint_shard_session_id(7, 0, 1) == "s7"

    def test_distinct_within_a_shard(self):
        minted = {mint_shard_session_id(seq, 1, 4) for seq in range(1, 50)}
        assert len(minted) == 49

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ConfigurationError, match="shard"):
            mint_shard_session_id(1, 2, 2)


class TestWorkerCeilings:
    def test_sums_to_global(self):
        assert sum(worker_ceilings(64, 4)) == 64
        assert sum(worker_ceilings(10, 3)) == 10

    def test_remainder_spread_evenly(self):
        assert worker_ceilings(10, 3) == [4, 3, 3]

    def test_rejects_too_small_global(self):
        with pytest.raises(ConfigurationError, match="max_sessions"):
            worker_ceilings(3, 4)


class TestMergeMetrics:
    def test_counters_and_gauges_sum(self):
        merged = merge_metrics(
            [
                {"c": {"kind": "counter", "value": 2.0},
                 "g": {"kind": "gauge", "value": 1.0}},
                {"c": {"kind": "counter", "value": 3.0},
                 "g": {"kind": "gauge", "value": 4.0}},
            ]
        )
        assert merged["c"]["value"] == 5.0
        assert merged["g"]["value"] == 5.0

    def test_histograms_pool(self):
        merged = merge_metrics(
            [
                {"h": {"kind": "histogram", "count": 2.0, "total": 3.0,
                       "min": 1.0, "max": 2.0, "mean": 1.5}},
                {"h": {"kind": "histogram", "count": 1.0, "total": 5.0,
                       "min": 5.0, "max": 5.0, "mean": 5.0}},
            ]
        )
        assert merged["h"] == {
            "kind": "histogram",
            "count": 3.0,
            "total": 8.0,
            "min": 1.0,
            "max": 5.0,
            "mean": pytest.approx(8.0 / 3.0),
        }

    def test_empty_histogram_does_not_poison_min(self):
        # to_dict() reports min/max as 0.0 for empty histograms; that
        # sentinel must not survive the merge as a fake observation.
        merged = merge_metrics(
            [
                {"h": {"kind": "histogram", "count": 0.0, "total": 0.0,
                       "min": 0.0, "max": 0.0, "mean": 0.0}},
                {"h": {"kind": "histogram", "count": 2.0, "total": 6.0,
                       "min": 2.0, "max": 4.0, "mean": 3.0}},
            ]
        )
        assert merged["h"]["min"] == 2.0

    def test_conflicting_kinds_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            merge_metrics(
                [
                    {"x": {"kind": "counter", "value": 1.0}},
                    {"x": {"kind": "gauge", "value": 1.0}},
                ]
            )


class TestAggregateStats:
    def _worker_stats(self, manager):
        return handle_request(manager, {"op": "stats"})["stats"]

    def test_sums_real_worker_payloads(self):
        managers = [SessionManager(max_sessions=3) for _ in range(2)]
        for manager in managers:
            handle_request(manager, {"op": "hello"})
        merged = aggregate_stats([self._worker_stats(m) for m in managers])
        assert merged["workers"] == 2
        assert merged["workers_alive"] == 2
        assert merged["sessions_active"] == 2
        assert merged["max_sessions"] == 6
        assert merged["metrics"]["serve.sessions_opened"]["value"] == 2.0

    def test_dead_workers_keep_their_slot(self):
        manager = SessionManager(max_sessions=3)
        merged = aggregate_stats([None, self._worker_stats(manager)])
        assert merged["workers"] == 2
        assert merged["workers_alive"] == 1
        assert merged["per_worker"][0] is None
        assert merged["per_worker"][1] is not None


class _Client:
    """Blocking line client for end-to-end router tests."""

    def __init__(self, port):
        self._sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, **request):
        self._file.write(json.dumps(request) + "\n")
        self._file.flush()
        return json.loads(self._file.readline())

    def close(self):
        self._sock.close()


@pytest.fixture(scope="module")
def sharded():
    server = ShardedServer(workers=2, max_sessions=8)
    port = server.start()
    yield server, port
    server.stop()


class TestShardedServerEndToEnd:
    def test_sessions_distribute_and_hash_home(self, sharded):
        server, port = sharded
        client = _Client(port)
        try:
            sessions = [client.rpc(op="hello")["session"] for _ in range(4)]
            shards = {shard_for(session, 2) for session in sessions}
            assert shards == {0, 1}  # round-robin hit both workers
            for session in sessions:
                response = client.rpc(
                    op="sample", session=session, interval=0, mem_per_uop=0.001
                )
                assert response["ok"] is True, response
            for session in sessions:
                assert client.rpc(op="bye", session=session)["ok"]
        finally:
            client.close()

    def test_batched_outcomes_match_in_process_session(self, sharded):
        server, port = sharded
        series = [0.001, 0.02, 0.05, 0.02, 0.001, 0.06]
        reference = SessionManager(max_sessions=1)
        ref_session = handle_request(reference, {"op": "hello"})["session"]
        expected = handle_request(
            reference,
            {
                "op": "sample_batch",
                "session": ref_session,
                "start_interval": 0,
                "samples": series,
            },
        )["outcomes"]
        client = _Client(port)
        try:
            session = client.rpc(op="hello")["session"]
            response = client.rpc(
                op="sample_batch",
                session=session,
                start_interval=0,
                samples=series,
            )
            assert response["ok"] is True, response
            assert response["outcomes"] == expected
            client.rpc(op="bye", session=session)
        finally:
            client.close()

    def test_aggregated_stats_fan_in(self, sharded):
        server, port = sharded
        client = _Client(port)
        try:
            sessions = [client.rpc(op="hello")["session"] for _ in range(2)]
            response = client.rpc(op="stats")
            assert response["ok"] is True
            stats = response["stats"]
            assert stats["workers"] == 2
            assert stats["workers_alive"] == 2
            assert stats["max_sessions"] == 8  # per-worker ceilings sum
            assert stats["sessions_active"] >= 2
            assert len(stats["per_worker"]) == 2
            for session in sessions:
                client.rpc(op="bye", session=session)
        finally:
            client.close()

    def test_per_session_stats_route_by_hash(self, sharded):
        server, port = sharded
        client = _Client(port)
        try:
            session = client.rpc(op="hello")["session"]
            response = client.rpc(op="stats", session=session)
            assert response["ok"] is True
            assert response["stats"]["session"] == session
            client.rpc(op="bye", session=session)
        finally:
            client.close()

    def test_malformed_json_answered_by_router(self, sharded):
        server, port = sharded
        client = _Client(port)
        try:
            client._file.write("{nope\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"] == "bad_request"
        finally:
            client.close()


class TestWorkerDeath:
    """Worker failure degrades one shard; the others keep serving.

    Module-scoped server can't be reused here — killing a worker is
    destructive — so this test pays for its own topology.
    """

    def test_dead_shard_isolated(self):
        server = ShardedServer(workers=2, max_sessions=8)
        port = server.start()
        try:
            client = _Client(port)
            # Open sessions on both shards.
            by_shard = {}
            while len(by_shard) < 2:
                session = client.rpc(op="hello")["session"]
                by_shard[shard_for(session, 2)] = session
            server.kill_worker(0)
            dead = client.rpc(
                op="sample",
                session=by_shard[0],
                interval=0,
                mem_per_uop=0.001,
            )
            assert dead["ok"] is False
            assert dead["error"] == "worker_unavailable"
            assert dead["worker"] == 0
            alive = client.rpc(
                op="sample",
                session=by_shard[1],
                interval=0,
                mem_per_uop=0.001,
            )
            assert alive["ok"] is True, alive
            stats = client.rpc(op="stats")["stats"]
            assert stats["workers_alive"] == 1
            assert stats["per_worker"][0] is None
            assert server.metrics.counter("serve.workers_died").value == 1
            client.close()
        finally:
            server.stop()

    def test_placement_skips_dead_workers(self):
        # Regression: round-robin placement used to cycle through dead
        # shards too, bouncing every other hello off a known-dead
        # worker while the live one had free capacity.
        server = ShardedServer(workers=2, max_sessions=8)
        port = server.start()
        try:
            client = _Client(port)
            server.kill_worker(0)
            sessions = []
            for _ in range(4):
                response = client.rpc(op="hello")
                assert response["ok"] is True, response
                sessions.append(response["session"])
            assert {shard_for(s, 2) for s in sessions} == {1}
            for session in sessions:
                assert client.rpc(op="bye", session=session)["ok"]
            client.close()
        finally:
            server.stop()

    def test_no_live_workers_is_a_clean_error(self):
        server = ShardedServer(workers=2, max_sessions=8)
        port = server.start()
        try:
            client = _Client(port)
            server.kill_worker(0)
            server.kill_worker(1)
            response = client.rpc(op="hello")
            assert response["ok"] is False
            assert response["error"] == "worker_unavailable"
            assert response["recovering"] is False
            client.close()
        finally:
            server.stop()


class TestRouterLifecycle:
    def test_bind_conflict_raises_clean_error(self):
        # Regression: a router bind failure used to be swallowed by the
        # router thread and surface as `assert self._router_port is not
        # None` — an AssertionError with no hint of the real cause.
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            busy_port = blocker.getsockname()[1]
            server = ShardedServer(workers=1, port=busy_port)
            with pytest.raises(ReproError, match="router failed to start"):
                server.start()
            server.stop()
        finally:
            blocker.close()

    def test_stop_is_idempotent_and_server_restartable(self):
        # Regression: stop() used to leave _thread/_procs/_worker_ports
        # populated, so a second start() hit "already started" and a
        # stopped server could never come back.
        server = ShardedServer(workers=2, max_sessions=8)
        try:
            server.start()
            server.stop()
            server.stop()  # idempotent
            port = server.start()
            client = _Client(port)
            response = client.rpc(op="hello")
            assert response["ok"] is True, response
            assert client.rpc(op="bye", session=response["session"])["ok"]
            client.close()
        finally:
            server.stop()

    def test_restartable_after_failed_start(self):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            busy_port = blocker.getsockname()[1]
            server = ShardedServer(workers=1, port=busy_port)
            with pytest.raises(ReproError):
                server.start()
        finally:
            blocker.close()
        server._port = 0  # any free port this time
        port = server.start()
        try:
            client = _Client(port)
            assert client.rpc(op="hello")["ok"] is True
            client.close()
        finally:
            server.stop()
