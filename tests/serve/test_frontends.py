"""Transport frontends: stdio loop and asyncio TCP server."""

import asyncio
import io
import json

from repro.serve import SessionManager, serve_stdio, serve_tcp_async


def run_stdio(requests, **manager_kwargs):
    manager = SessionManager(**manager_kwargs)
    stdin = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests)
    )
    stdout = io.StringIO()
    handled = serve_stdio(manager, stdin, stdout)
    responses = [
        json.loads(line) for line in stdout.getvalue().splitlines() if line
    ]
    return handled, responses, manager


class TestStdio:
    def test_full_session_over_stdio(self):
        handled, responses, manager = run_stdio(
            [
                {"op": "hello", "governor": "reactive"},
                {"op": "sample", "session": "s1", "interval": 0, "mem_per_uop": 0.001},
                {"op": "sample", "session": "s1", "interval": 1, "mem_per_uop": 0.001},
                {"op": "bye", "session": "s1"},
            ]
        )
        assert handled == 4
        assert [r["ok"] for r in responses] == [True, True, True, True]
        assert responses[2]["hit"] is True  # constant series: last-value hits
        assert manager.active_sessions == 0

    def test_one_response_line_per_request(self):
        handled, responses, _ = run_stdio(
            [{"op": "stats"}, {"op": "nope"}, {"op": "stats"}]
        )
        assert handled == 3
        assert len(responses) == 3
        assert responses[1]["error"] == "bad_request"

    def test_blank_lines_ignored(self):
        manager = SessionManager()
        stdin = io.StringIO('\n\n{"op":"stats"}\n\n')
        stdout = io.StringIO()
        assert serve_stdio(manager, stdin, stdout) == 1

    def test_errors_do_not_stop_the_loop(self):
        handled, responses, _ = run_stdio(
            [{"op": "sample", "session": "sX", "interval": 0, "mem_per_uop": 1},
             {"op": "hello"}]
        )
        assert handled == 2
        assert responses[0]["error"] == "unknown_session"
        assert responses[1]["ok"] is True


async def _with_server(manager, interact, queue_depth=64):
    """Run the TCP server, call ``interact(reader, writer)``, tear down."""
    loop = asyncio.get_running_loop()
    ready = loop.create_future()
    server = asyncio.ensure_future(
        serve_tcp_async(manager, port=0, queue_depth=queue_depth, ready=ready)
    )
    port = await asyncio.wait_for(ready, timeout=5)
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await interact(reader, writer)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
        server.cancel()
        try:
            await server
        except asyncio.CancelledError:
            pass


async def _rpc(reader, writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await asyncio.wait_for(reader.readline(), timeout=5))


class TestTCP:
    def test_full_session_over_tcp(self):
        async def interact(reader, writer):
            response = await _rpc(reader, writer, {"op": "hello"})
            assert response["ok"], response
            session = response["session"]
            for index, value in enumerate([0.001, 0.02, 0.05]):
                response = await _rpc(
                    reader,
                    writer,
                    {
                        "op": "sample",
                        "session": session,
                        "interval": index,
                        "mem_per_uop": value,
                    },
                )
                assert response["ok"], response
            response = await _rpc(reader, writer, {"op": "stats", "session": session})
            assert response["stats"]["samples"] == 3
            return await _rpc(reader, writer, {"op": "bye", "session": session})

        manager = SessionManager()
        response = asyncio.run(_with_server(manager, interact))
        assert response["ok"] is True
        assert manager.active_sessions == 0

    def test_pipelined_requests_answered_in_order(self):
        async def interact(reader, writer):
            # Fire everything without awaiting responses, then read back.
            requests = [{"op": "hello"}] + [
                {
                    "op": "sample",
                    "session": "s1",
                    "interval": index,
                    "mem_per_uop": 0.001,
                }
                for index in range(20)
            ]
            blob = "".join(json.dumps(r) + "\n" for r in requests)
            writer.write(blob.encode())
            await writer.drain()
            responses = []
            for _ in requests:
                responses.append(
                    json.loads(await asyncio.wait_for(reader.readline(), timeout=5))
                )
            return responses

        responses = asyncio.run(_with_server(SessionManager(), interact))
        assert responses[0]["session"] == "s1"
        assert [r["interval"] for r in responses[1:]] == list(range(20))

    def test_small_queue_still_serves_a_burst(self):
        # Queue depth 2 with a 40-request burst: backpressure, not loss.
        async def interact(reader, writer):
            requests = [{"op": "stats"} for _ in range(40)]
            writer.write(
                "".join(json.dumps(r) + "\n" for r in requests).encode()
            )
            await writer.drain()
            count = 0
            for _ in requests:
                await asyncio.wait_for(reader.readline(), timeout=5)
                count += 1
            return count

        count = asyncio.run(
            _with_server(SessionManager(), interact, queue_depth=2)
        )
        assert count == 40

    def test_malformed_line_answers_error_and_keeps_connection(self):
        async def interact(reader, writer):
            writer.write(b"this is not json\n")
            await writer.drain()
            first = json.loads(await asyncio.wait_for(reader.readline(), timeout=5))
            second = await _rpc(reader, writer, {"op": "hello"})
            return first, second

        first, second = asyncio.run(_with_server(SessionManager(), interact))
        assert first["error"] == "bad_request"
        assert second["ok"] is True
