"""Lossless predictor/session checkpointing."""

import pytest

from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
    VariableWindowPredictor,
)
from repro.errors import ConfigurationError
from repro.serve import (
    CHECKPOINT_VERSION,
    PhaseSession,
    SessionConfig,
    checkpoint_from_json,
    checkpoint_to_json,
    validate_checkpoint,
)

SERIES = [0.001, 0.02, 0.001, 0.05, 0.02, 0.001, 0.02, 0.05] * 4


def _observe(predictor, phases):
    for phase in phases:
        predictor.observe(PhaseObservation(phase=phase, mem_per_uop=0.01))


class TestPredictorState:
    @pytest.mark.parametrize(
        "factory",
        [
            LastValuePredictor,
            lambda: FixedWindowPredictor(4),
            lambda: GPHTPredictor(4, 8),
        ],
    )
    def test_export_restore_continues_identically(self, factory):
        phases = [1, 2, 1, 3, 2, 1, 2, 3, 1, 1, 2, 3]
        trained = factory()
        _observe(trained, phases)
        clone = factory()
        clone.restore_state(trained.export_state())
        for phase in [2, 1, 3, 2, 1]:
            _observe(trained, [phase])
            _observe(clone, [phase])
            assert trained.predict() == clone.predict()

    def test_export_is_idempotent_after_restore(self):
        trained = GPHTPredictor(4, 8)
        _observe(trained, [1, 2, 1, 3, 2, 1, 2, 3])
        clone = GPHTPredictor(4, 8)
        clone.restore_state(trained.export_state())
        assert clone.export_state() == trained.export_state()

    def test_gpht_restore_rejects_config_mismatch(self):
        state = GPHTPredictor(4, 8).export_state()
        with pytest.raises(ConfigurationError):
            GPHTPredictor(8, 8).restore_state(state)
        with pytest.raises(ConfigurationError):
            GPHTPredictor(4, 16).restore_state(state)

    def test_restore_rejects_foreign_state(self):
        with pytest.raises(ConfigurationError):
            LastValuePredictor().restore_state(
                GPHTPredictor(4, 8).export_state()
            )

    def test_unsupported_predictor_raises(self):
        predictor = VariableWindowPredictor(16, 0.005)
        with pytest.raises(ConfigurationError, match="checkpointing"):
            predictor.export_state()
        with pytest.raises(ConfigurationError, match="checkpointing"):
            predictor.restore_state({})


class TestSessionSnapshot:
    @pytest.mark.parametrize(
        "governor", ["gpht", "reactive", "fixed_window"]
    )
    def test_restore_continues_bit_for_bit(self, governor):
        config = SessionConfig(governor=governor)
        session = PhaseSession(config)
        for index, value in enumerate(SERIES[:16]):
            session.feed(index, value)
        restored = PhaseSession.from_snapshot(session.snapshot())
        for index, value in enumerate(SERIES[16:], start=16):
            assert session.feed(index, value) == restored.feed(index, value)
        assert session.snapshot() == restored.snapshot()

    def test_snapshot_survives_json_round_trip(self):
        session = PhaseSession()
        for index, value in enumerate(SERIES[:10]):
            session.feed(index, value)
        checkpoint = checkpoint_from_json(checkpoint_to_json(session.snapshot()))
        assert checkpoint == session.snapshot()
        restored = PhaseSession.from_snapshot(checkpoint)
        assert restored.samples == session.samples
        assert restored.stats() == session.stats()

    def test_snapshot_carries_scoring_state(self):
        session = PhaseSession(SessionConfig(governor="reactive"))
        for index in range(6):
            session.feed(index, 0.001)
        restored = PhaseSession.from_snapshot(session.snapshot())
        assert restored.scored == session.scored == 5
        assert restored.correct == session.correct == 5
        assert restored.accuracy == 1.0

    def test_version_mismatch_rejected(self):
        payload = PhaseSession().snapshot()
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            PhaseSession.from_snapshot(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            validate_checkpoint({"version": CHECKPOINT_VERSION})

    def test_corrupt_counter_rejected(self):
        payload = PhaseSession().snapshot()
        payload["samples"] = "three"
        with pytest.raises(ConfigurationError, match="samples"):
            PhaseSession.from_snapshot(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            checkpoint_from_json("{not json")
        with pytest.raises(ConfigurationError, match="object"):
            checkpoint_from_json("[1, 2]")
