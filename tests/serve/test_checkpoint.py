"""Lossless predictor/session checkpointing and the durable store."""

import json

import pytest

from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
    PhasePredictor,
    VariableWindowPredictor,
)
from repro.errors import ConfigurationError
from repro.serve import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    PhaseSession,
    SessionConfig,
    checkpoint_from_json,
    checkpoint_to_json,
    validate_checkpoint,
)

SERIES = [0.001, 0.02, 0.001, 0.05, 0.02, 0.001, 0.02, 0.05] * 4


def _observe(predictor, phases):
    for phase in phases:
        predictor.observe(PhaseObservation(phase=phase, mem_per_uop=0.01))


class TestPredictorState:
    @pytest.mark.parametrize(
        "factory",
        [
            LastValuePredictor,
            lambda: FixedWindowPredictor(4),
            lambda: GPHTPredictor(4, 8),
        ],
    )
    def test_export_restore_continues_identically(self, factory):
        phases = [1, 2, 1, 3, 2, 1, 2, 3, 1, 1, 2, 3]
        trained = factory()
        _observe(trained, phases)
        clone = factory()
        clone.restore_state(trained.export_state())
        for phase in [2, 1, 3, 2, 1]:
            _observe(trained, [phase])
            _observe(clone, [phase])
            assert trained.predict() == clone.predict()

    def test_export_is_idempotent_after_restore(self):
        trained = GPHTPredictor(4, 8)
        _observe(trained, [1, 2, 1, 3, 2, 1, 2, 3])
        clone = GPHTPredictor(4, 8)
        clone.restore_state(trained.export_state())
        assert clone.export_state() == trained.export_state()

    def test_gpht_restore_rejects_config_mismatch(self):
        state = GPHTPredictor(4, 8).export_state()
        with pytest.raises(ConfigurationError):
            GPHTPredictor(8, 8).restore_state(state)
        with pytest.raises(ConfigurationError):
            GPHTPredictor(4, 16).restore_state(state)

    def test_restore_rejects_foreign_state(self):
        with pytest.raises(ConfigurationError):
            LastValuePredictor().restore_state(
                GPHTPredictor(4, 8).export_state()
            )

    def test_unsupported_predictor_raises(self):
        # The whole built-in zoo supports checkpointing now; the
        # base-class default (for third-party predictors that never
        # implement the contract) must keep raising loudly.
        class _NoCheckpoint(PhasePredictor):
            name = "no_checkpoint"

            def observe(self, observation):
                pass

            def predict(self):
                return 1

            def reset(self):
                pass

        predictor = _NoCheckpoint()
        with pytest.raises(ConfigurationError, match="checkpointing"):
            predictor.export_state()
        with pytest.raises(ConfigurationError, match="checkpointing"):
            predictor.restore_state({})

    def test_variable_window_supports_checkpointing(self):
        trained = VariableWindowPredictor(16, 0.005)
        _observe(trained, [1, 2, 1, 3, 2, 1, 2, 3])
        clone = VariableWindowPredictor(16, 0.005)
        clone.restore_state(trained.export_state())
        assert clone.export_state() == trained.export_state()


class TestSessionSnapshot:
    @pytest.mark.parametrize(
        "governor", ["gpht", "reactive", "fixed_window"]
    )
    def test_restore_continues_bit_for_bit(self, governor):
        config = SessionConfig(governor=governor)
        session = PhaseSession(config)
        for index, value in enumerate(SERIES[:16]):
            session.feed(index, value)
        restored = PhaseSession.from_snapshot(session.snapshot())
        for index, value in enumerate(SERIES[16:], start=16):
            assert session.feed(index, value) == restored.feed(index, value)
        assert session.snapshot() == restored.snapshot()

    def test_snapshot_survives_json_round_trip(self):
        session = PhaseSession()
        for index, value in enumerate(SERIES[:10]):
            session.feed(index, value)
        checkpoint = checkpoint_from_json(checkpoint_to_json(session.snapshot()))
        assert checkpoint == session.snapshot()
        restored = PhaseSession.from_snapshot(checkpoint)
        assert restored.samples == session.samples
        assert restored.stats() == session.stats()

    def test_snapshot_carries_scoring_state(self):
        session = PhaseSession(SessionConfig(governor="reactive"))
        for index in range(6):
            session.feed(index, 0.001)
        restored = PhaseSession.from_snapshot(session.snapshot())
        assert restored.scored == session.scored == 5
        assert restored.correct == session.correct == 5
        assert restored.accuracy == 1.0

    def test_version_mismatch_rejected(self):
        payload = PhaseSession().snapshot()
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            PhaseSession.from_snapshot(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            validate_checkpoint({"version": CHECKPOINT_VERSION})

    def test_corrupt_counter_rejected(self):
        payload = PhaseSession().snapshot()
        payload["samples"] = "three"
        with pytest.raises(ConfigurationError, match="samples"):
            PhaseSession.from_snapshot(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            checkpoint_from_json("{not json")
        with pytest.raises(ConfigurationError, match="object"):
            checkpoint_from_json("[1, 2]")

    # Regression: validate_checkpoint never type-checked `samples`, so
    # a numeric *string* sailed through validation and blew up later
    # (or silently corrupted arithmetic on the counter).
    @pytest.mark.parametrize("bad", ["12", -1, True, 3.5, None])
    def test_non_int_or_negative_samples_rejected(self, bad):
        payload = PhaseSession().snapshot()
        payload["samples"] = bad
        with pytest.raises(ConfigurationError, match="samples"):
            validate_checkpoint(payload)

    def test_zero_samples_accepted(self):
        validate_checkpoint(PhaseSession().snapshot())


def _snapshot(samples=3):
    session = PhaseSession()
    for index in range(samples):
        session.feed(index, SERIES[index])
    return session.snapshot()


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        checkpoint = _snapshot()
        store.save("s1", checkpoint, protocol=2)
        record = store.load("s1")
        assert record is not None
        assert record.session == "s1"
        assert record.protocol == 2
        assert record.checkpoint == checkpoint

    def test_load_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        assert store.load("nope") is None

    def test_delete_removes_and_tolerates_missing(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        store.save("s1", _snapshot())
        store.delete("s1")
        store.delete("s1")
        assert store.load("s1") is None
        assert store.sessions() == ()

    def test_load_all_sorted_by_session(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        for session_id in ("s2", "s10", "s1x1"):
            store.save(session_id, _snapshot())
        assert [r.session for r in store.load_all()] == ["s10", "s1x1", "s2"]
        assert store.sessions() == ("s10", "s1x1", "s2")

    def test_hostile_session_ids_stay_inside_root(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        hostile = "../escape/attempt"
        store.save(hostile, _snapshot())
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert store.load(hostile) is not None
        assert store.sessions() == (hostile,)

    def test_invalid_checkpoint_rejected_before_write(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        bad = _snapshot()
        bad["samples"] = "12"
        with pytest.raises(ConfigurationError, match="samples"):
            store.save("s1", bad)
        assert store.load("s1") is None

    def test_corrupt_file_raises_but_load_all_skips(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        store.save("s1", _snapshot())
        corrupt = tmp_path / "s2.ckpt.json"
        corrupt.write_text("{broken", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            store.load("s2")
        assert [r.session for r in store.load_all()] == ["s1"]

    def test_background_writer_flush_and_close(self, tmp_path):
        store = CheckpointStore(tmp_path)
        checkpoint = _snapshot()
        for index in range(8):
            store.save(f"s{index}", checkpoint)
        store.flush()
        assert len(store.sessions()) == 8
        store.close()
        store.close()  # idempotent
        # A closed store degrades to synchronous writes.
        store.save("late", checkpoint)
        assert store.load("late") is not None

    def test_record_is_versioned_wire_json(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        store.save("s1", _snapshot(), protocol=1)
        raw = json.loads((tmp_path / "s1.ckpt.json").read_text("utf-8"))
        assert raw["session"] == "s1"
        assert raw["protocol"] == 1
        assert raw["checkpoint"]["version"] == CHECKPOINT_VERSION

    def test_empty_session_id_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path, synchronous=True)
        with pytest.raises(ConfigurationError, match="session"):
            store.save("", _snapshot())
