"""Tests for phase-to-DVFS policies (paper Table 2 and Section 6.3)."""

import pytest

from repro.core.dvfs_policy import DVFSPolicy, derive_bounded_policy
from repro.core.phases import PhaseTable
from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec


class TestPaperDefault:
    def test_table2_mapping(self):
        """Phase i maps to the i-th fastest SpeedStep point — exactly
        the paper's Table 2."""
        policy = DVFSPolicy.paper_default()
        expected = {
            1: (1500, 1484),
            2: (1400, 1452),
            3: (1200, 1356),
            4: (1000, 1228),
            5: (800, 1116),
            6: (600, 956),
        }
        for phase_id, (mhz, mv) in expected.items():
            point = policy.setting_for(phase_id)
            assert (point.frequency_mhz, point.voltage_mv) == (mhz, mv)

    def test_monotonic(self):
        assert DVFSPolicy.paper_default().is_monotonic()

    def test_rejects_more_phases_than_points(self):
        seven_phase_table = PhaseTable(
            [0.004, 0.008, 0.012, 0.016, 0.020, 0.030]
        )
        with pytest.raises(ConfigurationError):
            DVFSPolicy.paper_default(seven_phase_table)


class TestValidation:
    def test_requires_full_phase_coverage(self):
        table = PhaseTable()
        speedstep = SpeedStepTable()
        partial = {1: speedstep.fastest}
        with pytest.raises(ConfigurationError, match="misses"):
            DVFSPolicy(table, partial)

    def test_rejects_unknown_phase_ids(self):
        table = PhaseTable([0.01])
        speedstep = SpeedStepTable()
        assignments = {1: speedstep.fastest, 2: speedstep.slowest,
                       9: speedstep.slowest}
        with pytest.raises(ConfigurationError, match="unknown"):
            DVFSPolicy(table, assignments)

    def test_setting_for_uncovered_phase_raises(self):
        policy = DVFSPolicy.paper_default()
        with pytest.raises(ConfigurationError):
            policy.setting_for(7)

    def test_non_monotonic_policy_is_detectable(self):
        table = PhaseTable([0.01])
        speedstep = SpeedStepTable()
        policy = DVFSPolicy(
            table, {1: speedstep.slowest, 2: speedstep.fastest}
        )
        assert not policy.is_monotonic()

    def test_assignments_returns_copy(self):
        policy = DVFSPolicy.paper_default()
        mapping = policy.assignments
        mapping[1] = SpeedStepTable().slowest
        assert policy.setting_for(1).frequency_mhz == 1500


class TestBoundedDerivation:
    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            derive_bounded_policy(0.0)
        with pytest.raises(ConfigurationError):
            derive_bounded_policy(1.0)

    def test_phase1_always_full_speed(self):
        """The least memory-bound phase has no slack: any slower setting
        slows it by the full frequency ratio."""
        policy = derive_bounded_policy(0.05)
        assert policy.setting_for(1).frequency_mhz == 1500

    def test_policy_is_complete_and_monotonic(self):
        policy = derive_bounded_policy(0.05)
        for phase_id in PhaseTable().phase_ids:
            policy.setting_for(phase_id)
        assert policy.is_monotonic()

    def test_derived_settings_honor_the_bound(self):
        """Every phase's chosen setting keeps its own witness within the
        degradation target under the timing model."""
        timing = TimingModel()
        table = PhaseTable()
        speedstep = SpeedStepTable()
        target = 0.05
        policy = derive_bounded_policy(
            target, table, speedstep, timing, upc_core_floor=0.5
        )
        for definition in table.definitions:
            witness = SegmentSpec(
                uops=1_000_000,
                mem_per_uop=definition.lower,
                upc_core=0.5,
            )
            point = policy.setting_for(definition.phase_id)
            slowdown = timing.slowdown(witness, point, speedstep.fastest)
            assert slowdown <= 1.0 + target + 1e-9

    def test_tighter_bound_gives_faster_settings(self):
        loose = derive_bounded_policy(0.20)
        tight = derive_bounded_policy(0.02)
        for phase_id in PhaseTable().phase_ids:
            assert (
                tight.setting_for(phase_id).frequency_mhz
                >= loose.setting_for(phase_id).frequency_mhz
            )

    def test_bounded_policy_is_never_more_aggressive_than_table2(self):
        """With a 5% bound, no phase may run slower than the paper's
        aggressive default assigns it."""
        bounded = derive_bounded_policy(0.05)
        aggressive = DVFSPolicy.paper_default()
        for phase_id in PhaseTable().phase_ids:
            assert (
                bounded.setting_for(phase_id).frequency_mhz
                >= aggressive.setting_for(phase_id).frequency_mhz
            )

    def test_explicit_witnesses_override_synthetic(self):
        """Highly memory-bound witnesses tolerate slow settings, so the
        derived policy gets more aggressive for their phase."""
        speedstep = SpeedStepTable()
        witnesses = {
            6: [SegmentSpec(uops=1_000_000, mem_per_uop=0.12, upc_core=1.9)]
        }
        with_witness = derive_bounded_policy(
            0.05, witnesses_by_phase=witnesses
        )
        without = derive_bounded_policy(0.05)
        assert (
            with_witness.setting_for(6).frequency_mhz
            <= without.setting_for(6).frequency_mhz
        )
        assert with_witness.setting_for(6).frequency_mhz == 600

    def test_name_encodes_target(self):
        assert derive_bounded_policy(0.05).name == "bounded_5%"

    def test_repr_shows_mapping(self):
        assert "1500MHz" in repr(DVFSPolicy.paper_default())
