"""Tests for the first-order Markov transition predictor (extension)."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.core.predictors.markov import MarkovPredictor

TABLE = PhaseTable()


def obs_series(phases):
    return [TABLE.representative_value(p) for p in phases]


def drive(predictor, phases):
    from repro.core.predictors import PhaseObservation

    for phase in phases:
        predictor.observe(
            PhaseObservation(
                phase=phase, mem_per_uop=TABLE.representative_value(phase)
            )
        )


class TestBasics:
    def test_cold_prediction(self):
        assert MarkovPredictor().predict() == 1

    def test_counts_transitions(self):
        predictor = MarkovPredictor()
        drive(predictor, [1, 2, 1, 2, 1])
        assert predictor.transition_count(1, 2) == 2
        assert predictor.transition_count(2, 1) == 2
        assert predictor.transition_count(2, 2) == 0

    def test_unseen_phase_falls_back_to_last_value(self):
        predictor = MarkovPredictor()
        drive(predictor, [5])
        assert predictor.predict() == 5

    def test_ties_break_toward_persistence(self):
        predictor = MarkovPredictor()
        drive(predictor, [3, 3, 3, 4, 3])  # 3->3 once... build a tie
        predictor.reset()
        drive(predictor, [3, 4, 3, 3])  # 3->4 once, 3->3 once: tie
        assert predictor.predict() == 3

    def test_reset(self):
        predictor = MarkovPredictor()
        drive(predictor, [2, 5, 2, 5])
        predictor.reset()
        assert predictor.current_phase is None
        assert predictor.predict() == 1

    def test_name(self):
        assert MarkovPredictor().name == "Markov1"


class TestPredictiveBehaviour:
    def test_learns_strict_alternation(self):
        """A two-phase alternation is fully first-order predictable."""
        result = evaluate_predictor(
            MarkovPredictor(), obs_series([1, 6] * 40)
        )
        # After a couple of training transitions it is perfect.
        tail = list(zip(result.predictions, result.actuals))[5:]
        assert all(p == a for p, a in tail)

    def test_beats_last_value_on_alternation(self):
        series = obs_series([1, 6] * 40)
        markov = evaluate_predictor(MarkovPredictor(), series)
        last = evaluate_predictor(LastValuePredictor(), series)
        assert markov.accuracy > last.accuracy + 0.5

    def test_cannot_disambiguate_shared_states(self):
        """The sequence 1,2,1,3 revisits phase 1 with two different
        continuations; one step of context cannot resolve it, deep
        global history can."""
        phases = [1, 2, 1, 3] * 40
        series = obs_series(phases)
        markov = evaluate_predictor(MarkovPredictor(), series)
        gpht = evaluate_predictor(GPHTPredictor(8, 64), series)
        assert markov.accuracy < 0.8
        assert gpht.accuracy > markov.accuracy + 0.15

    def test_matches_last_value_on_sticky_behaviour(self):
        series = obs_series([2] * 30 + [5] * 30)
        markov = evaluate_predictor(MarkovPredictor(), series)
        last = evaluate_predictor(LastValuePredictor(), series)
        assert markov.accuracy == pytest.approx(last.accuracy, abs=0.02)
