"""Tests for the oracle (perfect-knowledge) predictor."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.predictors import OraclePredictor, PhaseObservation
from repro.errors import ConfigurationError


def test_rejects_empty_sequence():
    with pytest.raises(ConfigurationError):
        OraclePredictor([])


def test_perfect_accuracy_on_its_sequence():
    from repro.core.phases import PhaseTable

    table = PhaseTable()
    phases = [1, 5, 2, 6, 3, 1, 4, 2] * 10
    series = [table.representative_value(p) for p in phases]
    result = evaluate_predictor(OraclePredictor(phases), series)
    assert result.accuracy == 1.0


def test_tracks_position_via_observations():
    oracle = OraclePredictor([3, 1, 4])
    assert oracle.predict() == 3
    oracle.observe(PhaseObservation(phase=3, mem_per_uop=0.01))
    assert oracle.predict() == 1
    oracle.observe(PhaseObservation(phase=1, mem_per_uop=0.0))
    assert oracle.predict() == 4


def test_repeats_final_phase_past_the_end():
    oracle = OraclePredictor([2, 5])
    for phase in (2, 5, 5):
        oracle.observe(PhaseObservation(phase=phase, mem_per_uop=0.01))
    assert oracle.predict() == 5


def test_reset_rewinds():
    oracle = OraclePredictor([2, 5])
    oracle.observe(PhaseObservation(phase=2, mem_per_uop=0.01))
    oracle.reset()
    assert oracle.predict() == 2


def test_name():
    assert OraclePredictor([1]).name == "Oracle"
