"""Tests for the DVFS governors (the Figure 8 decision logic)."""

import pytest

from repro.core.dvfs_policy import DVFSPolicy
from repro.core.governor import (
    IntervalCounters,
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import (
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
    PhasePredictor,
)
from repro.cpu.frequency import SpeedStepTable


def counters(mem_per_uop, uops=100_000_000.0):
    return IntervalCounters(
        uops=uops,
        mem_transactions=uops * mem_per_uop,
        instructions=uops / 1.2,
        tsc_cycles=uops / 0.8,
    )


class TestIntervalCounters:
    def test_derived_metrics(self):
        c = counters(0.0123)
        assert c.mem_per_uop == pytest.approx(0.0123)
        assert c.upc == pytest.approx(0.8)

    def test_zero_division_guards(self):
        c = IntervalCounters(
            uops=0, mem_transactions=0, instructions=0, tsc_cycles=0
        )
        assert c.mem_per_uop == 0.0
        assert c.upc == 0.0


class TestPhasePredictionGovernor:
    def test_decision_classifies_and_translates(self):
        governor = PhasePredictionGovernor(LastValuePredictor())
        decision = governor.decide(counters(0.012))
        assert decision.actual_phase == 3
        # Last-value predicts the observed phase persists.
        assert decision.predicted_phase == 3
        assert decision.setting.frequency_mhz == 1200

    def test_decisions_logged_in_order(self):
        governor = PhasePredictionGovernor(LastValuePredictor())
        governor.decide(counters(0.001))
        governor.decide(counters(0.04))
        phases = [d.actual_phase for d in governor.decisions]
        assert phases == [1, 6]

    def test_predictor_sees_observations(self):
        class Spy(PhasePredictor):
            def __init__(self):
                self.seen = []

            @property
            def name(self):
                return "Spy"

            def observe(self, observation: PhaseObservation):
                self.seen.append(observation)

            def predict(self):
                return 4

            def reset(self):
                self.seen.clear()

        spy = Spy()
        governor = PhasePredictionGovernor(spy)
        governor.decide(counters(0.021))
        assert spy.seen[0].phase == 5
        assert spy.seen[0].mem_per_uop == pytest.approx(0.021)
        # The spy's constant prediction drives the setting.
        assert governor.decisions[0].setting.frequency_mhz == 1000

    def test_out_of_range_prediction_is_clamped(self):
        class Wild(PhasePredictor):
            @property
            def name(self):
                return "Wild"

            def observe(self, observation):
                pass

            def predict(self):
                return 99

            def reset(self):
                pass

        governor = PhasePredictionGovernor(Wild())
        decision = governor.decide(counters(0.001))
        assert decision.predicted_phase == 6
        assert decision.setting.frequency_mhz == 600

    def test_reset_clears_predictor_and_log(self):
        predictor = GPHTPredictor(4, 16)
        governor = PhasePredictionGovernor(predictor)
        governor.decide(counters(0.012))
        governor.reset()
        assert governor.decisions == ()
        assert predictor.pht_occupancy == 0

    def test_name_defaults_to_predictor(self):
        governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
        assert governor.name == "GPHT_8_128"

    def test_name_override(self):
        governor = PhasePredictionGovernor(
            LastValuePredictor(), name="mine"
        )
        assert governor.name == "mine"

    def test_custom_policy_used(self):
        speedstep = SpeedStepTable()
        policy = DVFSPolicy(
            DVFSPolicy.paper_default().phase_table,
            {p: speedstep.fastest for p in range(1, 7)},
            name="pinned",
        )
        governor = PhasePredictionGovernor(LastValuePredictor(), policy)
        decision = governor.decide(counters(0.05))
        assert decision.setting.frequency_mhz == 1500


class TestReactiveGovernor:
    def test_is_last_value_management(self):
        """Reactive management == configure for the phase just seen."""
        governor = ReactiveGovernor()
        governor.decide(counters(0.001))
        decision = governor.decide(counters(0.04))
        assert decision.predicted_phase == decision.actual_phase == 6

    def test_name(self):
        assert ReactiveGovernor().name == "Reactive"


class TestStaticGovernor:
    def test_always_returns_pinned_setting(self):
        speedstep = SpeedStepTable()
        governor = StaticGovernor(speedstep.fastest)
        for mem in (0.0, 0.01, 0.05):
            assert governor.decide(counters(mem)).setting == speedstep.fastest

    def test_still_classifies_for_logging(self):
        governor = StaticGovernor(SpeedStepTable().fastest)
        assert governor.decide(counters(0.017)).actual_phase == 4

    def test_name_includes_frequency(self):
        assert StaticGovernor(SpeedStepTable().slowest).name == "Static_600MHz"

    def test_reset_is_noop(self):
        governor = StaticGovernor(SpeedStepTable().fastest)
        governor.reset()
