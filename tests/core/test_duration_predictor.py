"""Tests for the duration-based phase predictor (extension)."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import LastValuePredictor, PhaseObservation
from repro.core.predictors.duration import DurationPredictor
from repro.errors import ConfigurationError

TABLE = PhaseTable()


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


def drive(predictor, phases):
    for phase in phases:
        predictor.observe(
            PhaseObservation(
                phase=phase, mem_per_uop=TABLE.representative_value(phase)
            )
        )


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DurationPredictor(continuation_threshold=0.0)
        with pytest.raises(ConfigurationError):
            DurationPredictor(continuation_threshold=1.5)

    def test_cold_prediction(self):
        assert DurationPredictor().predict() == 1

    def test_tracks_run_length(self):
        predictor = DurationPredictor()
        drive(predictor, [2, 2, 2])
        assert predictor.current_run_length == 3
        drive(predictor, [5])
        assert predictor.current_run_length == 1

    def test_learns_completed_durations(self):
        predictor = DurationPredictor()
        drive(predictor, [2, 2, 2, 5])
        assert predictor.durations.histogram(2) == {3: 1}

    def test_name(self):
        assert DurationPredictor(0.5).name == "Duration_0.5"

    def test_reset(self):
        predictor = DurationPredictor()
        drive(predictor, [2, 2, 5, 2])
        predictor.reset()
        assert predictor.current_run_length == 0
        assert predictor.predict() == 1


class TestPrediction:
    def test_predicts_persistence_early_in_run(self):
        """Fixed 4-long runs: early in a run the phase persists."""
        predictor = DurationPredictor()
        drive(predictor, [1, 1, 1, 1, 5, 5, 5, 5] * 4 + [1, 1])
        assert predictor.predict() == 1

    def test_predicts_transition_at_typical_duration(self):
        """Once the run reaches its learned length, the predictor calls
        the transition to the learned successor."""
        predictor = DurationPredictor()
        drive(predictor, [1, 1, 1, 1, 5, 5, 5, 5] * 4)
        drive(predictor, [1, 1, 1, 1])
        assert predictor.predict() == 5

    def test_beats_last_value_on_fixed_duration_alternation(self):
        phases = ([1] * 4 + [5] * 4) * 30
        duration = evaluate_predictor(DurationPredictor(), series_for(phases))
        last = evaluate_predictor(LastValuePredictor(), series_for(phases))
        assert duration.accuracy > last.accuracy + 0.1

    def test_matches_last_value_on_flat_behaviour(self):
        phases = [3] * 60
        duration = evaluate_predictor(DurationPredictor(), series_for(phases))
        assert duration.accuracy == 1.0

    def test_unseen_successor_falls_back_to_persistence(self):
        predictor = DurationPredictor()
        # One completed run of 2 but no recorded successor histogram for
        # the *current* phase (5) yet.
        drive(predictor, [2, 2, 5])
        assert predictor.predict() == 5
