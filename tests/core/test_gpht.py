"""Tests for the Global Phase History Table predictor (paper Figure 1)."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.predictors import (
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
)
from repro.errors import ConfigurationError


def obs(phase):
    return PhaseObservation(phase=phase, mem_per_uop=0.0025 * phase)


def drive(predictor, phases):
    """Run the handler cycle over a phase sequence; return predictions.

    ``predictions[i]`` is the prediction made after observing
    ``phases[i]`` (i.e. for ``phases[i + 1]``).
    """
    predictions = []
    for phase in phases:
        predictor.observe(obs(phase))
        predictions.append(predictor.predict())
    return predictions


class TestConstruction:
    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            GPHTPredictor(gphr_depth=0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            GPHTPredictor(pht_entries=0)

    def test_name_encodes_geometry(self):
        assert GPHTPredictor(8, 1024).name == "GPHT_8_1024"

    def test_cold_prediction_is_default(self):
        assert GPHTPredictor().predict() == 1


class TestGPHR:
    def test_shift_register_most_recent_first(self):
        predictor = GPHTPredictor(gphr_depth=4)
        drive(predictor, [1, 2, 3])
        assert predictor.gphr == (3, 2, 1, 0)

    def test_depth_bounds_history(self):
        predictor = GPHTPredictor(gphr_depth=3)
        drive(predictor, [1, 2, 3, 4, 5])
        assert predictor.gphr == (5, 4, 3)


class TestPrediction:
    def test_falls_back_to_last_value_on_miss(self):
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=16)
        predictor.observe(obs(5))
        # Nothing learned yet: the unseen pattern predicts GPHR[0].
        assert predictor.predict() == 5

    def test_learns_alternating_pattern(self):
        """Last-value gets an alternating sequence 0% right; the GPHT
        learns it perfectly after one training pass."""
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=64)
        sequence = [1, 6] * 30
        predictions = drive(predictor, sequence)
        # Score prediction i against actual i+1, over the trained tail.
        tail_hits = [
            predictions[i] == sequence[i + 1] for i in range(40, 59)
        ]
        assert all(tail_hits)

    def test_learns_longer_period_pattern(self):
        predictor = GPHTPredictor(gphr_depth=8, pht_entries=128)
        motif = [1, 1, 5, 3, 5, 5, 4, 1]
        sequence = motif * 12
        predictions = drive(predictor, sequence)
        tail = range(len(motif) * 4, len(sequence) - 1)
        hits = [predictions[i] == sequence[i + 1] for i in tail]
        assert sum(hits) / len(hits) == 1.0

    def test_relearns_after_behavior_change(self):
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=64)
        drive(predictor, [1, 2] * 20)
        predictions = drive(predictor, [5, 6] * 20)
        sequence = [5, 6] * 20
        tail_hits = [
            predictions[i] == sequence[i + 1] for i in range(20, 39 - 1)
        ]
        assert all(tail_hits)

    def test_single_entry_pht_degenerates_to_last_value(self):
        """The paper's Figure 5 endpoint: with one PHT entry, tag hits
        essentially never happen and GPHT converges to last value."""
        sequence = ([1, 4, 2, 5] * 40) + ([3, 6] * 20)
        gpht = evaluate_predictor(GPHTPredictor(8, 1), list(
            0.0025 * p for p in sequence
        ))
        last = evaluate_predictor(LastValuePredictor(), list(
            0.0025 * p for p in sequence
        ))
        assert gpht.accuracy == pytest.approx(last.accuracy, abs=0.02)


class TestPHTManagement:
    def test_occupancy_never_exceeds_capacity(self):
        predictor = GPHTPredictor(gphr_depth=3, pht_entries=8)
        drive(predictor, [((i * 7) % 6) + 1 for i in range(200)])
        assert predictor.pht_occupancy <= 8

    def test_lru_keeps_hot_patterns(self):
        """A pattern exercised continuously must survive pressure from
        one-off patterns filling the rest of the table."""
        predictor = GPHTPredictor(gphr_depth=2, pht_entries=4)
        # Train the hot alternation thoroughly.
        drive(predictor, [1, 2] * 10)
        hits_before = predictor.hits
        # One pass of cold patterns, interleaved with the hot one.
        drive(predictor, [3, 1, 2, 4, 1, 2, 5, 1, 2])
        # The hot pattern must still hit afterwards.
        drive(predictor, [1, 2, 1])
        assert predictor.hits > hits_before

    def test_hits_and_misses_accounted(self):
        predictor = GPHTPredictor(gphr_depth=2, pht_entries=16)
        drive(predictor, [1, 2, 1, 2, 1, 2])
        assert predictor.hits + predictor.misses == 6

    def test_reset_clears_everything(self):
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=16)
        drive(predictor, [1, 2, 3, 4, 5])
        predictor.reset()
        assert predictor.pht_occupancy == 0
        assert predictor.hits == 0
        assert predictor.misses == 0
        assert predictor.gphr == (0, 0, 0, 0)
        assert predictor.predict() == 1


class TestAgainstLastValue:
    """The paper's headline predictor comparison, in miniature."""

    def test_beats_last_value_on_variable_pattern(self):
        motif = [1, 5, 1, 6, 2, 5]
        series = [0.0025 * p for p in motif * 30]
        gpht = evaluate_predictor(GPHTPredictor(8, 128), series)
        last = evaluate_predictor(LastValuePredictor(), series)
        assert gpht.accuracy > last.accuracy + 0.3

    def test_matches_last_value_on_stable_pattern(self):
        series = [0.001] * 200
        gpht = evaluate_predictor(GPHTPredictor(8, 128), series)
        last = evaluate_predictor(LastValuePredictor(), series)
        assert gpht.accuracy == pytest.approx(last.accuracy, abs=0.01)

    def test_never_much_worse_than_last_value_on_random_data(self):
        """The miss fallback guarantees near-last-value behaviour even
        on unpredictable input (the paper's worst-case argument)."""
        import numpy as np

        rng = np.random.default_rng(7)
        series = rng.choice([0.001, 0.012, 0.025, 0.04], size=400).tolist()
        gpht = evaluate_predictor(GPHTPredictor(8, 128), series)
        last = evaluate_predictor(LastValuePredictor(), series)
        assert gpht.accuracy >= last.accuracy - 0.08


class TestSnapshot:
    def test_snapshot_exposes_learned_patterns(self):
        predictor = GPHTPredictor(gphr_depth=2, pht_entries=8)
        drive(predictor, [1, 2] * 6)
        snapshot = predictor.snapshot()
        # Tags are GPHR contents (most recent first); the stored value
        # is what followed that history: after ...1,2 comes 1, and
        # after ...2,1 comes 2.
        assert snapshot[(2, 1)] == 1
        assert snapshot[(1, 2)] == 2

    def test_snapshot_is_a_copy(self):
        predictor = GPHTPredictor(gphr_depth=2, pht_entries=8)
        drive(predictor, [1, 2, 1, 2])
        snapshot = predictor.snapshot()
        snapshot.clear()
        assert predictor.pht_occupancy > 0

    def test_snapshot_orders_lru_first(self):
        predictor = GPHTPredictor(gphr_depth=1, pht_entries=8)
        drive(predictor, [1, 2, 3, 2, 3])
        ordered = list(predictor.snapshot())
        # (1,) has not been touched since the start; it must sit at the
        # least-recently-used front.
        assert ordered[0] == (1,)


class TestWarmUp:
    """Regression: padded-GPHR lookups must never train the PHT.

    While the shift register still contains ``EMPTY_PHASE`` padding the
    observed tags are artefacts of the fill level, not real history.
    Installing them wasted PHT capacity (an earlier bug): the padded
    tags can never recur once the register is full, so they sat dead in
    the table and could evict live patterns under LRU pressure.
    """

    def test_no_installs_until_gphr_fills(self):
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=16)
        for phase in [1, 2, 3]:  # three observations: one slot still empty
            predictor.observe(obs(phase))
            predictor.predict()
            assert predictor.pht_occupancy == 0
        predictor.observe(obs(4))  # register full: training starts
        predictor.predict()
        assert predictor.pht_occupancy == 1

    def test_warmup_lookups_still_count_as_misses(self):
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=16)
        drive(predictor, [1, 2, 3])
        assert predictor.hits == 0
        assert predictor.misses == 3

    def test_warmup_predicts_last_value(self):
        predictor = GPHTPredictor(gphr_depth=8, pht_entries=16)
        predictor.observe(obs(5))
        assert predictor.predict() == 5

    def test_tiny_pht_no_longer_poisoned_by_padding(self):
        """With a 1-entry PHT, a padded install used to evict the only
        live pattern; warm-up lookups must leave the entry alone."""
        predictor = GPHTPredictor(gphr_depth=2, pht_entries=1)
        drive(predictor, [1, 2, 1, 2, 1, 2])
        snapshot = predictor.snapshot()
        assert len(snapshot) == 1
        assert all(0 not in tag for tag in snapshot)  # no padded tags

    def test_accuracy_not_worse_than_with_padded_installs(self):
        """On a periodic workload the fix strictly helps (or ties):
        the learned tail must be perfect despite a small PHT."""
        predictor = GPHTPredictor(gphr_depth=4, pht_entries=4)
        sequence = [1, 5, 2, 6] * 20
        predictions = drive(predictor, sequence)
        tail = [
            predictions[i] == sequence[i + 1] for i in range(40, 79)
        ]
        assert all(tail)
