"""Tests for the tournament (hybrid) predictor (extension)."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import (
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
)
from repro.core.predictors.hybrid import TournamentPredictor
from repro.errors import ConfigurationError
from repro.workloads.spec2000 import benchmark

TABLE = PhaseTable()


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


def drive(predictor, phases):
    for phase in phases:
        predictor.observe(
            PhaseObservation(
                phase=phase, mem_per_uop=TABLE.representative_value(phase)
            )
        )
        predictor.predict()


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TournamentPredictor(chooser_bits=0)

    def test_name(self):
        assert TournamentPredictor(8, 128).name == "Tournament_8_128"

    def test_cold_prediction(self):
        assert TournamentPredictor().predict() == 1

    def test_reset_restores_midpoint_chooser(self):
        predictor = TournamentPredictor(chooser_bits=2)
        drive(predictor, [1, 2] * 10)
        predictor.reset()
        assert predictor.chooser_value == 2
        assert predictor.predict() == 1


class TestChooser:
    def test_chooser_moves_toward_pattern_on_patterned_input(self):
        predictor = TournamentPredictor(4, 64, chooser_bits=2)
        drive(predictor, [1, 6] * 15)
        # Alternation: GPHT right, last value wrong -> saturates high.
        assert predictor.chooser_value == 3
        assert predictor.selects_pattern

    def test_chooser_bounded(self):
        predictor = TournamentPredictor(4, 64, chooser_bits=2)
        drive(predictor, [1, 6] * 40)
        assert 0 <= predictor.chooser_value <= 3


class TestAccuracy:
    def test_matches_gpht_on_patterned_input(self):
        phases = [1, 5, 2, 6] * 50
        series = series_for(phases)
        tournament = evaluate_predictor(TournamentPredictor(8, 128), series)
        gpht = evaluate_predictor(GPHTPredictor(8, 128), series)
        assert tournament.accuracy >= gpht.accuracy - 0.05

    def test_matches_last_value_on_stable_input(self):
        series = series_for([3] * 100)
        tournament = evaluate_predictor(TournamentPredictor(8, 128), series)
        assert tournament.accuracy == 1.0

    def test_never_far_from_the_better_component(self):
        """On the real benchmark suite, the tournament tracks whichever
        component is better, within a small arbitration cost."""
        for name in ("applu_in", "swim_in", "gcc_166", "mcf_inp"):
            series = benchmark(name).mem_series(600)
            tournament = evaluate_predictor(
                TournamentPredictor(8, 128), series
            )
            gpht = evaluate_predictor(GPHTPredictor(8, 128), series)
            last = evaluate_predictor(LastValuePredictor(), series)
            best = max(gpht.accuracy, last.accuracy)
            assert tournament.accuracy >= best - 0.06, name
