"""Tests for the statistical baseline predictors: last value, fixed
window, variable window (paper Section 3)."""

import pytest

from repro.core.predictors import (
    FixedWindowPredictor,
    LastValuePredictor,
    PhaseObservation,
    VariableWindowPredictor,
)
from repro.errors import ConfigurationError


def obs(phase, mem=None):
    if mem is None:
        mem = 0.0025 * phase
    return PhaseObservation(phase=phase, mem_per_uop=mem)


def feed(predictor, phases):
    for phase in phases:
        predictor.observe(obs(phase))


class TestLastValue:
    def test_cold_prediction_is_default(self):
        assert LastValuePredictor().predict() == 1

    def test_predicts_last_observed(self):
        predictor = LastValuePredictor()
        feed(predictor, [3, 5, 2])
        assert predictor.predict() == 2

    def test_reset_returns_to_default(self):
        predictor = LastValuePredictor()
        feed(predictor, [4])
        predictor.reset()
        assert predictor.predict() == 1

    def test_name(self):
        assert LastValuePredictor().name == "LastValue"


class TestFixedWindow:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            FixedWindowPredictor(window_size=0)

    def test_rejects_bad_selector(self):
        with pytest.raises(ConfigurationError):
            FixedWindowPredictor(window_size=8, selector="median")

    def test_cold_prediction_is_default(self):
        assert FixedWindowPredictor(8).predict() == 1

    def test_majority_wins(self):
        predictor = FixedWindowPredictor(window_size=5)
        feed(predictor, [2, 2, 2, 6, 6])
        assert predictor.predict() == 2

    def test_window_evicts_old_observations(self):
        predictor = FixedWindowPredictor(window_size=3)
        feed(predictor, [2, 2, 2, 6, 6, 6])
        assert predictor.predict() == 6

    def test_tie_breaks_toward_most_recent(self):
        predictor = FixedWindowPredictor(window_size=4)
        feed(predictor, [2, 2, 5, 5])
        assert predictor.predict() == 5
        feed(predictor, [2, 2, 5, 5, 2, 2])  # window now [5, 5, 2, 2]
        assert predictor.predict() == 2

    def test_mean_selector_rounds(self):
        predictor = FixedWindowPredictor(window_size=4, selector="mean")
        feed(predictor, [1, 1, 6, 6])  # mean 3.5 -> round -> 4 (banker's: 4)
        assert predictor.predict() in (3, 4)
        predictor.reset()
        feed(predictor, [2, 2, 2, 4])  # mean 2.5 -> 2 (banker's rounding)
        assert predictor.predict() in (2, 3)

    def test_size_one_window_is_last_value(self):
        predictor = FixedWindowPredictor(window_size=1)
        feed(predictor, [4, 6, 3])
        assert predictor.predict() == 3

    def test_name_includes_size(self):
        assert FixedWindowPredictor(128).name == "FixWindow_128"

    def test_reset_clears_history(self):
        predictor = FixedWindowPredictor(window_size=8)
        feed(predictor, [5] * 8)
        predictor.reset()
        assert predictor.predict() == 1


class TestVariableWindow:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            VariableWindowPredictor(window_size=0, transition_threshold=0.005)
        with pytest.raises(ConfigurationError):
            VariableWindowPredictor(window_size=8, transition_threshold=0.0)

    def test_cold_prediction_is_default(self):
        predictor = VariableWindowPredictor(128, 0.005)
        assert predictor.predict() == 1

    def test_behaves_like_majority_without_transitions(self):
        predictor = VariableWindowPredictor(128, 0.005)
        for _ in range(5):
            predictor.observe(obs(3, mem=0.012))
        predictor.observe(obs(2, mem=0.009))  # delta 0.003 < threshold
        assert predictor.window_length == 6
        assert predictor.predict() == 3

    def test_history_reset_on_transition(self):
        """A Mem/Uop jump beyond the threshold obsoletes the history, so
        the prediction follows the new behaviour immediately."""
        predictor = VariableWindowPredictor(128, 0.005)
        for _ in range(10):
            predictor.observe(obs(1, mem=0.001))
        predictor.observe(obs(6, mem=0.040))  # jump of 0.039
        assert predictor.window_length == 1
        assert predictor.predict() == 6

    def test_large_threshold_never_resets(self):
        predictor = VariableWindowPredictor(128, 0.030)
        for _ in range(10):
            predictor.observe(obs(1, mem=0.001))
        predictor.observe(obs(5, mem=0.025))  # jump 0.024 < 0.030
        assert predictor.window_length == 11
        assert predictor.predict() == 1

    def test_name_encodes_parameters(self):
        predictor = VariableWindowPredictor(128, 0.005)
        assert predictor.name == "VarWindow_128_0.005"

    def test_reset_clears_metric_memory(self):
        predictor = VariableWindowPredictor(128, 0.005)
        predictor.observe(obs(1, mem=0.001))
        predictor.reset()
        # After reset, a big metric value must not count as a transition
        # (there is no previous metric to compare with).
        predictor.observe(obs(6, mem=0.040))
        assert predictor.window_length == 1

    def test_window_capacity_still_applies(self):
        predictor = VariableWindowPredictor(4, 0.050)
        for i in range(10):
            predictor.observe(obs(2, mem=0.006))
        assert predictor.window_length == 4
