"""Tests for the UPC-based classification pitfall module."""

import pytest

from repro.core.governor import IntervalCounters
from repro.core.upc_phases import (
    UPC_BREAKPOINTS,
    UPC_REFERENCE,
    upc_phase_table,
    upc_slack_metric,
)
from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.workloads.segments import SegmentSpec


def counters_with_upc(upc, uops=1e8):
    return IntervalCounters(
        uops=uops,
        mem_transactions=0.0,
        instructions=uops,
        tsc_cycles=uops / upc,
    )


class TestMetric:
    def test_slack_grows_as_upc_falls(self):
        slacks = [
            upc_slack_metric(counters_with_upc(u))
            for u in (1.9, 1.2, 0.6, 0.2)
        ]
        assert all(b > a for a, b in zip(slacks, slacks[1:]))

    def test_slack_clamped_at_zero(self):
        assert upc_slack_metric(counters_with_upc(UPC_REFERENCE + 0.5)) == 0.0


class TestTable:
    def test_six_phases(self):
        assert upc_phase_table().num_phases == len(UPC_BREAKPOINTS) + 1

    @pytest.mark.parametrize(
        "upc,expected",
        [(1.9, 1), (1.2, 2), (0.8, 3), (0.5, 4), (0.3, 5), (0.1, 6)],
    )
    def test_classification_by_upc(self, upc, expected):
        table = upc_phase_table()
        assert table.classify(upc_slack_metric(counters_with_upc(upc))) == expected


class TestActionDependence:
    def test_upc_phase_changes_with_frequency(self):
        """The core pitfall: the same program behaviour classifies into
        different UPC phases at different operating points."""
        timing = TimingModel()
        speedstep = SpeedStepTable()
        segment = SegmentSpec(
            uops=100_000_000, mem_per_uop=0.033, upc_core=1.9
        )
        table = upc_phase_table()
        phases = set()
        for point in speedstep:
            upc = timing.upc(segment, point)
            slack = max(0.0, UPC_REFERENCE - upc)
            phases.add(table.classify(slack))
        assert len(phases) > 1

    def test_mem_per_uop_phase_does_not(self):
        from repro.core.phases import PhaseTable

        segment = SegmentSpec(
            uops=100_000_000, mem_per_uop=0.033, upc_core=1.9
        )
        table = PhaseTable()
        phases = {table.classify(segment.mem_per_uop) for _ in SpeedStepTable()}
        assert len(phases) == 1
