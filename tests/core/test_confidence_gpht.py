"""Tests for the confidence-counter GPHT variant (extension)."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, PhaseObservation
from repro.core.predictors.confidence import ConfidenceGPHTPredictor
from repro.errors import ConfigurationError

TABLE = PhaseTable()


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


def drive(predictor, phases):
    predictions = []
    for phase in phases:
        predictor.observe(
            PhaseObservation(
                phase=phase, mem_per_uop=TABLE.representative_value(phase)
            )
        )
        predictions.append(predictor.predict())
    return predictions


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConfidenceGPHTPredictor(gphr_depth=0)
        with pytest.raises(ConfigurationError):
            ConfidenceGPHTPredictor(pht_entries=0)
        with pytest.raises(ConfigurationError):
            ConfidenceGPHTPredictor(max_confidence=0)
        with pytest.raises(ConfigurationError):
            ConfidenceGPHTPredictor(max_confidence=3, use_threshold=4)
        with pytest.raises(ConfigurationError):
            ConfidenceGPHTPredictor(use_threshold=0)

    def test_name(self):
        predictor = ConfidenceGPHTPredictor(8, 128, 3, 2)
        assert predictor.name == "ConfGPHT_8_128_c3t2"

    def test_cold_prediction(self):
        assert ConfidenceGPHTPredictor().predict() == 1


class TestConfidenceMechanics:
    def test_confidence_builds_with_correct_outcomes(self):
        predictor = ConfidenceGPHTPredictor(gphr_depth=2, max_confidence=3)
        drive(predictor, [1, 2] * 6)
        tag = (2, 1)
        assert predictor.entry_confidence(tag) == 3

    def test_single_wrong_outcome_does_not_flip_prediction(self):
        """The point of hysteresis: one anomaly dents confidence but the
        established prediction survives — unlike the plain GPHT, which
        retrains the corrupted entry immediately."""
        sequence = [1, 2] * 8 + [1, 5] + [1, 2, 1]
        confident = ConfidenceGPHTPredictor(
            gphr_depth=2, max_confidence=3, use_threshold=1
        )
        plain = GPHTPredictor(gphr_depth=2, pht_entries=128)
        drive(confident, sequence)
        drive(plain, sequence)
        # Both predictors now sit at the (1, 2) context.  The anomaly
        # taught plain GPHT that 5 follows; hysteresis kept 2.
        assert confident.predict() == 2
        assert plain.predict() == 5

    def test_persistent_change_eventually_retrains(self):
        predictor = ConfidenceGPHTPredictor(
            gphr_depth=2, max_confidence=2, use_threshold=1
        )
        drive(predictor, [1, 2] * 6)
        predictions = drive(predictor, [1, 5] * 12)
        sequence = [1, 5] * 12
        # The tail is retrained to the new pattern.
        tail_hits = [
            predictions[i] == sequence[i + 1]
            for i in range(16, len(sequence) - 1)
        ]
        assert all(tail_hits)

    def test_occupancy_bounded(self):
        predictor = ConfidenceGPHTPredictor(gphr_depth=3, pht_entries=8)
        drive(predictor, [((i * 5) % 6) + 1 for i in range(200)])
        assert predictor.pht_occupancy <= 8

    def test_reset(self):
        predictor = ConfidenceGPHTPredictor()
        drive(predictor, [1, 2, 3])
        predictor.reset()
        assert predictor.pht_occupancy == 0
        assert predictor.predict() == 1


class TestAgainstPlainGPHT:
    def test_matches_plain_gpht_on_clean_patterns(self):
        series = series_for([1, 5, 3, 6, 2, 4] * 40)
        plain = evaluate_predictor(GPHTPredictor(8, 128), series)
        confident = evaluate_predictor(
            ConfidenceGPHTPredictor(8, 128), series
        )
        assert confident.accuracy == pytest.approx(plain.accuracy, abs=0.03)

    def test_absorbs_isolated_anomalies_better(self):
        """A periodic pattern with rare one-sample corruptions: plain
        GPHT retrains on every anomaly and mispredicts twice (once on
        the anomaly, once on the corrupted entry's next use); the
        confident variant keeps the established prediction."""
        motif = [1, 4, 2, 5]
        phases = []
        for repeat in range(80):
            block = list(motif)
            if repeat % 10 == 5:
                block[2] = 6  # rare corruption
            phases.extend(block)
        series = series_for(phases)
        plain = evaluate_predictor(GPHTPredictor(8, 256), series)
        confident = evaluate_predictor(
            ConfidenceGPHTPredictor(8, 256, max_confidence=3), series
        )
        assert confident.accuracy >= plain.accuracy
