"""Tests for objective-driven policy derivation (extension)."""

import pytest

from repro.core.objectives import (
    OBJECTIVES,
    derive_objective_policy,
    derive_power_capped_policy,
)
from repro.core.phases import PhaseTable
from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.power.model import PowerModel
from repro.workloads.segments import SegmentSpec

TABLE = PhaseTable()
SPEEDSTEP = SpeedStepTable()
TIMING = TimingModel()
POWER = PowerModel()


class TestObjectivePolicies:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ConfigurationError):
            derive_objective_policy("speed")

    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_policies_are_complete(self, objective):
        policy = derive_objective_policy(objective)
        for phase_id in TABLE.phase_ids:
            assert policy.setting_for(phase_id) in SPEEDSTEP.points
        assert policy.name == f"objective_{objective}"

    def test_energy_is_most_aggressive_ed2p_least(self):
        """Higher delay exponents weight performance more, so for every
        phase: f(energy) <= f(edp) <= f(ed2p)."""
        energy = derive_objective_policy("energy")
        edp = derive_objective_policy("edp")
        ed2p = derive_objective_policy("ed2p")
        for phase_id in TABLE.phase_ids:
            assert (
                energy.setting_for(phase_id).frequency_mhz
                <= edp.setting_for(phase_id).frequency_mhz
            )
            assert (
                edp.setting_for(phase_id).frequency_mhz
                <= ed2p.setting_for(phase_id).frequency_mhz
            )

    def test_edp_policy_slows_memory_phases(self):
        policy = derive_objective_policy("edp")
        assert policy.setting_for(6).frequency_mhz < 1500

    def test_edp_policy_monotonic(self):
        assert derive_objective_policy("edp").is_monotonic()

    def test_chosen_point_actually_minimises_the_objective(self):
        policy = derive_objective_policy("edp")
        for phase_id in TABLE.phase_ids:
            witness = SegmentSpec(
                uops=100_000_000,
                mem_per_uop=TABLE.representative_value(phase_id),
                upc_core=1.3,
            )
            values = {}
            for point in SPEEDSTEP:
                execution = TIMING.execute(witness, point)
                energy = (
                    POWER.power(point, execution.duty) * execution.seconds
                )
                values[point] = energy * execution.seconds
            chosen = policy.setting_for(phase_id)
            assert values[chosen] == pytest.approx(min(values.values()))

    def test_explicit_representatives_are_used(self):
        """A CPU-bound witness for phase 6 must keep it at high
        frequency under ed2p even though the bin is memory-bound."""
        cpu_bound = SegmentSpec(
            uops=100_000_000, mem_per_uop=0.03, upc_core=1.3, mem_overlap=0.74
        )
        policy = derive_objective_policy(
            "ed2p", representatives={6: cpu_bound}
        )
        default = derive_objective_policy("ed2p")
        assert (
            policy.setting_for(6).frequency_mhz
            >= default.setting_for(6).frequency_mhz
        )


class TestPowerCappedPolicies:
    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigurationError):
            derive_power_capped_policy(0.0)

    def test_generous_cap_keeps_full_speed(self):
        policy = derive_power_capped_policy(50.0)
        for phase_id in TABLE.phase_ids:
            assert policy.setting_for(phase_id).frequency_mhz == 1500

    def test_tiny_cap_forces_slowest(self):
        policy = derive_power_capped_policy(0.5)
        for phase_id in TABLE.phase_ids:
            assert policy.setting_for(phase_id).frequency_mhz == 600

    def test_moderate_cap_throttles_cpu_bound_phases_hardest(self):
        """CPU-bound phases draw the most power at a given frequency, so
        they hit the cap first and get throttled lower."""
        policy = derive_power_capped_policy(6.0)
        assert (
            policy.setting_for(1).frequency_mhz
            <= policy.setting_for(6).frequency_mhz
        )

    def test_cap_is_respected_at_chosen_points(self):
        cap = 6.0
        policy = derive_power_capped_policy(cap)
        for phase_id in TABLE.phase_ids:
            witness = SegmentSpec(
                uops=100_000_000,
                mem_per_uop=TABLE.representative_value(phase_id),
                upc_core=1.3,
            )
            point = policy.setting_for(phase_id)
            execution = TIMING.execute(witness, point)
            draw = POWER.power(point, execution.duty)
            if point != SPEEDSTEP.slowest:
                assert draw <= cap + 1e-9

    def test_name_encodes_cap(self):
        assert derive_power_capped_policy(7.5).name == "power_cap_7.5W"
