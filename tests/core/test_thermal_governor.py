"""Tests for the dynamic-thermal-management governor (extension)."""

import pytest

from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import GPHTPredictor
from repro.core.thermal_governor import ThermalManagedGovernor
from repro.cpu.frequency import SpeedStepTable
from repro.errors import ConfigurationError
from repro.power.thermal import ThermalModel
from repro.system.machine import Machine
from repro.workloads.segments import uniform_trace

SPEEDSTEP = SpeedStepTable()


def hot_trace(n=600):
    """A fully CPU-bound workload: maximum power at full speed."""
    return uniform_trace(
        "hot", [(0.0, 1.8)] * n, uops_per_segment=100_000_000
    )


class TestConstruction:
    def test_validation(self):
        thermal = ThermalModel()
        inner = ReactiveGovernor()
        with pytest.raises(ConfigurationError):
            ThermalManagedGovernor(inner, thermal, trip_c=20.0)  # < ambient
        with pytest.raises(ConfigurationError):
            ThermalManagedGovernor(inner, thermal, hysteresis_c=-1.0)

    def test_name_composes(self):
        governor = ThermalManagedGovernor(
            ReactiveGovernor(), ThermalModel(), trip_c=75.0
        )
        assert governor.name == "Thermal_75C_Reactive"

    def test_rejects_foreign_cap(self):
        from repro.cpu.frequency import OperatingPoint

        with pytest.raises(ConfigurationError):
            ThermalManagedGovernor(
                ReactiveGovernor(),
                ThermalModel(),
                cap=OperatingPoint(900, 1000),
            )


class TestThrottling:
    def run_hot(self, trip_c=70.0, n=600):
        machine = Machine()
        thermal = ThermalModel()
        governor = ThermalManagedGovernor(
            PhasePredictionGovernor(GPHTPredictor(8, 128)),
            thermal,
            trip_c=trip_c,
        )
        result = machine.run(hot_trace(n), governor, thermal=thermal)
        return result, thermal, governor

    def test_unmanaged_hot_workload_exceeds_trip(self):
        machine = Machine()
        thermal = ThermalModel()
        machine.run(
            hot_trace(), StaticGovernor(machine.speedstep.fastest),
            thermal=thermal,
        )
        assert thermal.peak_temperature_c > 80.0

    def test_throttling_engages_and_cools(self):
        result, thermal, governor = self.run_hot(trip_c=70.0)
        assert governor.throttle_engagements >= 1
        # After the emergency the cap pulls the die back down: the
        # trajectory never runs away to the unmanaged steady state.
        assert thermal.peak_temperature_c < 83.0
        # The run actually spent intervals at the capped frequency.
        assert 600 in result.frequency_series()

    def test_trip_overshoot_is_bounded(self):
        """The die may overshoot the trip point by at most the heating
        accumulated during one 100M-uop interval."""
        _, thermal, governor = self.run_hot(trip_c=70.0)
        assert thermal.peak_temperature_c < governor.trip_c + 6.0

    def test_phase_management_unaffected_when_cool(self):
        machine = Machine()
        thermal = ThermalModel()
        governor = ThermalManagedGovernor(
            PhasePredictionGovernor(GPHTPredictor(8, 128)),
            thermal,
            trip_c=95.0,  # never reached
        )
        trace = uniform_trace(
            "mem", [(0.04, 1.2)] * 30, uops_per_segment=100_000_000
        )
        result = machine.run(trace, governor, thermal=thermal)
        assert governor.throttle_engagements == 0
        # The inner governor's memory-phase decision passes through.
        assert result.frequency_series()[-1] == 600

    def test_hysteresis_prevents_single_interval_flapping(self):
        _, thermal, governor = self.run_hot(trip_c=70.0, n=600)
        # With 3 degC hysteresis and a ~6 s time constant, engagements
        # are bounded well below the interval count.
        assert governor.throttle_engagements < 20

    def test_reset_clears_thermal_and_throttle_state(self):
        _, thermal, governor = self.run_hot()
        governor.reset()
        assert thermal.temperature_c == thermal.ambient_c
        assert not governor.throttled
        assert governor.throttle_engagements == 0
