"""Tests for the direct-mapped (hashed, untagged) GPHT variant."""

import pytest

from repro.analysis.accuracy import evaluate_predictor
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, PhaseObservation
from repro.core.predictors.direct_mapped import DirectMappedGPHTPredictor
from repro.errors import ConfigurationError
from repro.workloads.spec2000 import benchmark

TABLE = PhaseTable()


def series_for(phases):
    return [TABLE.representative_value(p) for p in phases]


def drive(predictor, phases):
    for phase in phases:
        predictor.observe(
            PhaseObservation(
                phase=phase, mem_per_uop=TABLE.representative_value(phase)
            )
        )
        predictor.predict()


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DirectMappedGPHTPredictor(table_entries=100)

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            DirectMappedGPHTPredictor(gphr_depth=0)

    def test_name(self):
        assert DirectMappedGPHTPredictor(8, 128).name == "DMGPHT_8_128"

    def test_cold_prediction(self):
        assert DirectMappedGPHTPredictor().predict() == 1


class TestHashing:
    def test_index_in_range(self):
        predictor = DirectMappedGPHTPredictor(4, 64)
        for history in [(1, 2, 3, 4), (6, 6, 6, 6), (0, 0, 0, 1)]:
            assert 0 <= predictor.index_of(history) < 64

    def test_index_deterministic(self):
        predictor = DirectMappedGPHTPredictor(4, 64)
        assert predictor.index_of((1, 2, 3, 4)) == predictor.index_of(
            (1, 2, 3, 4)
        )

    def test_different_histories_usually_differ(self):
        predictor = DirectMappedGPHTPredictor(4, 1024)
        indices = {
            predictor.index_of((a, b, 1, 1))
            for a in range(1, 7)
            for b in range(1, 7)
        }
        # 36 histories into 1024 slots: expect almost no collisions.
        assert len(indices) >= 33


class TestPrediction:
    def test_learns_alternation(self):
        predictor = DirectMappedGPHTPredictor(4, 64)
        series = series_for([1, 6] * 30)
        result = evaluate_predictor(predictor, series)
        assert result.accuracy > 0.9

    def test_miss_falls_back_to_last_value(self):
        predictor = DirectMappedGPHTPredictor(4, 64)
        drive(predictor, [5])
        assert predictor.predict() == 5

    def test_reset(self):
        predictor = DirectMappedGPHTPredictor(4, 64)
        drive(predictor, [1, 2, 3])
        predictor.reset()
        assert predictor.predict() == 1


class TestAliasing:
    def test_tiny_table_aliases_and_degrades(self):
        """At matched capacities on a pattern-rich benchmark, the
        untagged direct-mapped table pays an aliasing penalty the
        associative (tagged, LRU) software table does not."""
        series = benchmark("applu_in").mem_series(800)
        direct_small = evaluate_predictor(
            DirectMappedGPHTPredictor(8, 32), series
        )
        direct_large = evaluate_predictor(
            DirectMappedGPHTPredictor(8, 1024), series
        )
        assert direct_large.accuracy > direct_small.accuracy + 0.03

    def test_associative_beats_direct_mapped_at_equal_capacity(self):
        series = benchmark("equake_in").mem_series(800)
        associative = evaluate_predictor(GPHTPredictor(8, 128), series)
        direct = evaluate_predictor(
            DirectMappedGPHTPredictor(8, 128), series
        )
        assert associative.accuracy >= direct.accuracy - 0.01

    def test_accuracy_grows_with_table_size_but_tags_still_win(self):
        """Capacity washes out conflicts slowly; even at 8x the entries
        the untagged table trails the tagged LRU design on the most
        pattern-rich benchmark (measured: 85.5% at 4096 vs 90.7%
        associative at 1024) — the software implementation's tags are
        not a luxury."""
        series = benchmark("applu_in").mem_series(800)
        accuracies = [
            evaluate_predictor(
                DirectMappedGPHTPredictor(8, n), series
            ).accuracy
            for n in (32, 128, 1024, 4096)
        ]
        assert all(b > a for a, b in zip(accuracies, accuracies[1:]))
        associative = evaluate_predictor(GPHTPredictor(8, 1024), series)
        assert associative.accuracy > accuracies[-1]
