"""Tests for phase definitions and classification (paper Table 1)."""

import pytest

from repro.core.phases import PAPER_PHASE_EDGES, PhaseTable
from repro.errors import ConfigurationError


class TestPaperTable:
    """The exact Table 1 of the paper."""

    def setup_method(self):
        self.table = PhaseTable()

    def test_six_phases(self):
        assert self.table.num_phases == 6
        assert self.table.phase_ids == (1, 2, 3, 4, 5, 6)

    def test_edges(self):
        assert self.table.edges == (0.005, 0.010, 0.015, 0.020, 0.030)
        assert PAPER_PHASE_EDGES == self.table.edges

    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, 1),
            (0.0049, 1),
            (0.005, 2),
            (0.0099, 2),
            (0.010, 3),
            (0.0149, 3),
            (0.015, 4),
            (0.0199, 4),
            (0.020, 5),
            (0.0299, 5),
            (0.030, 6),
            (0.10, 6),
        ],
    )
    def test_table1_classification(self, value, expected):
        assert self.table.classify(value) == expected

    def test_bins_are_half_open(self):
        """Each edge value belongs to the *upper* phase."""
        for i, edge in enumerate(self.table.edges):
            assert self.table.classify(edge) == i + 2

    def test_rejects_negative_metric(self):
        with pytest.raises(ConfigurationError):
            self.table.classify(-0.001)

    def test_classify_series(self):
        assert self.table.classify_series([0.0, 0.012, 0.05]) == [1, 3, 6]

    def test_definitions_cover_the_line(self):
        definitions = self.table.definitions
        assert definitions[0].lower == 0.0
        assert definitions[-1].upper == float("inf")
        for earlier, later in zip(definitions, definitions[1:]):
            assert earlier.upper == later.lower

    def test_definition_contains_agrees_with_classify(self):
        for value in (0.0, 0.004, 0.0125, 0.02, 0.05):
            phase = self.table.classify(value)
            assert self.table.definition(phase).contains(value)

    def test_definition_out_of_range(self):
        with pytest.raises(ConfigurationError):
            self.table.definition(0)
        with pytest.raises(ConfigurationError):
            self.table.definition(7)

    def test_representative_values_classify_into_their_phase(self):
        for phase_id in self.table.phase_ids:
            value = self.table.representative_value(phase_id)
            assert self.table.classify(value) == phase_id

    def test_representative_values_are_monotone(self):
        values = [
            self.table.representative_value(p) for p in self.table.phase_ids
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_str_of_definitions(self):
        assert "phase 1" in str(self.table.definition(1))
        assert ">=" in str(self.table.definition(6))


class TestCustomTables:
    def test_single_edge_gives_two_phases(self):
        table = PhaseTable([0.01])
        assert table.num_phases == 2
        assert table.classify(0.005) == 1
        assert table.classify(0.015) == 2

    def test_rejects_empty_edges(self):
        with pytest.raises(ConfigurationError):
            PhaseTable([])

    def test_rejects_unordered_edges(self):
        with pytest.raises(ConfigurationError, match="increasing"):
            PhaseTable([0.01, 0.005])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ConfigurationError, match="increasing"):
            PhaseTable([0.01, 0.01])

    def test_rejects_nonpositive_edges(self):
        with pytest.raises(ConfigurationError, match="positive"):
            PhaseTable([0.0, 0.01])

    def test_equality_and_hash(self):
        assert PhaseTable() == PhaseTable()
        assert PhaseTable([0.01]) != PhaseTable([0.02])
        assert hash(PhaseTable()) == hash(PhaseTable())

    def test_equality_against_other_type(self):
        assert PhaseTable() != "not a table"

    def test_representative_value_single_edge(self):
        table = PhaseTable([0.01])
        top = table.representative_value(2)
        assert table.classify(top) == 2
