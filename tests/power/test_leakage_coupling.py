"""Tests for the temperature-dependent leakage coupling (extension)."""

import pytest

from repro.core.governor import StaticGovernor
from repro.cpu.frequency import SpeedStepTable
from repro.errors import ConfigurationError
from repro.power.model import PowerModel
from repro.power.thermal import ThermalModel
from repro.system.machine import Machine
from repro.workloads.segments import uniform_trace

FASTEST = SpeedStepTable().fastest


class TestModel:
    def test_default_model_ignores_temperature(self):
        model = PowerModel()
        assert model.leakage_power(FASTEST, 90.0) == model.leakage_power(
            FASTEST
        )

    def test_leakage_grows_with_temperature(self):
        model = PowerModel(leakage_temp_coefficient=0.01)
        cold = model.leakage_power(FASTEST, 35.0)
        hot = model.leakage_power(FASTEST, 85.0)
        assert hot == pytest.approx(cold * 1.5)

    def test_reference_temperature_is_neutral(self):
        model = PowerModel(leakage_temp_coefficient=0.01)
        assert model.leakage_power(FASTEST, 35.0) == pytest.approx(
            model.leakage_power(FASTEST)
        )

    def test_scale_never_goes_negative(self):
        model = PowerModel(leakage_temp_coefficient=0.05)
        assert model.leakage_power(FASTEST, -100.0) == 0.0

    def test_rejects_negative_coefficient(self):
        with pytest.raises(ConfigurationError):
            PowerModel(leakage_temp_coefficient=-0.01)

    def test_total_power_includes_scaled_leakage(self):
        model = PowerModel(leakage_temp_coefficient=0.01)
        cool = model.power(FASTEST, 1.0, temperature_c=35.0)
        hot = model.power(FASTEST, 1.0, temperature_c=85.0)
        assert hot > cool


class TestMachineCoupling:
    def hot_trace(self, n=400):
        return uniform_trace(
            "hot", [(0.0, 1.8)] * n, uops_per_segment=100_000_000
        )

    def test_coupled_run_consumes_more_energy(self):
        """As the die heats, leakage rises, so the coupled run ends up
        above the temperature-free accounting."""
        coupled_machine = Machine(
            power=PowerModel(leakage_temp_coefficient=0.01)
        )
        flat_machine = Machine()
        trace = self.hot_trace()

        flat = flat_machine.run(
            trace, StaticGovernor(flat_machine.speedstep.fastest),
            thermal=ThermalModel(),
        )
        coupled = coupled_machine.run(
            trace, StaticGovernor(coupled_machine.speedstep.fastest),
            thermal=ThermalModel(),
        )
        assert coupled.total_energy_j > flat.total_energy_j * 1.02

    def test_coupling_inert_without_thermal_model(self):
        """With no thermal model attached there is no temperature to
        scale by: the coupled machine matches the flat one exactly."""
        coupled_machine = Machine(
            power=PowerModel(leakage_temp_coefficient=0.01)
        )
        flat_machine = Machine()
        trace = self.hot_trace(n=50)
        coupled = coupled_machine.run(
            trace, StaticGovernor(coupled_machine.speedstep.fastest)
        )
        flat = flat_machine.run(
            trace, StaticGovernor(flat_machine.speedstep.fastest)
        )
        assert coupled.total_energy_j == pytest.approx(flat.total_energy_j)

    def test_positive_feedback_stays_bounded(self):
        """Leakage heats the die which raises leakage — with realistic
        coefficients the loop converges rather than running away."""
        machine = Machine(power=PowerModel(leakage_temp_coefficient=0.01))
        thermal = ThermalModel()
        machine.run(
            self.hot_trace(), StaticGovernor(machine.speedstep.fastest),
            thermal=thermal,
        )
        # Bounded well below any runaway: the no-coupling steady state
        # is ~83 degC; the coupled one sits a few degrees above it.
        assert thermal.peak_temperature_c < 95.0
        assert thermal.peak_temperature_c > 80.0
