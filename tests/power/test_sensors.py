"""Tests for the sense-resistor measurement front end."""

import pytest

from repro.errors import ConfigurationError
from repro.power.sensors import (
    SENSE_RESISTANCE_OHMS,
    PowerDeliverySensors,
    SenseReading,
)


class TestRoundTrip:
    """The core property: DAQ arithmetic recovers the true power."""

    @pytest.mark.parametrize("power", [0.5, 2.0, 7.3, 13.0])
    @pytest.mark.parametrize("v_cpu", [0.956, 1.228, 1.484])
    def test_power_recovered_exactly(self, power, v_cpu):
        sensors = PowerDeliverySensors()
        reading = sensors.sense(power, v_cpu)
        assert reading.power_watts() == pytest.approx(power, rel=1e-9)

    def test_current_recovered(self):
        sensors = PowerDeliverySensors()
        reading = sensors.sense(10.0, 1.25)
        assert reading.current_amps() == pytest.approx(8.0)

    def test_zero_power(self):
        reading = PowerDeliverySensors().sense(0.0, 1.0)
        assert reading.v1 == reading.v2 == reading.v_cpu
        assert reading.power_watts() == 0.0


class TestPhysicalLayout:
    def test_upstream_voltages_exceed_cpu_voltage(self):
        """Current flowing toward the CPU drops voltage across the
        resistors, so V1 and V2 sit above V_CPU."""
        reading = PowerDeliverySensors().sense(12.0, 1.484)
        assert reading.v1 > reading.v_cpu
        assert reading.v2 > reading.v_cpu

    def test_default_split_is_even(self):
        reading = PowerDeliverySensors().sense(10.0, 1.0)
        assert reading.v1 == pytest.approx(reading.v2)

    def test_asymmetric_split_still_round_trips(self):
        sensors = PowerDeliverySensors(current_split=0.7)
        reading = sensors.sense(9.0, 1.2)
        assert reading.v1 != pytest.approx(reading.v2)
        assert reading.power_watts() == pytest.approx(9.0, rel=1e-9)

    def test_paper_resistance_constant(self):
        assert SENSE_RESISTANCE_OHMS == 0.002

    def test_voltage_drop_scale_is_millivolts(self):
        """At ~8 A the drop across 2 mOhm is a few mV — the reason the
        paper needs a signal conditioning unit."""
        reading = PowerDeliverySensors().sense(12.0, 1.484)
        drop = reading.v1 - reading.v_cpu
        assert 0.001 < drop < 0.02


class TestValidation:
    def test_rejects_bad_resistance(self):
        with pytest.raises(ConfigurationError):
            PowerDeliverySensors(resistance_ohms=0.0)

    def test_rejects_bad_split(self):
        with pytest.raises(ConfigurationError):
            PowerDeliverySensors(current_split=0.0)
        with pytest.raises(ConfigurationError):
            PowerDeliverySensors(current_split=1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            PowerDeliverySensors().sense(-1.0, 1.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ConfigurationError):
            PowerDeliverySensors().sense(1.0, 0.0)


def test_sense_reading_custom_resistance():
    reading = SenseReading(v1=1.01, v2=1.01, v_cpu=1.0)
    # With 10 mOhm resistors the same drops mean 5x less current.
    assert reading.current_amps(0.01) == pytest.approx(2.0)
