"""Tests for the CMOS power model."""

import pytest

from repro.cpu.frequency import SpeedStepTable
from repro.errors import ConfigurationError
from repro.power.model import PowerModel

TABLE = SpeedStepTable()
FASTEST = TABLE.fastest
SLOWEST = TABLE.slowest


class TestValidation:
    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigurationError):
            PowerModel(core_capacitance=-1)
        with pytest.raises(ConfigurationError):
            PowerModel(leakage_coefficient=-0.1)

    def test_rejects_zero_total_capacitance(self):
        with pytest.raises(ConfigurationError):
            PowerModel(core_capacitance=0.0, idle_capacitance=0.0)

    def test_rejects_out_of_range_duty(self):
        model = PowerModel()
        with pytest.raises(ConfigurationError):
            model.dynamic_power(FASTEST, 1.5)
        with pytest.raises(ConfigurationError):
            model.dynamic_power(FASTEST, -0.1)


class TestCalibration:
    """The default model must land in the Pentium-M's measured envelope
    (the paper's Figure 10 power traces span roughly 2-13 W)."""

    def test_peak_power_near_12w(self):
        model = PowerModel()
        assert 10.0 < model.max_power(FASTEST) < 14.0

    def test_idle_slow_power_under_3w(self):
        model = PowerModel()
        assert model.power(SLOWEST, 0.1) < 3.0

    def test_leakage_is_minor_share_at_peak(self):
        model = PowerModel()
        assert model.leakage_power(FASTEST) < 0.3 * model.max_power(FASTEST)


class TestStructure:
    def test_total_is_dynamic_plus_leakage(self):
        model = PowerModel()
        assert model.power(FASTEST, 0.5) == pytest.approx(
            model.dynamic_power(FASTEST, 0.5) + model.leakage_power(FASTEST)
        )

    def test_power_increases_with_duty(self):
        model = PowerModel()
        powers = [model.power(FASTEST, d) for d in (0.0, 0.25, 0.5, 1.0)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_power_increases_with_operating_point(self):
        """Along the SpeedStep curve (V and f both rising), power rises
        strictly — the premise of DVFS savings."""
        model = PowerModel()
        powers = [model.power(p, 1.0) for p in sorted(TABLE)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_dynamic_scales_with_v_squared_f(self):
        model = PowerModel(leakage_coefficient=0.0)
        ratio = model.power(SLOWEST, 1.0) / model.power(FASTEST, 1.0)
        expected = (
            SLOWEST.voltage_v**2 * SLOWEST.frequency_ghz
        ) / (FASTEST.voltage_v**2 * FASTEST.frequency_ghz)
        assert ratio == pytest.approx(expected)

    def test_slowest_point_saves_most_power(self):
        """Full-speed vs slowest at equal duty: the ratio drives the
        >60% EDP improvements of the memory-bound benchmarks."""
        model = PowerModel()
        assert model.power(SLOWEST, 1.0) / model.power(FASTEST, 1.0) < 0.35

    def test_stalled_core_still_draws_idle_power(self):
        model = PowerModel()
        assert model.dynamic_power(FASTEST, 0.0) > 0.0
