"""Tests for energy accounting and EDP helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.power.energy import EnergyAccumulator, edp_improvement, energy_savings


class TestEnergyAccumulator:
    def test_accumulates_energy_and_time(self):
        acc = EnergyAccumulator()
        acc.add_slice(10.0, 2.0)
        acc.add_slice(5.0, 1.0)
        assert acc.energy_j == pytest.approx(25.0)
        assert acc.seconds == pytest.approx(3.0)

    def test_average_power(self):
        acc = EnergyAccumulator()
        acc.add_slice(10.0, 2.0)
        acc.add_slice(4.0, 2.0)
        assert acc.average_power_w == pytest.approx(7.0)

    def test_average_power_empty(self):
        assert EnergyAccumulator().average_power_w == 0.0

    def test_edp(self):
        acc = EnergyAccumulator()
        acc.add_slice(10.0, 3.0)
        assert acc.edp == pytest.approx(90.0)

    def test_zero_duration_slice_is_free(self):
        acc = EnergyAccumulator()
        acc.add_slice(10.0, 0.0)
        assert acc.energy_j == 0.0

    def test_reset(self):
        acc = EnergyAccumulator()
        acc.add_slice(10.0, 1.0)
        acc.reset()
        assert acc.energy_j == 0.0
        assert acc.seconds == 0.0

    def test_rejects_negative_inputs(self):
        acc = EnergyAccumulator()
        with pytest.raises(ConfigurationError):
            acc.add_slice(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            acc.add_slice(1.0, -1.0)


class TestComparisonHelpers:
    def test_edp_improvement(self):
        assert edp_improvement(100.0, 66.0) == pytest.approx(0.34)

    def test_edp_improvement_negative_when_worse(self):
        assert edp_improvement(100.0, 120.0) == pytest.approx(-0.2)

    def test_edp_improvement_rejects_bad_baseline(self):
        with pytest.raises(ConfigurationError):
            edp_improvement(0.0, 50.0)

    def test_energy_savings(self):
        assert energy_savings(200.0, 150.0) == pytest.approx(0.25)

    def test_energy_savings_rejects_bad_baseline(self):
        with pytest.raises(ConfigurationError):
            energy_savings(-1.0, 1.0)
