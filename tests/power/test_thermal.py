"""Tests for the lumped RC thermal model (extension)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.power.thermal import ThermalModel


class TestConstruction:
    def test_starts_at_ambient(self):
        model = ThermalModel(ambient_c=30.0)
        assert model.temperature_c == 30.0
        assert model.peak_temperature_c == 30.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(r_th_k_per_w=0.0)
        with pytest.raises(ConfigurationError):
            ThermalModel(c_th_j_per_k=-1.0)

    def test_time_constant(self):
        model = ThermalModel(r_th_k_per_w=4.0, c_th_j_per_k=1.5)
        assert model.time_constant_s == pytest.approx(6.0)


class TestDynamics:
    def test_steady_state(self):
        model = ThermalModel(r_th_k_per_w=4.0, ambient_c=35.0)
        assert model.steady_state_c(12.0) == pytest.approx(83.0)
        assert model.steady_state_c(0.0) == pytest.approx(35.0)

    def test_converges_to_steady_state(self):
        model = ThermalModel()
        target = model.steady_state_c(10.0)
        model.advance(10.0, dt_s=20 * model.time_constant_s)
        assert model.temperature_c == pytest.approx(target, abs=1e-6)

    def test_one_time_constant_covers_63_percent(self):
        model = ThermalModel()
        target = model.steady_state_c(10.0)
        start = model.temperature_c
        model.advance(10.0, dt_s=model.time_constant_s)
        fraction = (model.temperature_c - start) / (target - start)
        assert fraction == pytest.approx(1 - math.exp(-1), abs=1e-9)

    def test_cools_when_power_drops(self):
        model = ThermalModel()
        model.advance(12.0, 30.0)
        hot = model.temperature_c
        model.advance(1.0, 5.0)
        assert model.temperature_c < hot

    def test_never_cools_below_ambient(self):
        model = ThermalModel()
        model.advance(0.0, 1000.0)
        assert model.temperature_c == pytest.approx(model.ambient_c)

    def test_step_composition_is_exact(self):
        """Two half-steps must equal one full step (closed-form exp)."""
        one = ThermalModel()
        two = ThermalModel()
        one.advance(8.0, 2.0)
        two.advance(8.0, 1.0)
        two.advance(8.0, 1.0)
        assert two.temperature_c == pytest.approx(one.temperature_c, rel=1e-12)

    def test_zero_duration_is_identity(self):
        model = ThermalModel()
        model.advance(12.0, 1.0)
        before = model.temperature_c
        model.advance(12.0, 0.0)
        assert model.temperature_c == before

    def test_rejects_negative_inputs(self):
        model = ThermalModel()
        with pytest.raises(ConfigurationError):
            model.advance(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            model.advance(1.0, -1.0)


class TestBookkeeping:
    def test_history_and_peak(self):
        model = ThermalModel()
        model.advance(12.0, 10.0)
        model.advance(1.0, 10.0)
        times, temperatures = model.history()
        assert times == [10.0, 20.0]
        assert model.peak_temperature_c == pytest.approx(max(temperatures))
        assert model.peak_temperature_c == pytest.approx(temperatures[0])

    def test_reset(self):
        model = ThermalModel()
        model.advance(12.0, 10.0)
        model.reset()
        assert model.temperature_c == model.ambient_c
        assert model.time_s == 0.0
        assert model.history() == ([], [])
