"""Tests for the simulated DAQ and the logging machine."""

import pytest

from repro.errors import ConfigurationError
from repro.power.daq import (
    APP_RUNNING_BIT,
    IN_HANDLER_BIT,
    PHASE_TOGGLE_BIT,
    DataAcquisitionSystem,
    LoggingMachine,
)

RUN = 1 << APP_RUNNING_BIT
HANDLER = 1 << IN_HANDLER_BIT
PHASE = 1 << PHASE_TOGGLE_BIT


class TestSamplingGrid:
    def test_sample_count_matches_duration(self):
        daq = DataAcquisitionSystem(sample_period_s=40e-6)
        count = daq.observe_slice(0.0, 0.004, 10.0, 1.4, RUN)
        assert count == 100
        assert daq.sample_count == 100

    def test_grid_is_global_across_slices(self):
        """Slice boundaries must not reset the 40us grid."""
        daq = DataAcquisitionSystem(sample_period_s=40e-6)
        daq.observe_slice(0.0, 0.0001, 10.0, 1.4, RUN)   # 2.5 periods
        daq.observe_slice(0.0001, 0.0001, 5.0, 1.4, RUN)
        times, *_ = daq.raw_arrays()
        deltas = times[1:] - times[:-1]
        assert all(abs(d - 40e-6) < 1e-12 for d in deltas)

    def test_short_slice_may_produce_no_samples(self):
        daq = DataAcquisitionSystem(sample_period_s=40e-6)
        daq.observe_slice(0.0, 1e-6, 10.0, 1.4, RUN)  # consumes t=0 sample
        count = daq.observe_slice(1e-6, 1e-6, 10.0, 1.4, RUN)
        assert count == 0

    def test_gap_between_slices_is_skipped(self):
        daq = DataAcquisitionSystem(sample_period_s=40e-6)
        daq.observe_slice(0.0, 40e-6, 10.0, 1.4, RUN)
        daq.observe_slice(0.001, 40e-6, 10.0, 1.4, RUN)
        times, *_ = daq.raw_arrays()
        assert times[-1] >= 0.001

    def test_rejects_negative_duration(self):
        daq = DataAcquisitionSystem()
        with pytest.raises(ConfigurationError):
            daq.observe_slice(0.0, -1.0, 1.0, 1.0, 0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            DataAcquisitionSystem(sample_period_s=0.0)

    def test_reset(self):
        daq = DataAcquisitionSystem()
        daq.observe_slice(0.0, 0.001, 10.0, 1.4, RUN)
        daq.reset()
        assert daq.sample_count == 0
        assert daq.observe_slice(0.0, 40e-6, 1.0, 1.0, 0) == 1

    def test_samples_accessor(self):
        daq = DataAcquisitionSystem()
        daq.observe_slice(0.0, 100e-6, 8.0, 1.2, RUN | PHASE)
        sample = daq.samples()[0]
        assert sample.bit(APP_RUNNING_BIT)
        assert sample.bit(PHASE_TOGGLE_BIT)
        assert not sample.bit(IN_HANDLER_BIT)


class TestPowerRecovery:
    def test_recovered_power_matches_input(self):
        daq = DataAcquisitionSystem()
        daq.observe_slice(0.0, 0.001, 9.5, 1.356, RUN)
        power = LoggingMachine().recover_power(daq)
        assert power == pytest.approx(9.5, rel=1e-9)

    def test_different_slices_recover_their_own_power(self):
        daq = DataAcquisitionSystem(sample_period_s=40e-6)
        daq.observe_slice(0.0, 0.001, 12.0, 1.484, RUN)
        daq.observe_slice(0.001, 0.001, 3.0, 0.956, RUN)
        power = LoggingMachine().recover_power(daq)
        assert power[0] == pytest.approx(12.0, rel=1e-9)
        assert power[-1] == pytest.approx(3.0, rel=1e-9)


class TestPhaseAttribution:
    def make_run(self):
        """Two phases separated by a toggle, with a handler slice and
        pre/post non-application noise."""
        daq = DataAcquisitionSystem(sample_period_s=40e-6)
        daq.observe_slice(0.0, 0.0004, 1.0, 1.0, 0)             # not running
        daq.observe_slice(0.0004, 0.002, 10.0, 1.484, RUN)      # phase A
        daq.observe_slice(0.0024, 0.0001, 11.0, 1.484, RUN | HANDLER)
        daq.observe_slice(0.0025, 0.002, 4.0, 0.956, RUN | PHASE)  # phase B
        daq.observe_slice(0.0045, 0.0004, 1.0, 1.0, 0)          # ended
        return daq

    def test_windows_cut_at_phase_toggles(self):
        windows = LoggingMachine().attribute_phases(self.make_run())
        assert len(windows) == 2

    def test_window_powers(self):
        windows = LoggingMachine().attribute_phases(self.make_run())
        assert windows[0].mean_power_w == pytest.approx(10.0, rel=1e-9)
        assert windows[1].mean_power_w == pytest.approx(4.0, rel=1e-9)

    def test_handler_samples_excluded(self):
        windows = LoggingMachine().attribute_phases(self.make_run())
        # If the 11 W handler samples leaked in, window 0's mean would
        # exceed 10 W.
        assert windows[0].mean_power_w <= 10.0 + 1e-9

    def test_non_running_samples_excluded(self):
        windows = LoggingMachine().attribute_phases(self.make_run())
        total = sum(w.sample_count for w in windows)
        assert total < self.make_run().sample_count

    def test_energy_approximates_power_times_span(self):
        windows = LoggingMachine().attribute_phases(self.make_run())
        for window in windows:
            span = window.end_s - window.start_s + 40e-6
            assert window.energy_j == pytest.approx(
                window.mean_power_w * span
            )

    def test_empty_capture(self):
        daq = DataAcquisitionSystem()
        assert LoggingMachine().attribute_phases(daq) == []

    def test_capture_with_no_app_samples(self):
        daq = DataAcquisitionSystem()
        daq.observe_slice(0.0, 0.001, 1.0, 1.0, 0)
        assert LoggingMachine().attribute_phases(daq) == []
