#!/usr/bin/env python3
"""Drive the same phase predictions with different management goals.

The paper's framework is deliberately generic: the phase predictor is
fixed, and only the phase-to-setting look-up table changes with the
management goal (its Section 6.3 swaps tables on a deployed system).
This example derives four policies from the platform models —
energy-optimal, EDP-optimal, ED²P-optimal and a 6 W power cap — and runs
the same GPHT-predicted equake workload under each.

Run with:  python examples/management_objectives.py
"""

from repro import (
    GPHTPredictor,
    Machine,
    PhasePredictionGovernor,
    StaticGovernor,
    derive_objective_policy,
    derive_power_capped_policy,
)
from repro.analysis import format_table
from repro.system.metrics import ComparisonMetrics
from repro.workloads import benchmark

N_INTERVALS = 300
POWER_CAP_W = 6.0


def main() -> None:
    machine = Machine()
    trace = benchmark("equake_in").trace(n_intervals=N_INTERVALS)
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))

    policies = [
        derive_objective_policy("energy"),
        derive_objective_policy("edp"),
        derive_objective_policy("ed2p"),
        derive_power_capped_policy(POWER_CAP_W),
    ]

    rows = []
    for policy in policies:
        governor = PhasePredictionGovernor(GPHTPredictor(8, 128), policy)
        managed = machine.run(trace, governor)
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        mapping = "/".join(
            str(policy.setting_for(p).frequency_mhz)
            for p in policy.phase_table.phase_ids
        )
        rows.append(
            (
                policy.name,
                mapping,
                f"{managed.average_power_w:.2f} W",
                f"{comparison.performance_degradation:.1%}",
                f"{comparison.energy_savings:.1%}",
                f"{comparison.edp_improvement:.1%}",
            )
        )

    print(f"workload: {trace.name}, baseline {baseline.average_power_w:.2f} W "
          f"at 1500 MHz\n")
    print(
        format_table(
            [
                "policy",
                "MHz per phase 1..6",
                "avg power",
                "perf degr",
                "energy saved",
                "EDP impr",
            ],
            rows,
            title="One predictor, four management goals",
        )
    )
    print()
    print(
        "energy-optimal crawls hardest, ED2P keeps performance, and the\n"
        f"power cap holds the average below {POWER_CAP_W:.0f} W — all from\n"
        "the same runtime phase predictions."
    )


if __name__ == "__main__":
    main()
