#!/usr/bin/env python3
"""System-wide management of a multiprogrammed workload.

The paper's predictor is deployed system-wide: the PMI observes whatever
the processor runs, context switches included.  This example
co-schedules a CPU-bound application (crafty) with a memory-bound one
(swim) under a round-robin quantum and compares three systems: the
unmanaged baseline, reactive (last-value) management, and the GPHT
governor — which learns the scheduler's alternation and reconfigures the
processor *before* each context switch.

Run with:  python examples/multiprogram_mix.py
"""

from repro import (
    GPHTPredictor,
    Machine,
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.analysis import format_table
from repro.system.metrics import ComparisonMetrics
from repro.workloads import benchmark, round_robin

N_INTERVALS = 150
QUANTUM_UOPS = 200_000_000  # two 100M-uop sampling intervals per slice


def main() -> None:
    machine = Machine()
    mix = round_robin(
        [
            benchmark("crafty_in").trace(n_intervals=N_INTERVALS),
            benchmark("swim_in").trace(n_intervals=N_INTERVALS),
        ],
        quantum_uops=QUANTUM_UOPS,
    )
    print(f"workload: {mix.name}, {mix.total_uops // 10**9} billion uops")
    print()

    baseline = machine.run(mix, StaticGovernor(machine.speedstep.fastest))

    rows = []
    for governor in (
        ReactiveGovernor(),
        PhasePredictionGovernor(GPHTPredictor(8, 128)),
    ):
        managed = machine.run(mix, governor)
        comparison = ComparisonMetrics(baseline=baseline, managed=managed)
        rows.append(
            (
                managed.governor_name,
                f"{managed.prediction_accuracy():.1%}",
                f"{managed.average_power_w:.2f} W",
                f"{comparison.performance_degradation:.1%}",
                f"{comparison.edp_improvement:.1%}",
            )
        )
    print(
        format_table(
            [
                "governor",
                "online accuracy",
                "avg power",
                "perf degr",
                "EDP impr",
            ],
            rows,
            title=(
                f"crafty + swim, round-robin at "
                f"{QUANTUM_UOPS // 1_000_000}M-uop quanta "
                f"(baseline {baseline.average_power_w:.2f} W)"
            ),
        )
    )
    print()
    print(
        "Reactive management is always one quantum late at every context\n"
        "switch; the GPHT learns the scheduler's deterministic pattern\n"
        "and flips the DVFS setting proactively."
    )


if __name__ == "__main__":
    main()
