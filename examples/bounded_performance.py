#!/usr/bin/env python3
"""Bound worst-case performance degradation with conservative policies.

Reproduces the paper's Section 6.3 scenario: the aggressive Table 2
policy maximises energy-delay savings but can slow some applications by
more than 5%; when that is unacceptable, a conservative policy is
*derived* from observed execution points so that no phase's worst-case
slowdown exceeds the target — trading EDP improvement for a guaranteed
performance floor.

Run with:  python examples/bounded_performance.py
"""

from repro import (
    DVFSPolicy,
    GPHTPredictor,
    Machine,
    PhasePredictionGovernor,
    StaticGovernor,
    derive_bounded_policy,
)
from repro.analysis import format_table, spec_phase_witnesses
from repro.system.metrics import ComparisonMetrics
from repro.workloads import benchmark

WORKLOADS = ["mcf_inp", "applu_in", "equake_in", "swim_in", "mgrid_in"]
TARGET_DEGRADATION = 0.05
N_INTERVALS = 300


def describe(policy: DVFSPolicy) -> str:
    return ", ".join(
        f"phase {p} -> {policy.setting_for(p).frequency_mhz} MHz"
        for p in policy.phase_table.phase_ids
    )


def run_policy(machine: Machine, trace, policy: DVFSPolicy):
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    managed = machine.run(
        trace, PhasePredictionGovernor(GPHTPredictor(8, 128), policy)
    )
    return ComparisonMetrics(baseline=baseline, managed=managed)


def main() -> None:
    machine = Machine()
    aggressive = DVFSPolicy.paper_default()
    # The derivation sweeps observed (Mem/Uop, core-UPC) points per
    # phase and picks the slowest setting honouring the bound.
    bounded = derive_bounded_policy(
        TARGET_DEGRADATION, witnesses_by_phase=spec_phase_witnesses()
    )

    print("Aggressive policy:", describe(aggressive))
    print("Bounded policy   :", describe(bounded))
    print()

    rows = []
    for name in WORKLOADS:
        trace = benchmark(name).trace(n_intervals=N_INTERVALS)
        a = run_policy(machine, trace, aggressive)
        b = run_policy(machine, trace, bounded)
        rows.append(
            (
                name,
                f"{a.performance_degradation:.1%}",
                f"{b.performance_degradation:.1%}",
                f"{a.edp_improvement:.1%}",
                f"{b.edp_improvement:.1%}",
            )
        )

    print(
        format_table(
            [
                "benchmark",
                "degr (aggressive)",
                "degr (bounded)",
                "EDP impr (aggressive)",
                "EDP impr (bounded)",
            ],
            rows,
            title=(
                "Bounding performance degradation at "
                f"{TARGET_DEGRADATION:.0%} (paper Figure 13)"
            ),
        )
    )
    print()
    print(
        "Every bounded-run degradation sits under the target; the cost\n"
        "is an EDP improvement reduced by more than 2X — exactly the\n"
        "trade the paper reports."
    )


if __name__ == "__main__":
    main()
