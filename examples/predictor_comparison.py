#!/usr/bin/env python3
"""Compare phase predictors across workload stability classes.

Replays one benchmark from each of the paper's Figure 3 quadrants
through the full predictor suite of Figure 4 (last value, fixed and
variable windows, GPHT) plus the oracle upper bound, and prints the
accuracy matrix.

Run with:  python examples/predictor_comparison.py
"""

from repro import PhaseTable, paper_predictor_suite
from repro.analysis import evaluate_predictor, format_table
from repro.core.predictors import OraclePredictor
from repro.workloads import benchmark

#: One representative per quadrant, plus the two headline Q3 apps.
WORKLOADS = [
    ("crafty_in", "Q1: stable, CPU-bound"),
    ("swim_in", "Q2: stable, memory-bound"),
    ("mgrid_in", "Q3: variable, memory-bound"),
    ("applu_in", "Q3: the paper's running example"),
    ("equake_in", "Q3: most variable"),
    ("bzip2_graphic", "Q4: variable, CPU-bound-ish"),
]

N_INTERVALS = 1000


def main() -> None:
    table = PhaseTable()
    predictor_names = [p.name for p in paper_predictor_suite()] + ["Oracle"]

    rows = []
    for name, description in WORKLOADS:
        series = benchmark(name).mem_series(N_INTERVALS)
        accuracies = []
        for predictor in paper_predictor_suite():
            result = evaluate_predictor(predictor, series, table)
            accuracies.append(round(result.accuracy * 100, 1))
        phases = table.classify_series(series)
        oracle = evaluate_predictor(OraclePredictor(phases), series, table)
        accuracies.append(round(oracle.accuracy * 100, 1))
        rows.append([name] + accuracies)
        print(f"{name:16s} {description}")

    print()
    print(
        format_table(
            ["benchmark"] + predictor_names,
            rows,
            title=f"Prediction accuracy (%) over {N_INTERVALS} intervals",
        )
    )
    print()
    print(
        "Note how the statistical predictors collapse on the variable\n"
        "benchmarks while the GPHT stays close to the oracle — the\n"
        "paper's Figure 4 in miniature."
    )


if __name__ == "__main__":
    main()
