#!/usr/bin/env python3
"""Quickstart: phase-prediction-guided DVFS on a variable workload.

Runs the paper's running example (applu) on the simulated Pentium-M
platform twice — unmanaged at 1.5 GHz, then managed by the deployed
GPHT(depth=8, 128-entry PHT) governor — and reports the power,
performance and energy-delay-product outcome.

Run with:  python examples/quickstart.py
"""

from repro import (
    GPHTPredictor,
    Machine,
    PhasePredictionGovernor,
    StaticGovernor,
)
from repro.system.metrics import ComparisonMetrics
from repro.workloads import benchmark


def main() -> None:
    machine = Machine()

    # A synthetic applu trace: 200 sampling intervals of 100M uops each.
    trace = benchmark("applu_in").trace(n_intervals=200)

    # Baseline: pinned at the fastest operating point.
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))

    # Managed: the paper's deployed configuration.
    governor = PhasePredictionGovernor(GPHTPredictor(gphr_depth=8,
                                                     pht_entries=128))
    managed = machine.run(trace, governor)

    comparison = ComparisonMetrics(baseline=baseline, managed=managed)

    print(f"workload               : {trace.name}")
    print(f"intervals              : {len(managed.intervals)}")
    print(f"baseline power         : {baseline.average_power_w:6.2f} W")
    print(f"managed power          : {managed.average_power_w:6.2f} W")
    print(f"baseline BIPS          : {baseline.bips:6.3f}")
    print(f"managed BIPS           : {managed.bips:6.3f}")
    print(f"online prediction acc. : {managed.prediction_accuracy():6.1%}")
    print(f"DVFS transitions       : {managed.transition_count}")
    print()
    print(f"power savings          : {comparison.power_savings:6.1%}")
    print(f"performance degradation: {comparison.performance_degradation:6.1%}")
    print(f"EDP improvement        : {comparison.edp_improvement:6.1%}")


if __name__ == "__main__":
    main()
