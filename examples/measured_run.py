#!/usr/bin/env python3
"""Measure a managed run through the external DAQ path.

Attaches the simulated data-acquisition system (sense resistors, 40 us
sampling, parallel-port synchronisation) to a GPHT-managed applu run and
attributes power to each 100M-uop phase sample the way the paper's
logging machine does — then cross-checks the external measurements
against the machine's exact internal energy accounting.

Run with:  python examples/measured_run.py
"""

from repro import (
    DataAcquisitionSystem,
    GPHTPredictor,
    LoggingMachine,
    Machine,
    PhasePredictionGovernor,
)
from repro.analysis import format_table
from repro.workloads import benchmark

N_INTERVALS = 30


def main() -> None:
    # A finer granularity keeps this demo fast while still collecting
    # hundreds of DAQ samples per interval.
    machine = Machine(granularity_uops=10_000_000)
    daq = DataAcquisitionSystem()  # 40 us sampling period

    trace = benchmark("applu_in").trace(
        n_intervals=N_INTERVALS, uops_per_interval=10_000_000
    )
    governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
    result = machine.run(trace, governor, daq=daq)

    # The logging machine recovers power from the raw channel voltages
    # (I = dV / 2 mOhm; P = V_cpu * (I1 + I2)) and cuts per-phase
    # windows at the parallel-port toggle boundaries.
    windows = LoggingMachine().attribute_phases(daq)

    rows = []
    for interval, window in zip(result.intervals, windows):
        record = interval.record
        rows.append(
            (
                record.interval_index,
                record.actual_phase,
                record.frequency_mhz,
                round(interval.power_w, 3),
                round(window.mean_power_w, 3),
                window.sample_count,
            )
        )
    print(
        format_table(
            [
                "interval",
                "phase",
                "MHz",
                "internal W",
                "DAQ W",
                "samples",
            ],
            rows,
            title=(
                f"External power attribution ({daq.sample_count} DAQ "
                "samples at 40 us)"
            ),
        )
    )

    worst = max(
        abs(w.mean_power_w - m.power_w)
        for w, m in zip(windows, result.intervals)
    )
    print()
    print(f"intervals attributed       : {len(windows)}/{len(result.intervals)}")
    print(f"worst internal-vs-DAQ error: {worst * 1000:.2f} mW")
    print(f"run average power          : {result.average_power_w:.2f} W")


if __name__ == "__main__":
    main()
