"""Figure 2 — actual and predicted phases for the applu benchmark.

Replays an applu execution region through the GPHT (depth 8, 1024 PHT
entries) and last-value predictors, printing the actual-vs-predicted
phase series the paper plots, and asserting the figure's message: GPHT
predictions 'almost perfectly match the actual observed phases' while
last value 'mispredicts more than one third of the phases'.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.reporting import format_percent, format_series, phase_timeline
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 1000
WINDOW = slice(700, 760)  # a trained execution region, like the paper's


def run_predictions():
    series = spec_benchmark("applu_in").mem_series(N_INTERVALS)
    gpht = evaluate_predictor(GPHTPredictor(8, 1024), series)
    last = evaluate_predictor(LastValuePredictor(), series)
    return series, gpht, last


def test_fig02_applu_trace(benchmark, report):
    series, gpht, last = run_once(benchmark, run_predictions)

    actual_window = list(gpht.actuals[WINDOW])
    gpht_window = list(gpht.predictions[WINDOW])
    last_window = list(last.predictions[WINDOW])
    mem_window = [float(v) for v in series[1:][WINDOW]]
    lines = [
        "Figure 2. Actual and predicted phases for applu benchmark "
        f"(intervals {WINDOW.start}-{WINDOW.stop}).",
        format_series("Mem/Uop      ", mem_window),
        "Actual_Phases: " + " ".join(str(p) for p in actual_window),
        "GPHT_8_1024  : " + " ".join(str(p) for p in gpht_window),
        "LastValue    : " + " ".join(str(p) for p in last_window),
        "",
        "phase timeline (actual)   : " + phase_timeline(actual_window),
        "phase timeline (GPHT)     : " + phase_timeline(gpht_window),
        "phase timeline (LastValue): " + phase_timeline(last_window),
        "",
        f"GPHT accuracy      : {format_percent(gpht.accuracy)}",
        f"LastValue accuracy : {format_percent(last.accuracy)}",
    ]
    # The trained window itself is predicted near-perfectly by GPHT.
    window_hits = sum(
        1 for p, a in zip(gpht_window, actual_window) if p == a
    )
    report(
        "fig02_applu_trace",
        "\n".join(lines),
        parameters={
            "benchmark": "applu_in",
            "n_intervals": N_INTERVALS,
            "window_start": WINDOW.start,
            "window_stop": WINDOW.stop,
        },
        metrics={
            "gpht_accuracy": gpht.accuracy,
            "last_value_accuracy": last.accuracy,
            "window_accuracy": window_hits / len(actual_window),
        },
    )

    # Paper: applu is highly variable, last value mispredicts more than
    # a third of the phases; GPHT matches almost perfectly.
    assert last.misprediction_rate > 1 / 3
    assert gpht.accuracy > 0.88
    assert window_hits / len(actual_window) > 0.85
