"""Figure 13 — power/performance results for the conservative phase
definitions that bound performance degradation by 5%.

Derives the bounded policy the way the paper does — from observed
execution points across the behaviour space (Section 6.3) — runs the
five benchmarks that originally exceeded 5% degradation, and asserts the
figure's results: every degradation below the target, and EDP
improvements reduced by more than 2X relative to the aggressive table.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_percent, format_table
from repro.analysis.witnesses import spec_phase_witnesses
from repro.core.dvfs_policy import DVFSPolicy, derive_bounded_policy
from repro.core.governor import PhasePredictionGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.experiment import run_suite
from repro.workloads.spec2000 import FIG13_BENCHMARKS

N_INTERVALS = 300
TARGET = 0.05


def run_policies(machine):
    bounded_policy = derive_bounded_policy(
        TARGET, witnesses_by_phase=spec_phase_witnesses()
    )
    bounded = run_suite(
        FIG13_BENCHMARKS,
        lambda: PhasePredictionGovernor(
            GPHTPredictor(8, 128), bounded_policy
        ),
        machine,
        n_intervals=N_INTERVALS,
    )
    aggressive = run_suite(
        FIG13_BENCHMARKS,
        lambda: PhasePredictionGovernor(
            GPHTPredictor(8, 128), DVFSPolicy.paper_default()
        ),
        machine,
        n_intervals=N_INTERVALS,
    )
    return bounded_policy, bounded, aggressive


def test_fig13_bounded_degradation(benchmark, report, machine):
    policy, bounded, aggressive = run_once(
        benchmark, lambda: run_policies(machine)
    )

    rows = []
    for name in FIG13_BENCHMARKS:
        b = bounded[name].comparison
        rows.append(
            (
                name,
                format_percent(b.performance_degradation),
                format_percent(b.power_savings),
                format_percent(b.energy_savings),
                format_percent(b.edp_improvement),
                format_percent(
                    aggressive[name].comparison.edp_improvement
                ),
            )
        )
    mapping = ", ".join(
        f"{p}->{policy.setting_for(p).frequency_mhz}MHz"
        for p in policy.phase_table.phase_ids
    )
    report(
        "fig13_bounded_degradation",
        format_table(
            [
                "benchmark",
                "perf degradation",
                "power savings",
                "energy savings",
                "EDP improvement",
                "EDP impr (aggressive)",
            ],
            rows,
            title=(
                "Figure 13. Conservative phase definitions bounding "
                f"performance degradation by {TARGET:.0%}.\n"
                f"Derived policy: {mapping}"
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "degradation_target": TARGET,
        },
        metrics={
            "max_degradation": max(
                bounded[n].comparison.performance_degradation
                for n in FIG13_BENCHMARKS
            ),
            "min_power_savings": min(
                bounded[n].comparison.power_savings
                for n in FIG13_BENCHMARKS
            ),
            "bounded_mean_edp_improvement": sum(
                bounded[n].comparison.edp_improvement
                for n in FIG13_BENCHMARKS
            )
            / len(FIG13_BENCHMARKS),
            "aggressive_mean_edp_improvement": sum(
                aggressive[n].comparison.edp_improvement
                for n in FIG13_BENCHMARKS
            )
            / len(FIG13_BENCHMARKS),
            "policy_frequency_levels": len(
                {
                    policy.setting_for(p).frequency_mhz
                    for p in policy.phase_table.phase_ids
                }
            ),
        },
    )

    for name in FIG13_BENCHMARKS:
        b = bounded[name].comparison
        a = aggressive[name].comparison

        # 'All of these applications experience performance degradations
        # significantly lower than 5%.'
        assert b.performance_degradation < TARGET, name

        # 'EDP improvements are reduced by more than 2X.'
        assert b.edp_improvement < a.edp_improvement / 2.0, name

        # The conservative system still saves meaningful power.
        assert b.power_savings > 0.03, name
        assert b.edp_improvement > 0.0, name

    # The derived table is strictly more conservative than Table 2
    # below phase 1 but never pins everything at full speed.
    frequencies = {
        policy.setting_for(p).frequency_mhz
        for p in policy.phase_table.phase_ids
    }
    assert len(frequencies) > 1
