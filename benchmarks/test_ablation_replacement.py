"""Ablation — PHT replacement policy: LRU vs FIFO (extension).

The paper specifies an age-based LRU replacement for the PHT (Figure 1)
without evaluating alternatives.  This ablation compares LRU against
FIFO at the deployed 128-entry size and at the pressure point (64
entries) the paper's Figure 5 identifies.

Expected shape: at 128 entries the working sets mostly fit and the two
policies coincide; under pressure LRU retains the hot patterns of the
currently executing motif at least as well as FIFO.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.reporting import format_table
from repro.core.predictors import GPHTPredictor
from repro.workloads.spec2000 import VARIABLE_BENCHMARKS, benchmark

N_INTERVALS = 1000
SIZES = (128, 64)


def run_sweep():
    factories = [
        (lambda s=size, p=policy: GPHTPredictor(8, s, replacement=p))
        for size in SIZES
        for policy in ("lru", "fifo")
    ]
    series = {
        name: benchmark(name).mem_series(N_INTERVALS)
        for name in VARIABLE_BENCHMARKS
    }
    return evaluate_suite(factories, series)


def test_ablation_replacement(benchmark, report):
    results = run_once(benchmark, run_sweep)

    columns = []
    for size in SIZES:
        columns.append(f"GPHT_8_{size}")
        columns.append(f"GPHT_8_{size}_fifo")
    rows = [
        [name] + [round(results[name][c].accuracy * 100, 1) for c in columns]
        for name in VARIABLE_BENCHMARKS
    ]
    report(
        "ablation_replacement",
        format_table(
            ["benchmark"] + columns,
            rows,
            title="Ablation: PHT replacement policy, accuracy (%).",
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(VARIABLE_BENCHMARKS),
        },
        metrics={
            f"{column}_mean_accuracy": sum(
                results[name][column].accuracy
                for name in VARIABLE_BENCHMARKS
            )
            / len(VARIABLE_BENCHMARKS)
            for column in columns
        },
    )

    for name in VARIABLE_BENCHMARKS:
        acc = {c: results[name][c].accuracy for c in columns}
        # At the deployed size the policies are interchangeable.
        assert abs(acc["GPHT_8_128"] - acc["GPHT_8_128_fifo"]) < 0.03, name
        # Under pressure LRU never loses to FIFO by more than noise.
        assert acc["GPHT_8_64"] >= acc["GPHT_8_64_fifo"] - 0.03, name
