"""Figure 8 — the PMI handler's flow of operation and its overhead.

The figure documents the handler control flow; the paper's claim is that
the whole loop — stop/read counters, classify, update predictor, predict,
translate, program DVFS, restart counters — runs 'with no observable
overheads' at 100M-instruction granularity (handler work on the order of
10-100 us against ~100 ms intervals).

This bench times the handler decision path itself (pytest-benchmark's
one real timing measurement in this suite) and verifies the end-to-end
overhead fraction on a full machine run.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_percent
from repro.bench.gate import check_perf
from repro.core.governor import IntervalCounters, PhasePredictionGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.workloads.spec2000 import benchmark as spec_benchmark


def test_fig08_handler_decision_latency(benchmark, report):
    """Time one governor decision — the software core of the handler."""
    governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
    counters = IntervalCounters(
        uops=1e8, mem_transactions=1.8e6, instructions=8e7, tsc_cycles=1.2e8
    )

    benchmark(governor.decide, counters)

    stats = benchmark.stats.stats
    mean_us = stats.mean * 1e6
    report(
        "fig08_handler_overhead",
        "Figure 8. PMI handler decision path latency: "
        f"mean {mean_us:.2f} us per invocation "
        "(paper budget: 10-100 us against ~100 ms intervals).",
        parameters={"gphr_depth": 8, "pht_entries": 128},
        measured={"mean_us_per_decision": mean_us},
    )
    # One decision must fit comfortably inside the paper's overhead
    # budget; even a slow interpreter run is far below 1 ms.  Wall-clock
    # threshold — gated via the compare/enforce contract, not pytest.
    check_perf(
        stats.mean < 1e-3,
        f"handler decision latency {mean_us:.2f} us exceeds 1 ms budget",
    )


def test_fig08_end_to_end_overhead_fraction(benchmark, report):
    """The handler's share of total run time is invisible (< 0.1%)."""

    def run():
        machine = Machine()
        trace = spec_benchmark("applu_in").trace(n_intervals=100)
        governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
        return machine.run(trace, governor)

    result = run_once(benchmark, run)
    fraction = result.handler_overhead_fraction
    report(
        "fig08_overhead_fraction",
        "Figure 8 (end to end). Handler time fraction of execution: "
        f"{format_percent(fraction, 4)} over {len(result.intervals)} "
        "intervals including DVFS transitions.",
        parameters={"benchmark": "applu_in", "n_intervals": len(result.intervals)},
        metrics={"handler_overhead_fraction": fraction},
    )
    assert fraction < 1e-3
