"""Figure 9 — the measurement and evaluation platform.

Exercises the full external-measurement pipeline: sense resistors →
signal conditioning → 40 us DAQ sampling → parallel-port-synchronised
logging machine — and validates it against the machine's exact internal
energy integration, per sampling interval.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.governor import PhasePredictionGovernor
from repro.core.predictors import GPHTPredictor
from repro.power.daq import DataAcquisitionSystem, LoggingMachine
from repro.system.machine import Machine
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 40


def run_measured():
    machine = Machine(granularity_uops=10_000_000)
    daq = DataAcquisitionSystem()
    trace = spec_benchmark("applu_in").trace(
        n_intervals=N_INTERVALS, uops_per_interval=10_000_000
    )
    result = machine.run(
        trace, PhasePredictionGovernor(GPHTPredictor(8, 128)), daq=daq
    )
    windows = LoggingMachine().attribute_phases(daq)
    return result, daq, windows


def test_fig09_measurement_platform(benchmark, report):
    result, daq, windows = run_once(benchmark, run_measured)

    rows = []
    for interval, window in list(zip(result.intervals, windows))[:10]:
        rows.append(
            (
                interval.record.interval_index,
                interval.record.actual_phase,
                interval.record.frequency_mhz,
                round(interval.power_w, 3),
                round(window.mean_power_w, 3),
                window.sample_count,
            )
        )
    report(
        "fig09_measurement_platform",
        format_table(
            [
                "interval",
                "phase",
                "MHz",
                "internal power W",
                "DAQ power W",
                "DAQ samples",
            ],
            rows,
            title=(
                "Figure 9. Measurement platform cross-check: internal "
                "energy accounting vs external DAQ attribution "
                f"({daq.sample_count} samples total)."
            ),
        ),
        parameters={"benchmark": "applu_in", "n_intervals": N_INTERVALS},
        metrics={
            "n_windows": len(windows),
            "daq_sample_count": daq.sample_count,
            "max_power_error_w": max(
                abs(window.mean_power_w - interval.power_w)
                for interval, window in zip(result.intervals, windows)
            ),
            "min_window_samples": min(w.sample_count for w in windows),
        },
    )

    # One attributed window per sampling interval — the parallel-port
    # toggle protocol works.
    assert len(windows) == len(result.intervals)

    # Per-phase power recovered externally matches internal accounting
    # to within sampling quantisation.
    for interval, window in zip(result.intervals, windows):
        assert abs(window.mean_power_w - interval.power_w) < max(
            0.05 * interval.power_w, 0.05
        )

    # The DAQ sampled densely (every interval has many samples).
    assert min(w.sample_count for w in windows) > 10
