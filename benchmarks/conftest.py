"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, saves it
under the results directory and asserts the shape properties the paper
reports.  Timings come from pytest-benchmark; the heavy experiment body
runs once via ``benchmark.pedantic``.

The ``report`` fixture persists two renderings of every artifact:

* ``results/<name>.txt`` — the human-readable table/figure text;
* ``results/<name>.json`` — a schema-valid, versioned
  :class:`repro.bench.BenchResult` with host provenance.  Deterministic
  scalars go in ``metrics`` (gated by ``repro bench compare``),
  wall-clock rates in ``measured`` (gated only under
  ``REPRO_BENCH_ENFORCE=1``), free-form context in ``details``.

``REPRO_BENCH_OUT`` redirects the results directory — ``repro bench
run`` points it at a scratch dir so committed baselines are only ever
updated deliberately.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench import BenchResult
from repro.system.machine import Machine


def results_dir() -> pathlib.Path:
    """Where artifacts land: ``$REPRO_BENCH_OUT`` or the committed dir."""
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return pathlib.Path(override)
    return pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def machine():
    """One calibrated platform shared by all benches."""
    return Machine()


@pytest.fixture(scope="session")
def report():
    """Persist a reproduced artifact (text + versioned JSON)."""

    def _report(
        name: str,
        text: str,
        *,
        metrics=None,
        measured=None,
        parameters=None,
        details=None,
    ) -> pathlib.Path:
        out = results_dir()
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        result = BenchResult.create(
            name,
            metrics=metrics,
            measured=measured,
            parameters=parameters,
            details=details,
        )
        path = out / f"{name}.json"
        path.write_text(result.to_json(), encoding="utf-8")
        print(f"\n{text}\n[saved to {path.with_suffix('')}.{{txt,json}}]")
        return path

    return _report


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
