"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (as text
series), saves it under ``benchmarks/results/`` and asserts the shape
properties the paper reports.  Timings come from pytest-benchmark; the
heavy experiment body runs once via ``benchmark.pedantic``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.system.machine import Machine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def machine():
    """One calibrated platform shared by all benches."""
    return Machine()


@pytest.fixture(scope="session")
def report():
    """Persist a reproduced artifact and echo it to stdout."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _report


@pytest.fixture(scope="session")
def report_json():
    """Persist a machine-readable artifact as ``results/<name>.json``."""

    def _report_json(name: str, payload: dict) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n[saved to {path}]")
        return path

    return _report_json


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
