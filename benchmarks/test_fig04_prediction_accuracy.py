"""Figure 4 — phase prediction accuracies for all experimented
prediction techniques across the 33 SPEC2000 benchmark/input pairs.

Regenerates the full predictor-by-benchmark accuracy matrix: last value,
fixed windows (8, 128), variable windows (128 entries, thresholds 0.005
and 0.030) and the GPHT (depth 8, 1024 entries), and asserts the
figure's structure.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.reporting import format_table
from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    VariableWindowPredictor,
)
from repro.workloads.spec2000 import (
    FIG4_BENCHMARK_ORDER,
    VARIABLE_BENCHMARKS,
    benchmark,
)

N_INTERVALS = 1000

PREDICTOR_FACTORIES = [
    LastValuePredictor,
    lambda: FixedWindowPredictor(8),
    lambda: FixedWindowPredictor(128),
    lambda: VariableWindowPredictor(128, 0.005),
    lambda: VariableWindowPredictor(128, 0.030),
    lambda: GPHTPredictor(8, 1024),
]

COLUMNS = [
    "LastValue",
    "FixWindow_8",
    "FixWindow_128",
    "VarWindow_128_0.005",
    "VarWindow_128_0.03",
    "GPHT_8_1024",
]


def run_matrix():
    series = {
        name: benchmark(name).mem_series(N_INTERVALS)
        for name in FIG4_BENCHMARK_ORDER
    }
    return evaluate_suite(PREDICTOR_FACTORIES, series)


def test_fig04_prediction_accuracy(benchmark, report):
    results = run_once(benchmark, run_matrix)

    rows = []
    for name in FIG4_BENCHMARK_ORDER:
        per = results[name]
        rows.append(
            [name]
            + [round(per[column].accuracy * 100, 1) for column in COLUMNS]
        )
    accuracy = {
        name: {column: results[name][column].accuracy for column in COLUMNS}
        for name in FIG4_BENCHMARK_ORDER
    }
    metrics = {
        f"{column}_mean_accuracy": sum(
            accuracy[name][column] for name in FIG4_BENCHMARK_ORDER
        )
        / len(FIG4_BENCHMARK_ORDER)
        for column in COLUMNS
    }
    metrics["applu_gpht_accuracy"] = accuracy["applu_in"]["GPHT_8_1024"]
    metrics["applu_last_value_accuracy"] = accuracy["applu_in"]["LastValue"]
    report(
        "fig04_prediction_accuracy",
        format_table(
            ["benchmark"] + COLUMNS,
            rows,
            title=(
                "Figure 4. Phase prediction accuracies (%) for "
                "experimented prediction techniques."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(FIG4_BENCHMARK_ORDER),
        },
        metrics=metrics,
        details={
            "accuracy": {
                name: accuracy[name] for name in FIG4_BENCHMARK_ORDER
            }
        },
    )

    # Stable benchmarks: 'almost all approaches perform very well,
    # achieving above 80% prediction accuracies'; last value and GPHT
    # 'perform almost equivalently'.
    for name in FIG4_BENCHMARK_ORDER[:16]:
        assert accuracy[name]["LastValue"] > 0.80, name
        assert abs(
            accuracy[name]["GPHT_8_1024"] - accuracy[name]["LastValue"]
        ) < 0.05, name

    # Variable benchmarks: statistical approaches drop, GPHT sustains.
    for name in VARIABLE_BENCHMARKS:
        statistical_best = max(
            accuracy[name][c] for c in COLUMNS if c != "GPHT_8_1024"
        )
        assert accuracy[name]["GPHT_8_1024"] > statistical_best + 0.05, name

    # GPHT stays above 80% even on the hardest benchmarks.
    for name in VARIABLE_BENCHMARKS:
        assert accuracy[name]["GPHT_8_1024"] > 0.80, name

    # applu: last value > 50% mispredictions (paper: 53%), GPHT < 10%.
    assert accuracy["applu_in"]["LastValue"] < 0.5
    assert accuracy["applu_in"]["GPHT_8_1024"] > 0.9
