"""Extension — dynamic thermal management via runtime phase prediction.

The paper names dynamic thermal management as a target application of
its framework without evaluating one.  This bench closes the loop: a
CPU-bound workload that drives the unmanaged die past a 70 degC trip
point is run under (a) no management, (b) plain GPHT EDP management and
(c) the thermally-wrapped GPHT governor, comparing peak temperature,
performance and energy.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.predictors import GPHTPredictor
from repro.core.thermal_governor import ThermalManagedGovernor
from repro.power.thermal import ThermalModel
from repro.system.machine import Machine
from repro.workloads.segments import uniform_trace

N_INTERVALS = 600
TRIP_C = 70.0


def run_variants():
    machine = Machine()
    # CPU-bound: the worst case thermally, and the case plain DVFS-for-
    # energy never slows down (phase 1 maps to full speed).
    trace = uniform_trace(
        "hot_loop", [(0.0, 1.8)] * N_INTERVALS, uops_per_segment=100_000_000
    )
    outcomes = {}

    thermal = ThermalModel()
    baseline = machine.run(
        trace, StaticGovernor(machine.speedstep.fastest), thermal=thermal
    )
    outcomes["unmanaged"] = (baseline, thermal.peak_temperature_c)

    thermal = ThermalModel()
    gpht = machine.run(
        trace,
        PhasePredictionGovernor(GPHTPredictor(8, 128)),
        thermal=thermal,
    )
    outcomes["GPHT (EDP)"] = (gpht, thermal.peak_temperature_c)

    thermal = ThermalModel()
    governor = ThermalManagedGovernor(
        PhasePredictionGovernor(GPHTPredictor(8, 128)),
        thermal,
        trip_c=TRIP_C,
    )
    dtm = machine.run(trace, governor, thermal=thermal)
    outcomes["GPHT + DTM"] = (dtm, thermal.peak_temperature_c)
    return outcomes, baseline


def test_ext_thermal_management(benchmark, report):
    outcomes, baseline = run_once(benchmark, run_variants)

    rows = []
    for label, (result, peak) in outcomes.items():
        rows.append(
            (
                label,
                round(peak, 1),
                round(result.bips, 3),
                round(result.average_power_w, 2),
                round(result.total_energy_j, 1),
            )
        )
    report(
        "ext_thermal_management",
        format_table(
            ["system", "peak temp C", "BIPS", "avg power W", "energy J"],
            rows,
            title=(
                "Extension: dynamic thermal management "
                f"(trip {TRIP_C:g} degC) on a CPU-bound workload."
            ),
        ),
        parameters={"n_intervals": N_INTERVALS, "trip_c": TRIP_C},
        metrics={
            "unmanaged_peak_temperature_c": outcomes["unmanaged"][1],
            "dtm_peak_temperature_c": outcomes["GPHT + DTM"][1],
            "dtm_slowdown": baseline.bips / outcomes["GPHT + DTM"][0].bips,
        },
    )

    unmanaged_peak = outcomes["unmanaged"][1]
    gpht_peak = outcomes["GPHT (EDP)"][1]
    dtm_result, dtm_peak = outcomes["GPHT + DTM"]

    # Plain EDP management cannot help a phase-1 workload: it runs at
    # full speed and gets exactly as hot as the unmanaged system.
    assert abs(gpht_peak - unmanaged_peak) < 1.0
    assert unmanaged_peak > 80.0

    # The thermal governor bounds the excursion near the trip point.
    assert dtm_peak < TRIP_C + 3.0

    # Thermal safety costs performance — but far less than pinning the
    # whole run at the capped frequency would (full cap would be 2.5x).
    slowdown = baseline.bips / dtm_result.bips
    assert 1.0 < slowdown < 2.0
