"""Ablation — are the paper-shape conclusions artifacts of calibration?

The simulated platform has two load-bearing calibration constants: the
exposed memory latency (timing) and the leakage share (power).  This
ablation re-runs the core comparison — GPHT vs reactive vs baseline on a
variable and a stable memory-bound benchmark — across a wide band of
both constants and asserts that every *directional* claim survives:

* managed beats unmanaged on memory-bound work,
* GPHT beats reactive on the variable benchmark,
* Mem/Uop phases remain DVFS-invariant (exactly, by construction).

Magnitudes move with the constants (they should); conclusions must not.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import GPHTPredictor
from repro.cpu.timing import TimingModel
from repro.power.model import PowerModel
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 200

LATENCIES_NS = (60.0, 100.0, 140.0)
LEAKAGE_COEFFICIENTS = (0.45, 0.90, 1.80)


def run_grid():
    outcomes = {}
    applu = spec_benchmark("applu_in").trace(n_intervals=N_INTERVALS)
    swim = spec_benchmark("swim_in").trace(n_intervals=N_INTERVALS)
    for latency in LATENCIES_NS:
        for leakage in LEAKAGE_COEFFICIENTS:
            machine = Machine(
                timing=TimingModel(memory_latency_ns=latency),
                power=PowerModel(leakage_coefficient=leakage),
            )
            cell = {}
            for label, trace in (("applu_in", applu), ("swim_in", swim)):
                baseline = machine.run(
                    trace, StaticGovernor(machine.speedstep.fastest)
                )
                gpht = machine.run(
                    trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
                )
                reactive = machine.run(trace, ReactiveGovernor())
                cell[label] = (
                    ComparisonMetrics(baseline=baseline, managed=gpht),
                    ComparisonMetrics(baseline=baseline, managed=reactive),
                )
            outcomes[(latency, leakage)] = cell
    return outcomes


def test_ablation_model_sensitivity(benchmark, report):
    outcomes = run_once(benchmark, run_grid)

    rows = []
    for (latency, leakage), cell in outcomes.items():
        applu_gpht, applu_reactive = cell["applu_in"]
        swim_gpht, _ = cell["swim_in"]
        rows.append(
            (
                f"{latency:g} ns",
                f"{leakage:g}",
                f"{applu_gpht.edp_improvement:.1%}",
                f"{applu_reactive.edp_improvement:.1%}",
                f"{swim_gpht.edp_improvement:.1%}",
            )
        )
    report(
        "ablation_model_sensitivity",
        format_table(
            [
                "mem latency",
                "leakage coeff",
                "applu EDP (GPHT)",
                "applu EDP (reactive)",
                "swim EDP (GPHT)",
            ],
            rows,
            title=(
                "Ablation: directional conclusions across calibration "
                "constants (9-point grid)."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_grid_points": len(outcomes),
        },
        metrics={
            "min_swim_edp_improvement": min(
                cell["swim_in"][0].edp_improvement
                for cell in outcomes.values()
            ),
            "min_applu_edp_improvement": min(
                cell["applu_in"][0].edp_improvement
                for cell in outcomes.values()
            ),
            "min_gpht_vs_reactive_gap": min(
                cell["applu_in"][0].edp_improvement
                - cell["applu_in"][1].edp_improvement
                for cell in outcomes.values()
            ),
        },
    )

    for (latency, leakage), cell in outcomes.items():
        applu_gpht, applu_reactive = cell["applu_in"]
        swim_gpht, swim_reactive = cell["swim_in"]
        key = (latency, leakage)

        # Memory-bound work always benefits from management.
        assert swim_gpht.edp_improvement > 0.25, key
        assert applu_gpht.edp_improvement > 0.05, key

        # Proactive beats reactive on the variable benchmark at every
        # calibration point.
        assert (
            applu_gpht.edp_improvement > applu_reactive.edp_improvement
        ), key

        # On the stable benchmark the two coincide everywhere.
        assert abs(
            swim_gpht.edp_improvement - swim_reactive.edp_improvement
        ) < 0.02, key

    # The magnitudes DO respond to the constants (the sweep is real):
    # longer memory latency means more slack, hence more EDP gain.
    low = outcomes[(60.0, 0.90)]["swim_in"][0].edp_improvement
    high = outcomes[(140.0, 0.90)]["swim_in"][0].edp_improvement
    assert high > low
