"""Table 2 — translation of phases to DVFS settings.

Regenerates the phase-to-(frequency, voltage) look-up table used by the
deployed PMI handler and checks it verbatim against the paper.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.dvfs_policy import DVFSPolicy

PAPER_TABLE_2 = {
    1: (1500, 1484),
    2: (1400, 1452),
    3: (1200, 1356),
    4: (1000, 1228),
    5: (800, 1116),
    6: (600, 956),
}


def build_policy():
    return DVFSPolicy.paper_default()


def test_table2_dvfs_settings(benchmark, report):
    policy = run_once(benchmark, build_policy)

    rows = []
    for definition in policy.phase_table.definitions:
        point = policy.setting_for(definition.phase_id)
        rows.append(
            (
                definition.phase_id,
                f"({point.frequency_mhz} MHz, {point.voltage_mv} mV)",
            )
        )
    report(
        "table2_dvfs_settings",
        format_table(
            ["Phase #", "DVFS Setting"],
            rows,
            title="Table 2. Translation of phases to DVFS settings.",
        ),
        parameters={"source": "paper_table_2"},
        metrics={
            "n_settings": len(rows),
            "paper_settings_matched": sum(
                1
                for phase_id, (mhz, mv) in PAPER_TABLE_2.items()
                if (
                    policy.setting_for(phase_id).frequency_mhz,
                    policy.setting_for(phase_id).voltage_mv,
                )
                == (mhz, mv)
            ),
            "monotonic": int(policy.is_monotonic()),
        },
    )

    for phase_id, (mhz, mv) in PAPER_TABLE_2.items():
        point = policy.setting_for(phase_id)
        assert (point.frequency_mhz, point.voltage_mv) == (mhz, mv)
    assert policy.is_monotonic()
