"""Ablation — robustness to stochastic (pattern-free) phase behaviour.

The paper argues that 'for a hypothetical application with no evident
recurrent behavior, no predictor can perform good predictions', and that
the GPHT's miss fallback guarantees it meets last-value accuracy in that
worst case.  This ablation constructs exactly that adversary — Markov
chains with one step of memory and varying stickiness — and measures how
close GPHT stays to last value (the Bayes-optimal single-step predictor
for sticky chains).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.reporting import format_table
from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
)
from repro.workloads.generators import MarkovPattern

N_INTERVALS = 2000

#: Phase levels for a three-state chain: CPU-bound, mid, memory-bound.
STATES = [(0.0015, 1.6), (0.0125, 1.3), (0.0350, 1.1)]

#: Self-transition probabilities from sticky to fully random.
STICKINESS = (0.9, 0.7, 0.5, 1 / 3)


def chain(stay):
    leave = (1.0 - stay) / 2.0
    matrix = [
        [stay, leave, leave],
        [leave, stay, leave],
        [leave, leave, stay],
    ]
    return MarkovPattern(STATES, matrix)


def run_sweep():
    results = {}
    for stay in STICKINESS:
        series = chain(stay).generate(
            N_INTERVALS, np.random.default_rng(12345)
        )[:, 0]
        results[stay] = {
            "LastValue": evaluate_predictor(LastValuePredictor(), series),
            "FixWindow_8": evaluate_predictor(
                FixedWindowPredictor(8), series
            ),
            "GPHT_8_128": evaluate_predictor(GPHTPredictor(8, 128), series),
        }
    return results


def test_ablation_markov_robustness(benchmark, report):
    results = run_once(benchmark, run_sweep)

    rows = []
    for stay in STICKINESS:
        per = results[stay]
        rows.append(
            (
                f"{stay:.2f}",
                round(per["LastValue"].accuracy * 100, 1),
                round(per["FixWindow_8"].accuracy * 100, 1),
                round(per["GPHT_8_128"].accuracy * 100, 1),
            )
        )
    report(
        "ablation_markov_robustness",
        format_table(
            ["self-transition p", "LastValue", "FixWindow_8", "GPHT_8_128"],
            rows,
            title=(
                "Ablation: accuracy (%) on memoryless (Markov) phase "
                "behaviour — the GPHT's worst case."
            ),
        ),
        parameters={"n_intervals": N_INTERVALS, "n_states": len(STATES)},
        metrics={
            f"gpht_accuracy_p{int(stay * 100):02d}": results[stay][
                "GPHT_8_128"
            ].accuracy
            for stay in STICKINESS
        },
    )

    for stay in STICKINESS:
        per = results[stay]
        last = per["LastValue"].accuracy
        gpht = per["GPHT_8_128"].accuracy

        # The worst-case guarantee: GPHT tracks last value closely even
        # when there is no pattern to exploit.
        assert gpht >= last - 0.08, stay

        # Sticky chains: last value approximates the stay probability.
        if stay >= 0.5:
            assert abs(last - stay) < 0.06, stay

    # Accuracy degrades monotonically as the chain loses stickiness,
    # for every predictor — there is no free lunch on random input.
    for column in ("LastValue", "GPHT_8_128"):
        accuracies = [results[s][column].accuracy for s in STICKINESS]
        assert all(
            b <= a + 0.03 for a, b in zip(accuracies, accuracies[1:])
        ), column
