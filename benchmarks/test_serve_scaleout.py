"""Scale-out serving — batched wire protocol across sharded topologies.

Measures wire samples/sec over the full TCP path (loadgen -> router ->
worker) on a workers x batch grid, and certifies that every cell serves
**bit-for-bit** the outcomes an in-process :class:`PhaseSession` emits
for the same workload: the scale-out machinery is pure plumbing, never a
different predictor.

Two claims, machine-checked:

* equivalence — the loadgen outcome digest is identical across every
  topology/batch combination AND equal to the digest computed from a
  plain in-process session (no wire, no sharding);
* throughput — batching + sharding lifts wire samples/sec by >= 3x over
  naive single-sample wire serving measured the same way in the same
  run.  (On a single-core host the lift comes almost entirely from
  batch amortization of the per-request protocol cost; worker processes
  add parallel headroom only when cores exist to back them.)

Results land in ``benchmarks/results/serve_scaleout.json`` — the
machine-readable record, including the in-process single-sample baseline
(the PR 4 reference measurement) for context.  The >= 3x scale-out
claim is recorded in the artifact's ``measured`` block and gated by
``repro bench compare`` (hard only under ``REPRO_BENCH_ENFORCE=1``);
the digest equivalence stays unconditional.
"""

import hashlib
import json
import os
import time

from repro.bench import check_perf, require_positive_elapsed
from repro.serve import (
    PhaseSession,
    SessionConfig,
    SessionManager,
    ShardedServer,
    generate_series,
    handle_line,
    run_loadgen,
)

WORKER_COUNTS = (1, 2, 4)
BATCH_SIZES = (1, 16, 64)

#: Workload for the throughput cells (per cell).
SESSIONS = 8
SAMPLES_PER_SESSION = 4096
CONNECTIONS = 4

#: Smaller workload for the (fully verified) equivalence cells.
VERIFY_SAMPLES_PER_SESSION = 256

#: The scale-out claim: best batched+sharded cell vs the single-sample
#: wire cell measured identically in this run.
MIN_SPEEDUP = 3.0


def _expected_digest(sessions, samples_per_session, seed=0):
    """The loadgen digest, recomputed from in-process sessions only."""
    combined = hashlib.sha256()
    for session_index in range(sessions):
        series = generate_series(samples_per_session, seed + session_index)
        session = PhaseSession(SessionConfig(governor="gpht"))
        digest = hashlib.sha256()
        for index, value in enumerate(series):
            outcome = session.feed(index, value)
            hit = outcome.hit
            row = (
                f"{outcome.interval}:{outcome.actual_phase}:"
                f"{outcome.predicted_phase}:{outcome.frequency_mhz}:"
                f"{int(outcome.degraded)}:"
                f"{'-' if hit is None else int(hit)}"
            )
            digest.update(row.encode("utf-8"))
            digest.update(b"\n")
        combined.update(digest.hexdigest().encode("ascii"))
        combined.update(b"\n")
    return combined.hexdigest()


def _inprocess_baseline(n_samples=4096):
    """PR 4 reference: single-sample handle_line with no wire at all."""
    series = generate_series(n_samples, seed=0)
    manager = SessionManager()
    handle_line(manager, json.dumps({"op": "hello"}))
    lines = [
        json.dumps(
            {
                "op": "sample",
                "session": "s1",
                "interval": index,
                "mem_per_uop": value,
            }
        )
        for index, value in enumerate(series)
    ]
    started = time.monotonic()
    for line in lines:
        handle_line(manager, line)
    elapsed = require_positive_elapsed(
        time.monotonic() - started, "in-process baseline"
    )
    return n_samples / elapsed


def test_serve_scaleout_grid(report):
    expected = _expected_digest(SESSIONS, VERIFY_SAMPLES_PER_SESSION)
    inprocess_baseline = _inprocess_baseline()

    cells = []
    for workers in WORKER_COUNTS:
        server = ShardedServer(workers=workers, max_sessions=64)
        port = server.start()
        try:
            for batch in BATCH_SIZES:
                verified = run_loadgen(
                    "127.0.0.1",
                    port,
                    sessions=SESSIONS,
                    samples_per_session=VERIFY_SAMPLES_PER_SESSION,
                    batch_size=batch,
                    connections=CONNECTIONS,
                )
                assert verified.errors == 0, (workers, batch)
                assert verified.outcome_digest == expected, (
                    f"workers={workers} batch={batch} served different "
                    "outcomes than an in-process session"
                )
                timed = run_loadgen(
                    "127.0.0.1",
                    port,
                    sessions=SESSIONS,
                    samples_per_session=SAMPLES_PER_SESSION,
                    batch_size=batch,
                    connections=CONNECTIONS,
                    verify=False,
                )
                assert timed.errors == 0, (workers, batch)
                require_positive_elapsed(
                    timed.elapsed_s,
                    f"loadgen workers={workers} batch={batch}",
                )
                cells.append(
                    {
                        "workers": workers,
                        "batch": batch,
                        "samples": timed.samples,
                        "requests": timed.requests,
                        "elapsed_s": timed.elapsed_s,
                        "samples_per_s": timed.samples_per_s,
                        "requests_per_s": timed.requests_per_s,
                        "outcome_digest": verified.outcome_digest,
                    }
                )
        finally:
            server.stop()

    def rate(workers, batch):
        for cell in cells:
            if cell["workers"] == workers and cell["batch"] == batch:
                return cell["samples_per_s"]
        raise AssertionError((workers, batch))

    wire_baseline = rate(1, 1)
    best = rate(max(WORKER_COUNTS), max(BATCH_SIZES))
    speedup = best / wire_baseline

    lines = [
        "Serving layer. Scale-out wire throughput (samples/sec):",
        "workers  " + "  ".join(f"batch={b:<4}" for b in BATCH_SIZES),
    ]
    for workers in WORKER_COUNTS:
        lines.append(
            f"{workers:<7}  "
            + "  ".join(f"{rate(workers, b):>9,.0f}" for b in BATCH_SIZES)
        )
    lines.append(
        f"speedup workers={max(WORKER_COUNTS)},batch={max(BATCH_SIZES)} "
        f"vs workers=1,batch=1: {speedup:.1f}x "
        f"(in-process single-sample reference: "
        f"{inprocess_baseline:,.0f}/s, cpus={os.cpu_count()})"
    )
    report(
        "serve_scaleout",
        "\n".join(lines),
        parameters={
            "sessions": SESSIONS,
            "samples_per_session": SAMPLES_PER_SESSION,
            "connections": CONNECTIONS,
            "min_required_speedup": MIN_SPEEDUP,
            "outcome_digest": expected,
        },
        measured={
            "wire_baseline_samples_per_s": wire_baseline,
            "inprocess_baseline_samples_per_s": inprocess_baseline,
            "best_samples_per_s": best,
            "speedup_vs_wire_baseline": speedup,
        },
        details={"grid": cells, "cpu_count": os.cpu_count()},
    )

    # Every topology/batch served identical outcomes (asserted per cell
    # above), so the speedup is a like-for-like comparison.
    check_perf(
        speedup >= MIN_SPEEDUP,
        f"workers={max(WORKER_COUNTS)}, batch={max(BATCH_SIZES)} reached "
        f"{best:,.0f} samples/s — only {speedup:.2f}x the single-sample "
        f"wire baseline ({wire_baseline:,.0f}/s); need >= {MIN_SPEEDUP}x",
    )
