"""Serving layer — vectorized batch feed vs the scalar sample loop.

The batch-first predictor API exists for one reason: a live session
should absorb a backlog of samples far faster than replaying them one
``feed()`` at a time, without changing a single bit of the outcome.
This bench pins both halves of that claim.  The scalar baseline is
re-measured in the same run (absolute throughput varies wildly across
hosts; the committed artifact from another machine is not a fair
denominator), the speedup is asserted against the >= 5x target, and
the measurement is persisted as a versioned JSON artifact.
"""

import time

from repro.serve import PhaseSession, SessionConfig
from repro.workloads.spec2000 import benchmark as spec_benchmark

from .conftest import run_once

BATCH_SIZE = 1024
N_SAMPLES = 8192
SPEEDUP_TARGET = 5.0
ARTIFACT_VERSION = 1


def _mem_series(n_intervals):
    trace = spec_benchmark("applu_in").trace(n_intervals=n_intervals)
    return list(trace.mem_per_uop_series())


def _scalar_seconds(series, rounds=3):
    """Best-of-N scalar feed time — the in-run baseline."""
    best = float("inf")
    for _ in range(rounds):
        session = PhaseSession(SessionConfig())
        start = time.perf_counter()
        for index, value in enumerate(series):
            session.feed(index, value)
        best = min(best, time.perf_counter() - start)
    return best, session


def _feed_batched(series):
    session = PhaseSession(SessionConfig())
    for start in range(0, len(series), BATCH_SIZE):
        chunk = series[start:start + BATCH_SIZE]
        session.feed_batch(start, [(value, 0.0) for value in chunk])
    return session


def test_batch_feed_throughput_speedup(benchmark, report, report_json):
    """feed_batch must beat the scalar loop >= 5x, bit-identically."""
    series = _mem_series(N_SAMPLES)

    scalar_seconds, scalar_session = _scalar_seconds(series)
    batch_session = run_once(benchmark, lambda: _feed_batched(series))

    # Identical outcomes are a precondition for the speedup to count.
    assert batch_session.samples == scalar_session.samples == len(series)
    assert batch_session.snapshot() == scalar_session.snapshot()

    batch_seconds = benchmark.stats.stats.min
    scalar_rate = len(series) / scalar_seconds
    batch_rate = len(series) / batch_seconds
    speedup = scalar_rate and batch_rate / scalar_rate

    report(
        "batch_feed_throughput",
        "Serving layer. PhaseSession.feed_batch (vectorized fast path): "
        f"{batch_rate:,.0f} samples/sec vs scalar feed "
        f"{scalar_rate:,.0f} samples/sec -> {speedup:.1f}x speedup "
        f"(batch size {BATCH_SIZE}, applu_in Mem/Uop series, "
        "GPHT 8x128, table2 policy).",
    )
    report_json(
        "batch_feed_throughput",
        {
            "version": ARTIFACT_VERSION,
            "benchmark": "applu_in",
            "samples": len(series),
            "batch_size": BATCH_SIZE,
            "scalar_samples_per_s": round(scalar_rate, 1),
            "batch_samples_per_s": round(batch_rate, 1),
            "speedup": round(speedup, 2),
            "speedup_target": SPEEDUP_TARGET,
        },
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"batch fast path only {speedup:.1f}x over scalar feed "
        f"(target {SPEEDUP_TARGET}x)"
    )


def test_batch_evaluator_matches_and_outruns_scalar(benchmark, report):
    """evaluate_predictor_batch: same PredictionResult, far less time."""
    from repro.analysis.accuracy import (
        evaluate_predictor,
        evaluate_predictor_batch,
    )
    from repro.core.predictors import GPHTPredictor

    series = _mem_series(N_SAMPLES)
    predictor = GPHTPredictor(8, 128)

    start = time.perf_counter()
    scalar_result = evaluate_predictor(predictor, series)
    scalar_seconds = time.perf_counter() - start

    batch_result = run_once(
        benchmark, lambda: evaluate_predictor_batch(predictor, series)
    )
    assert batch_result == scalar_result

    batch_seconds = benchmark.stats.stats.min
    report(
        "batch_evaluator_throughput",
        "Analysis layer. evaluate_predictor_batch(GPHT 8x128): "
        f"{len(series) / batch_seconds:,.0f} samples/sec vs scalar "
        f"{len(series) / scalar_seconds:,.0f} samples/sec "
        f"({scalar_seconds / batch_seconds:.1f}x) on applu_in.",
    )
    assert batch_seconds < scalar_seconds
