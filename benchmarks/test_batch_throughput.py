"""Serving layer — vectorized batch feed vs the scalar sample loop.

The batch-first predictor API exists for one reason: a live session
should absorb a backlog of samples far faster than replaying them one
``feed()`` at a time, without changing a single bit of the outcome.
This bench pins both halves of that claim.  The bit-equality checks
are unconditional; the wall-clock speedup is *recorded* into the
artifact's ``measured`` block and gated by ``repro bench compare``
(hard-asserted only under ``REPRO_BENCH_ENFORCE=1``) — a loaded shared
runner must never turn a slow minute into a red build.  The scalar
baseline is re-measured in the same run: absolute throughput varies
wildly across hosts, so a committed number from another machine is not
a fair denominator.
"""

import time

from repro.bench import check_perf, require_positive_elapsed
from repro.serve import PhaseSession, SessionConfig
from repro.workloads.spec2000 import benchmark as spec_benchmark

from .conftest import run_once

BATCH_SIZE = 1024
N_SAMPLES = 8192
SPEEDUP_TARGET = 5.0


def _mem_series(n_intervals):
    trace = spec_benchmark("applu_in").trace(n_intervals=n_intervals)
    return list(trace.mem_per_uop_series())


def _scalar_seconds(series, rounds=3):
    """Best-of-N scalar feed time — the in-run baseline."""
    best = float("inf")
    for _ in range(rounds):
        session = PhaseSession(SessionConfig())
        start = time.perf_counter()
        for index, value in enumerate(series):
            session.feed(index, value)
        best = min(best, time.perf_counter() - start)
    return best, session


def _feed_batched(series):
    session = PhaseSession(SessionConfig())
    for start in range(0, len(series), BATCH_SIZE):
        chunk = series[start:start + BATCH_SIZE]
        session.feed_batch(start, [(value, 0.0) for value in chunk])
    return session


def assess_speedup(scalar_seconds, batch_seconds, n_samples):
    """Turn two elapsed times into rates and a speedup.

    Pure (no clocks, no fixtures) so the de-flake regression tests can
    drive it with mocked timings.  Degenerate elapsed times raise
    :class:`repro.bench.MeasurementError` instead of short-circuiting
    to a silent ``0.0`` speedup.
    """
    scalar_seconds = require_positive_elapsed(
        scalar_seconds, "scalar feed baseline"
    )
    batch_seconds = require_positive_elapsed(batch_seconds, "batch feed")
    scalar_rate = n_samples / scalar_seconds
    batch_rate = n_samples / batch_seconds
    return scalar_rate, batch_rate, batch_rate / scalar_rate


def test_batch_feed_throughput_speedup(benchmark, report):
    """feed_batch matches the scalar loop bit-for-bit; speedup recorded."""
    series = _mem_series(N_SAMPLES)

    scalar_seconds, scalar_session = _scalar_seconds(series)
    batch_session = run_once(benchmark, lambda: _feed_batched(series))

    # Identical outcomes are a precondition for the speedup to count —
    # these stay unconditional.
    assert batch_session.samples == scalar_session.samples == len(series)
    assert batch_session.snapshot() == scalar_session.snapshot()

    scalar_rate, batch_rate, speedup = assess_speedup(
        scalar_seconds, benchmark.stats.stats.min, len(series)
    )

    report(
        "batch_feed_throughput",
        "Serving layer. PhaseSession.feed_batch (vectorized fast path): "
        f"{batch_rate:,.0f} samples/sec vs scalar feed "
        f"{scalar_rate:,.0f} samples/sec -> {speedup:.1f}x speedup "
        f"(batch size {BATCH_SIZE}, applu_in Mem/Uop series, "
        "GPHT 8x128, table2 policy).",
        parameters={
            "benchmark": "applu_in",
            "samples": len(series),
            "batch_size": BATCH_SIZE,
            "speedup_target": SPEEDUP_TARGET,
        },
        measured={
            "scalar_samples_per_s": round(scalar_rate, 1),
            "batch_samples_per_s": round(batch_rate, 1),
            "speedup": round(speedup, 2),
        },
    )
    check_perf(
        speedup >= SPEEDUP_TARGET,
        f"batch fast path only {speedup:.1f}x over scalar feed "
        f"(target {SPEEDUP_TARGET}x)",
    )


def test_batch_evaluator_matches_and_outruns_scalar(benchmark, report):
    """evaluate_predictor_batch: same PredictionResult, far less time."""
    from repro.analysis.accuracy import (
        evaluate_predictor,
        evaluate_predictor_batch,
    )
    from repro.core.predictors import GPHTPredictor

    series = _mem_series(N_SAMPLES)
    predictor = GPHTPredictor(8, 128)

    start = time.perf_counter()
    scalar_result = evaluate_predictor(predictor, series)
    scalar_seconds = time.perf_counter() - start

    batch_result = run_once(
        benchmark, lambda: evaluate_predictor_batch(predictor, series)
    )
    # Unconditional: the batch evaluator must be bit-identical.
    assert batch_result == scalar_result

    scalar_rate, batch_rate, speedup = assess_speedup(
        scalar_seconds, benchmark.stats.stats.min, len(series)
    )
    report(
        "batch_evaluator_throughput",
        "Analysis layer. evaluate_predictor_batch(GPHT 8x128): "
        f"{batch_rate:,.0f} samples/sec vs scalar "
        f"{scalar_rate:,.0f} samples/sec "
        f"({speedup:.1f}x) on applu_in.",
        parameters={
            "benchmark": "applu_in",
            "samples": len(series),
            "predictor": "GPHT_8_128",
        },
        metrics={
            "accuracy": batch_result.accuracy,
        },
        measured={
            "scalar_samples_per_s": round(scalar_rate, 1),
            "batch_samples_per_s": round(batch_rate, 1),
            "speedup": round(speedup, 2),
        },
    )
    check_perf(
        speedup >= 1.0,
        f"batch evaluator slower than the scalar path ({speedup:.2f}x)",
    )
