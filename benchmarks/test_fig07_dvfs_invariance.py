"""Figure 7 — observed UPC and Mem/Uop behaviour at the six frequencies
for IPCxMEM grid configurations.

Runs representative IPCxMEM configurations at every SpeedStep point on
the simulated machine — through the real PMC/PMI path, not the analytic
model directly — and asserts the paper's Section 4 conclusions:

* UPC depends strongly on frequency, more so the more memory-bound the
  configuration (up to ~80% in the paper);
* Mem/Uop is virtually frequency-invariant at every grid point.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.governor import StaticGovernor
from repro.system.machine import Machine
from repro.workloads.ipcxmem import solve_configuration
from repro.workloads.segments import WorkloadTrace

# The paper's Figure 7 legend entries (feasible subset under our model).
LEGEND_CONFIGS = [
    (1.9, 0.0000),
    (1.3, 0.0075),
    (0.9, 0.0125),
    (0.9, 0.0075),
    (0.9, 0.0000),
    (0.5, 0.0225),
    (0.5, 0.0025),
    (0.5, 0.0000),
    (0.1, 0.0475),
    (0.1, 0.0325),
    (0.1, 0.0000),
]


def run_grid_over_frequencies():
    machine = Machine(granularity_uops=1_000_000)
    results = {}
    for target_upc, target_mem in LEGEND_CONFIGS:
        config = solve_configuration(target_upc, target_mem)
        segment = config.segment
        trace = WorkloadTrace(
            config.label,
            [
                type(segment)(
                    uops=1_000_000,
                    mem_per_uop=segment.mem_per_uop,
                    upc_core=segment.upc_core,
                    mem_overlap=segment.mem_overlap,
                )
            ]
            * 3,
        )
        per_frequency = {}
        for point in machine.speedstep:
            run = machine.run(
                trace, StaticGovernor(point), initial_point=point
            )
            record = run.intervals[-1].record
            per_frequency[point.frequency_mhz] = (
                record.upc,
                record.mem_per_uop,
            )
        results[(target_upc, target_mem)] = per_frequency
    return results


def test_fig07_dvfs_invariance(benchmark, report):
    results = run_once(benchmark, run_grid_over_frequencies)

    frequencies = sorted(next(iter(results.values())), reverse=True)
    upc_rows, mem_rows = [], []
    for (upc, mem), per_frequency in results.items():
        label = f"UPC={upc:.1f}, Mem/Uop={mem:.4f}"
        upc_rows.append(
            [label] + [round(per_frequency[f][0], 3) for f in frequencies]
        )
        mem_rows.append(
            [label] + [round(per_frequency[f][1], 4) for f in frequencies]
        )
    headers = ["configuration"] + [f"{f}MHz" for f in frequencies]
    max_mem_spread = max(
        max(per[f][1] for f in frequencies)
        - min(per[f][1] for f in frequencies)
        for per in results.values()
    )
    heavy_per_frequency = results[(0.1, 0.0475)]
    heavy_upcs = [heavy_per_frequency[f][0] for f in frequencies]
    report(
        "fig07_dvfs_invariance",
        format_table(
            headers, upc_rows,
            title="Figure 7 (left): observed UPC vs frequency.",
        )
        + "\n\n"
        + format_table(
            headers, mem_rows,
            title="Figure 7 (right): observed Mem/Uop vs frequency.",
        ),
        parameters={
            "n_configurations": len(LEGEND_CONFIGS),
            "n_frequencies": len(frequencies),
        },
        metrics={
            "max_mem_per_uop_spread": max_mem_spread,
            "heavy_config_upc_change": max(heavy_upcs) / min(heavy_upcs)
            - 1.0,
        },
    )

    for (target_upc, target_mem), per_frequency in results.items():
        upcs = [per_frequency[f][0] for f in frequencies]
        mems = [per_frequency[f][1] for f in frequencies]

        # Mem/Uop: 'virtually no dependence to DVFS settings'.
        assert max(mems) - min(mems) < 1e-9, (target_upc, target_mem)
        assert mems[0] == round(target_mem, 6) or abs(
            mems[0] - target_mem
        ) < 1e-9

        upc_change = max(upcs) / min(upcs) - 1.0
        if target_mem == 0.0:
            # CPU-bound rows: 'no dependence to frequency'.
            assert upc_change < 1e-9, (target_upc, target_mem)
        else:
            # Memory-bound rows: UPC rises as frequency drops.
            assert upcs == sorted(upcs, reverse=False) or upcs == sorted(
                upcs
            ), (target_upc, target_mem)
            assert upc_change > 0.02, (target_upc, target_mem)

    # The most memory-bound configuration changes UPC substantially
    # (the paper reports up to ~80%; we require > 40%).
    heavy = results[(0.1, 0.0475)]
    upcs = [heavy[f][0] for f in frequencies]
    assert max(upcs) / min(upcs) - 1.0 > 0.4
