"""Extension — system-wide management of multiprogrammed workloads.

The paper's deployed predictor is system-wide: the PMI observes whatever
the processor executes, context switches included.  This bench
co-schedules a CPU-bound and a memory-bound application under a
round-robin quantum and measures how the GPHT-guided governor handles
the switch-induced phase alternation versus reactive management.

Expected shape: the switch pattern is deterministic, so the GPHT learns
to flip the DVFS setting *ahead of* each context switch, while the
reactive governor is always one quantum late — on a workload whose
phases alternate every quantum, reactive management configures the CPU
wrongly almost all the time.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_percent, format_table
from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.multiprogram import round_robin
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 150
QUANTUM_UOPS = 200_000_000  # two sampling intervals per timeslice


def run_mix():
    machine = Machine()
    cpu_app = spec_benchmark("crafty_in").trace(n_intervals=N_INTERVALS)
    mem_app = spec_benchmark("swim_in").trace(n_intervals=N_INTERVALS)
    combined = round_robin([cpu_app, mem_app], quantum_uops=QUANTUM_UOPS)

    baseline = machine.run(combined, StaticGovernor(machine.speedstep.fastest))
    gpht = machine.run(
        combined, PhasePredictionGovernor(GPHTPredictor(8, 128))
    )
    reactive = machine.run(combined, ReactiveGovernor())
    return baseline, gpht, reactive


def test_ext_multiprogram(benchmark, report):
    baseline, gpht, reactive = run_once(benchmark, run_mix)
    gpht_cmp = ComparisonMetrics(baseline=baseline, managed=gpht)
    reactive_cmp = ComparisonMetrics(baseline=baseline, managed=reactive)

    rows = [
        (
            "GPHT_8_128",
            format_percent(gpht.prediction_accuracy()),
            format_percent(gpht_cmp.edp_improvement),
            format_percent(gpht_cmp.performance_degradation),
        ),
        (
            "Reactive",
            format_percent(reactive.prediction_accuracy()),
            format_percent(reactive_cmp.edp_improvement),
            format_percent(reactive_cmp.performance_degradation),
        ),
    ]
    report(
        "ext_multiprogram",
        format_table(
            ["governor", "online accuracy", "EDP impr", "perf degr"],
            rows,
            title=(
                "Extension: crafty+swim round-robin "
                f"(quantum {QUANTUM_UOPS // 1_000_000}M uops)."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "quantum_uops": QUANTUM_UOPS,
        },
        metrics={
            "gpht_prediction_accuracy": gpht.prediction_accuracy(),
            "reactive_prediction_accuracy": reactive.prediction_accuracy(),
            "gpht_edp_improvement": gpht_cmp.edp_improvement,
            "reactive_edp_improvement": reactive_cmp.edp_improvement,
        },
    )

    # The quantum alternation defeats reactive prediction almost
    # entirely; the GPHT learns the schedule.
    assert gpht.prediction_accuracy() > 0.85
    assert reactive.prediction_accuracy() < 0.60

    # Learned switching converts directly into better efficiency.
    assert gpht_cmp.edp_improvement > reactive_cmp.edp_improvement + 0.05

    # Management still pays off on the mix at all.
    assert gpht_cmp.edp_improvement > 0.10
