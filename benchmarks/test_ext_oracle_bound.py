"""Extension — how much of the achievable benefit does the GPHT capture?

Because `Mem/Uop` phases are DVFS-invariant, a trace's true phase
sequence is knowable in advance, which makes a *perfect* predictor
constructible: an oracle-driven governor bounds what any predictor could
deliver under the same phase definitions and policy table.  This bench
places reactive, GPHT and oracle management side by side on the variable
benchmarks and measures how much of the oracle's EDP improvement each
causal predictor realises.

Expected shape: the GPHT closes a substantial share of the gap between
reactive and oracle management — the residual is the price of jitter
and variant boundaries no causal predictor can foresee.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.governor import (
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, OraclePredictor
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 300
WORKLOADS = ("applu_in", "equake_in", "mgrid_in", "bzip2_graphic")


def run_bound():
    machine = Machine()
    table = PhaseTable()
    outcomes = {}
    for name in WORKLOADS:
        trace = spec_benchmark(name).trace(n_intervals=N_INTERVALS)
        phases = table.classify_series(trace.mem_per_uop_series())
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        per_governor = {}
        governors = {
            "Reactive": ReactiveGovernor(),
            "GPHT": PhasePredictionGovernor(GPHTPredictor(8, 128)),
            "Oracle": PhasePredictionGovernor(
                OraclePredictor(phases), name="Oracle"
            ),
        }
        for label, governor in governors.items():
            managed = machine.run(trace, governor)
            per_governor[label] = ComparisonMetrics(
                baseline=baseline, managed=managed
            )
        outcomes[name] = per_governor
    return outcomes


def test_ext_oracle_bound(benchmark, report):
    outcomes = run_once(benchmark, run_bound)

    rows = []
    captured_by_name = {}
    for name, per in outcomes.items():
        oracle = per["Oracle"].edp_improvement
        gpht = per["GPHT"].edp_improvement
        reactive = per["Reactive"].edp_improvement
        captured = (
            (gpht - reactive) / (oracle - reactive)
            if oracle > reactive
            else 1.0
        )
        captured_by_name[name] = captured
        rows.append(
            (
                name,
                f"{reactive:.1%}",
                f"{gpht:.1%}",
                f"{oracle:.1%}",
                f"{captured:.0%}",
            )
        )
    report(
        "ext_oracle_bound",
        format_table(
            [
                "benchmark",
                "EDP impr (reactive)",
                "EDP impr (GPHT)",
                "EDP impr (oracle)",
                "gap captured by GPHT",
            ],
            rows,
            title=(
                "Extension: oracle upper bound on prediction-driven "
                "management."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(WORKLOADS),
        },
        metrics={
            "mean_gap_captured": sum(captured_by_name.values())
            / len(captured_by_name),
            **{
                f"{name}_gpht_edp_improvement": outcomes[name][
                    "GPHT"
                ].edp_improvement
                for name in WORKLOADS
            },
        },
    )

    for name, per in outcomes.items():
        oracle = per["Oracle"].edp_improvement
        gpht = per["GPHT"].edp_improvement
        reactive = per["Reactive"].edp_improvement

        # Ordering: reactive <= GPHT <= oracle (small tolerance — a
        # mispredicted slow setting can occasionally luck into EDP).
        assert reactive <= gpht + 0.01, name
        assert gpht <= oracle + 0.01, name

        # The GPHT captures a substantial share of the
        # reactive-to-oracle gap (45-77% measured across the set).
        if oracle > reactive + 0.01:
            captured = (gpht - reactive) / (oracle - reactive)
            assert captured > 0.4, name

        # Oracle management also bounds performance degradation from
        # mispredictions: it never degrades more than reactive + noise.
        assert (
            per["Oracle"].performance_degradation
            <= per["Reactive"].performance_degradation + 0.05
        ), name
