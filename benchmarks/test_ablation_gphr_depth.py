"""Ablation — GPHR depth sensitivity (extension; DESIGN.md §7).

The paper fixes the history depth at 8 and sweeps only the PHT size
(Figure 5).  This ablation completes the picture: accuracy versus GPHR
depth on the variable benchmarks, with the PHT held at 1024 entries so
capacity never masks the history effect.

Expected shape: depth 1 cannot disambiguate contexts that share their
last phase, so it sits well below depth 8; very deep histories gain
nothing further (the benchmarks' motifs fit inside depth ~8) and may
dilute slightly under jitter.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.reporting import format_table
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.workloads.spec2000 import VARIABLE_BENCHMARKS, benchmark

N_INTERVALS = 1000
DEPTHS = (1, 2, 4, 8, 12, 16)


def run_sweep():
    factories = [LastValuePredictor] + [
        (lambda d=d: GPHTPredictor(d, 1024)) for d in DEPTHS
    ]
    series = {
        name: benchmark(name).mem_series(N_INTERVALS)
        for name in VARIABLE_BENCHMARKS
    }
    return evaluate_suite(factories, series)


def test_ablation_gphr_depth(benchmark, report):
    results = run_once(benchmark, run_sweep)

    columns = ["LastValue"] + [f"GPHT_{d}_1024" for d in DEPTHS]
    rows = [
        [name] + [round(results[name][c].accuracy * 100, 1) for c in columns]
        for name in VARIABLE_BENCHMARKS
    ]
    report(
        "ablation_gphr_depth",
        format_table(
            ["benchmark"] + columns,
            rows,
            title="Ablation: GPHT accuracy (%) vs GPHR depth (PHT=1024).",
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(VARIABLE_BENCHMARKS),
        },
        metrics={
            f"{column}_mean_accuracy": sum(
                results[name][column].accuracy
                for name in VARIABLE_BENCHMARKS
            )
            / len(VARIABLE_BENCHMARKS)
            for column in columns
        },
    )

    for name in VARIABLE_BENCHMARKS:
        acc = {c: results[name][c].accuracy for c in columns}

        # Deep history dominates shallow history on pattern-rich apps.
        assert acc["GPHT_8_1024"] >= acc["GPHT_1_1024"] - 0.02, name

        # The paper's depth-8 choice is on the plateau: going deeper
        # buys nothing significant.
        assert abs(acc["GPHT_16_1024"] - acc["GPHT_8_1024"]) < 0.06, name

    # On the most rapidly varying benchmarks the depth effect is large.
    for name in ("applu_in", "equake_in"):
        acc = {c: results[name][c].accuracy for c in columns}
        assert acc["GPHT_8_1024"] > acc["GPHT_1_1024"] + 0.05, name
