"""Figure 5 — GPHT prediction accuracy for different numbers of PHT
entries (1024, 128, 64, 1) against last value, over the 18 less
predictable benchmarks.

Asserts the paper's sizing conclusions: 128 entries are indistinguishable
from 1024, 64 shows observable degradation on the variable applications,
and a single entry converges to last-value behaviour.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.reporting import format_table
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.workloads.spec2000 import FIG5_BENCHMARKS, benchmark

N_INTERVALS = 1000

PHT_SIZES = (1024, 128, 64, 1)


def run_sweep():
    factories = [LastValuePredictor] + [
        (lambda n=n: GPHTPredictor(8, n)) for n in PHT_SIZES
    ]
    series = {
        name: benchmark(name).mem_series(N_INTERVALS)
        for name in FIG5_BENCHMARKS
    }
    return evaluate_suite(factories, series)


def test_fig05_pht_sweep(benchmark, report):
    results = run_once(benchmark, run_sweep)

    columns = ["LastValue"] + [f"GPHT_8_{n}" for n in PHT_SIZES]
    rows = []
    for name in FIG5_BENCHMARKS:
        rows.append(
            [name]
            + [round(results[name][c].accuracy * 100, 1) for c in columns]
        )
    report(
        "fig05_pht_sweep",
        format_table(
            ["benchmark"] + columns,
            rows,
            title=(
                "Figure 5. GPHT prediction accuracy (%) for different "
                "number of PHT entries."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(FIG5_BENCHMARKS),
        },
        metrics={
            f"{column}_mean_accuracy": sum(
                results[name][column].accuracy for name in FIG5_BENCHMARKS
            )
            / len(FIG5_BENCHMARKS)
            for column in columns
        },
    )

    for name in FIG5_BENCHMARKS:
        per = results[name]
        acc = {c: per[c].accuracy for c in columns}

        # 'Down to 128 entries, GPHT performs almost identically to the
        # 1024 entry predictor.'
        assert acc["GPHT_8_128"] >= acc["GPHT_8_1024"] - 0.03, name

        # 'The accuracy of the GPHT predictor converges to last value'
        # with a single entry.
        assert abs(acc["GPHT_8_1"] - acc["LastValue"]) < 0.03, name

        # Capacity ordering is monotone up to noise.  The tolerance
        # covers benchmarks where a thrashing mid-size table predicts
        # patterns a last-value fallback would have gotten right.
        assert acc["GPHT_8_1024"] >= acc["GPHT_8_64"] - 0.02, name
        assert acc["GPHT_8_64"] >= acc["GPHT_8_1"] - 0.04, name

    # 'Observable degradations in accuracy are seen with a 64 entry
    # PHT' — visible on the hardest, most pattern-rich applications.
    degradations = [
        results[name]["GPHT_8_128"].accuracy
        - results[name]["GPHT_8_64"].accuracy
        for name in ("applu_in", "equake_in")
    ]
    assert max(degradations) > 0.02
