"""Serving layer — streaming sample throughput and request overhead.

The paper's deployment argument is that phase management is cheap enough
to run inside the OS with no observable overhead; the serving layer
makes the analogous claim for the online service: one protocol request
(parse, dispatch, classify, train, predict, serialize) must stay far
below the ~100 ms pace of real 100M-uop sampling intervals.

Two benches: the raw ``PhaseSession.feed`` loop (the predictor's hot
path with no protocol framing) and the full wire path through
``handle_line``.  Both *record* samples/sec into the artifact's
``measured`` block; the latency budgets are enforced by ``repro bench
compare`` (hard only under ``REPRO_BENCH_ENFORCE=1``), never by a
wall-clock assert on a shared runner.
"""

import json

from repro.bench import check_perf, require_positive_elapsed
from repro.serve import PhaseSession, SessionConfig, SessionManager, handle_line
from repro.workloads.spec2000 import benchmark as spec_benchmark

#: Budgets recorded next to the measurements (and enforced on perf hosts).
FEED_BUDGET_S = 1e-3
REQUEST_BUDGET_S = 5e-3


def _mem_series(n_intervals):
    trace = spec_benchmark("applu_in").trace(n_intervals=n_intervals)
    return list(trace.mem_per_uop_series())


def test_serve_session_feed_throughput(benchmark, report):
    """Raw session throughput: the online predictor loop, no framing."""
    series = _mem_series(500)

    def stream():
        session = PhaseSession(SessionConfig())
        for index, value in enumerate(series):
            session.feed(index, value)
        return session

    session = benchmark(stream)
    assert session.samples == len(series)

    mean_seconds = require_positive_elapsed(
        benchmark.stats.stats.mean, "session feed loop"
    )
    per_sample = mean_seconds / len(series)
    rate = 1.0 / per_sample
    report(
        "serve_feed_throughput",
        "Serving layer. PhaseSession.feed: "
        f"{rate:,.0f} samples/sec ({per_sample * 1e6:.2f} us/sample) "
        "over the applu_in Mem/Uop series (GPHT 8x128, table2 policy).",
        parameters={
            "benchmark": "applu_in",
            "samples": len(series),
            "budget_us_per_sample": FEED_BUDGET_S * 1e6,
        },
        measured={
            "samples_per_s": round(rate, 1),
            "us_per_sample": round(per_sample * 1e6, 3),
        },
    )
    # A sample must cost far less than the ~100 ms interval it models.
    check_perf(
        per_sample < FEED_BUDGET_S,
        f"session feed costs {per_sample * 1e6:.1f} us/sample "
        f"(budget {FEED_BUDGET_S * 1e6:.0f} us)",
    )


def test_serve_wire_protocol_throughput(benchmark, report):
    """Full wire path: JSON parse -> dispatch -> feed -> JSON response."""
    series = _mem_series(300)
    lines = [
        json.dumps(
            {
                "op": "sample",
                "session": "s1",
                "interval": index,
                "mem_per_uop": value,
            }
        )
        for index, value in enumerate(series)
    ]

    def stream():
        manager = SessionManager()
        handle_line(manager, json.dumps({"op": "hello"}))
        for line in lines:
            handle_line(manager, line)
        return manager

    manager = benchmark(stream)
    assert manager.metrics.counter("serve.samples").value == len(series)

    mean_seconds = require_positive_elapsed(
        benchmark.stats.stats.mean, "wire protocol loop"
    )
    per_request = mean_seconds / len(series)
    rate = 1.0 / per_request
    report(
        "serve_wire_throughput",
        "Serving layer. Wire protocol (handle_line): "
        f"{rate:,.0f} requests/sec ({per_request * 1e6:.2f} us/request) "
        "for streamed sample requests over one session.",
        parameters={
            "benchmark": "applu_in",
            "samples": len(series),
            "budget_us_per_request": REQUEST_BUDGET_S * 1e6,
        },
        measured={
            "requests_per_s": round(rate, 1),
            "us_per_request": round(per_request * 1e6, 3),
        },
    )
    check_perf(
        per_request < REQUEST_BUDGET_S,
        f"wire request costs {per_request * 1e6:.1f} us "
        f"(budget {REQUEST_BUDGET_S * 1e6:.0f} us)",
    )
