"""Serving layer — streaming sample throughput and request overhead.

The paper's deployment argument is that phase management is cheap enough
to run inside the OS with no observable overhead; the serving layer
makes the analogous claim for the online service: one protocol request
(parse, dispatch, classify, train, predict, serialize) must stay far
below the ~100 ms pace of real 100M-uop sampling intervals.

Two benches: the raw ``PhaseSession.feed`` loop (the predictor's hot
path with no protocol framing) and the full wire path through
``handle_line``.  Both record samples/sec to ``benchmarks/results``.
"""

import json

from repro.serve import PhaseSession, SessionConfig, SessionManager, handle_line
from repro.workloads.spec2000 import benchmark as spec_benchmark


def _mem_series(n_intervals):
    trace = spec_benchmark("applu_in").trace(n_intervals=n_intervals)
    return list(trace.mem_per_uop_series())


def test_serve_session_feed_throughput(benchmark, report):
    """Raw session throughput: the online predictor loop, no framing."""
    series = _mem_series(500)

    def stream():
        session = PhaseSession(SessionConfig())
        for index, value in enumerate(series):
            session.feed(index, value)
        return session

    session = benchmark(stream)
    assert session.samples == len(series)

    per_sample = benchmark.stats.stats.mean / len(series)
    rate = 1.0 / per_sample
    report(
        "serve_feed_throughput",
        "Serving layer. PhaseSession.feed: "
        f"{rate:,.0f} samples/sec ({per_sample * 1e6:.2f} us/sample) "
        "over the applu_in Mem/Uop series (GPHT 8x128, table2 policy).",
    )
    # A sample must cost far less than the ~100 ms interval it models.
    assert per_sample < 1e-3


def test_serve_wire_protocol_throughput(benchmark, report):
    """Full wire path: JSON parse -> dispatch -> feed -> JSON response."""
    series = _mem_series(300)
    lines = [
        json.dumps(
            {
                "op": "sample",
                "session": "s1",
                "interval": index,
                "mem_per_uop": value,
            }
        )
        for index, value in enumerate(series)
    ]

    def stream():
        manager = SessionManager()
        handle_line(manager, json.dumps({"op": "hello"}))
        for line in lines:
            handle_line(manager, line)
        return manager

    manager = benchmark(stream)
    assert manager.metrics.counter("serve.samples").value == len(series)

    per_request = benchmark.stats.stats.mean / len(series)
    rate = 1.0 / per_request
    report(
        "serve_wire_throughput",
        "Serving layer. Wire protocol (handle_line): "
        f"{rate:,.0f} requests/sec ({per_request * 1e6:.2f} us/request) "
        "for streamed sample requests over one session.",
    )
    assert per_request < 5e-3
