"""Ablation — tagged associative PHT vs hashed direct-mapped table.

The paper implements the PHT in software with full tags, associative
search and LRU ages (Figure 1), noting only that a 1024-entry
associative search "may be undesirable".  A hardware implementation
would use an untagged direct-mapped table indexed by a history hash.
This ablation quantifies what the software design buys: at equal
capacity the tagged table wins wherever histories collide, and on the
most pattern-rich benchmark the untagged table still trails at 8x the
entries — aliasing error does not simply wash out with capacity.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.reporting import format_table
from repro.core.predictors import GPHTPredictor
from repro.core.predictors.direct_mapped import DirectMappedGPHTPredictor
from repro.workloads.spec2000 import VARIABLE_BENCHMARKS, benchmark

N_INTERVALS = 1000


def run_sweep():
    factories = [
        lambda: GPHTPredictor(8, 128),
        lambda: DirectMappedGPHTPredictor(8, 128),
        lambda: DirectMappedGPHTPredictor(8, 1024),
        lambda: DirectMappedGPHTPredictor(8, 4096),
    ]
    series = {
        name: benchmark(name).mem_series(N_INTERVALS)
        for name in VARIABLE_BENCHMARKS
    }
    return evaluate_suite(factories, series)


def test_ablation_associativity(benchmark, report):
    results = run_once(benchmark, run_sweep)

    columns = [
        "GPHT_8_128",
        "DMGPHT_8_128",
        "DMGPHT_8_1024",
        "DMGPHT_8_4096",
    ]
    rows = [
        [name] + [round(results[name][c].accuracy * 100, 1) for c in columns]
        for name in VARIABLE_BENCHMARKS
    ]
    report(
        "ablation_associativity",
        format_table(
            ["benchmark"] + columns,
            rows,
            title=(
                "Ablation: tagged associative PHT vs untagged "
                "direct-mapped table, accuracy (%)."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(VARIABLE_BENCHMARKS),
        },
        metrics={
            f"{column}_mean_accuracy": sum(
                results[name][column].accuracy
                for name in VARIABLE_BENCHMARKS
            )
            / len(VARIABLE_BENCHMARKS)
            for column in columns
        },
    )

    for name in VARIABLE_BENCHMARKS:
        acc = {c: results[name][c].accuracy for c in columns}

        # At equal capacity, tags+LRU never lose to hashing.
        assert acc["GPHT_8_128"] >= acc["DMGPHT_8_128"] - 0.01, name

        # Capacity relieves conflicts monotonically (up to noise).
        assert acc["DMGPHT_8_4096"] >= acc["DMGPHT_8_128"] - 0.02, name

    # The headline: the tagged 128-entry table matches or beats the
    # untagged table even at 8x the entries on every variable
    # benchmark, with a clear gap on the most pattern-rich one.
    for name in VARIABLE_BENCHMARKS:
        acc = {c: results[name][c].accuracy for c in columns}
        assert acc["GPHT_8_128"] >= acc["DMGPHT_8_4096"] - 0.005, name
    applu = {c: results["applu_in"][c].accuracy for c in columns}
    assert applu["GPHT_8_128"] > applu["DMGPHT_8_4096"] + 0.03
