"""Figure 11 — runtime-phase-prediction-guided dynamic power management
results: normalised BIPS, power and EDP for all 33 benchmarks.

Runs every benchmark under the GPHT(8, 128) governor against the 1.5 GHz
baseline and regenerates the figure's three bar charts as a table,
asserting the paper's aggregate observations.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_percent, format_table
from repro.core.governor import PhasePredictionGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.experiment import run_suite
from repro.system.metrics import mean
from repro.workloads.spec2000 import FIG4_BENCHMARK_ORDER

N_INTERVALS = 300

#: Benchmarks the paper excludes from its average as having 'no
#: variability and power savings potentials' (the flat Q1 core).
NO_POTENTIAL = {
    "crafty_in", "eon_cook", "eon_kajiya", "eon_rushmeier", "mesa_ref",
    "sixtrack_in", "vortex_lendian1", "vortex_lendian2", "vortex_lendian3",
    "gzip_program", "gzip_graphic", "gzip_random", "gzip_source",
    "gzip_log", "twolf_ref",
}


def run_all(machine):
    return run_suite(
        FIG4_BENCHMARK_ORDER,
        lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
        machine,
        n_intervals=N_INTERVALS,
    )


def test_fig11_dvfs_results(benchmark, report, machine):
    results = run_once(benchmark, lambda: run_all(machine))

    comparisons = {
        name: results[name].comparison for name in FIG4_BENCHMARK_ORDER
    }
    ordered = sorted(
        FIG4_BENCHMARK_ORDER,
        key=lambda n: comparisons[n].normalized_edp,
        reverse=True,
    )
    rows = [
        (
            name,
            format_percent(comparisons[name].normalized_bips),
            format_percent(comparisons[name].normalized_power),
            format_percent(comparisons[name].normalized_edp),
        )
        for name in ordered
    ]
    with_potential = [
        comparisons[n] for n in FIG4_BENCHMARK_ORDER if n not in NO_POTENTIAL
    ]
    avg_edp = mean([c.edp_improvement for c in with_potential])
    avg_deg = mean([c.performance_degradation for c in with_potential])
    report(
        "fig11_dvfs_results",
        format_table(
            [
                "benchmark",
                "normalized BIPS",
                "normalized power",
                "normalized EDP",
            ],
            rows,
            title=(
                "Figure 11. GPHT-guided dynamic power management vs "
                "baseline (decreasing normalized EDP)."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(FIG4_BENCHMARK_ORDER),
        },
        metrics={
            "mean_edp_improvement": avg_edp,
            "mean_performance_degradation": avg_deg,
            "swim_edp_improvement": comparisons["swim_in"].edp_improvement,
            "mcf_edp_improvement": comparisons["mcf_inp"].edp_improvement,
            "equake_edp_improvement": comparisons[
                "equake_in"
            ].edp_improvement,
        },
        details={
            "normalized_edp": {
                name: comparisons[name].normalized_edp for name in ordered
            }
        },
    )

    # Q2 benchmarks: 'swim and mcf exhibit above 60% EDP improvements'
    # (we require > 50%).
    assert comparisons["swim_in"].edp_improvement > 0.50
    assert comparisons["mcf_inp"].edp_improvement > 0.50

    # 'EDP improvements as high as 34% — in the case of equake — for the
    # highly variable Q3 benchmarks.'
    q3 = {n: comparisons[n].edp_improvement
          for n in ("applu_in", "equake_in", "mgrid_in")}
    assert max(q3.values()) > 0.25
    assert max(q3, key=q3.get) == "equake_in"

    # mgrid: high power savings but comparable degradation, so its EDP
    # improvement is 'less emphasized' than the other Q3 applications.
    assert q3["mgrid_in"] < q3["equake_in"]
    assert comparisons["mgrid_in"].power_savings > 0.25

    # Q1 benchmarks sit near the baseline on every axis.
    for name in ("crafty_in", "eon_cook", "mesa_ref"):
        assert comparisons[name].normalized_edp > 0.97, name
        assert comparisons[name].normalized_bips > 0.99, name

    # Paper averages over benchmarks with savings potential: 18% EDP
    # improvement with 4% performance degradation.  Same shape here.
    assert 0.10 < avg_edp < 0.35
    assert avg_deg < 0.10
    assert avg_edp > 2 * avg_deg
