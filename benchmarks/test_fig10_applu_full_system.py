"""Figure 10 — overall operation of the framework on applu, compared to
the baseline system.

Reproduces the figure's three panels as series: (top) Mem/Uop plus
actual/predicted phases for both runs, (middle) per-interval power for
baseline vs GPHT-managed, (bottom) per-interval BIPS.  Asserts the
figure's three observations: Mem/Uop traces are DVFS-invariant between
runs, the managed run saves substantial power, and the induced
performance degradation is comparatively small.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import (
    format_percent,
    format_series,
    phase_timeline,
    sparkline,
)
from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 300
SHOW = slice(200, 240)


def run_both():
    machine = Machine()
    trace = spec_benchmark("applu_in").trace(n_intervals=N_INTERVALS)
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    managed = machine.run(
        trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
    )
    return baseline, managed


def test_fig10_applu_full_system(benchmark, report):
    baseline, managed = run_once(benchmark, run_both)
    comparison = ComparisonMetrics(baseline=baseline, managed=managed)

    lines = [
        "Figure 10. Overall operation on applu vs baseline "
        f"(intervals {SHOW.start}-{SHOW.stop}).",
        "",
        "Top panel:",
        format_series(
            "Mem/Uop (Baseline)", baseline.mem_per_uop_series()[SHOW]
        ),
        format_series(
            "Mem/Uop (GPHT)    ", managed.mem_per_uop_series()[SHOW]
        ),
        "ACTUAL_PHASE : "
        + " ".join(str(p) for p in managed.actual_phases()[SHOW]),
        "PRED_PHASE   : "
        + " ".join(str(p) for p in managed.predicted_phases()[SHOW]),
        "phase timeline: " + phase_timeline(managed.actual_phases()[SHOW]),
        "",
        "Middle panel (power, W):",
        format_series("Power (Baseline)", baseline.power_series()[SHOW], 2),
        format_series("Power (GPHT)    ", managed.power_series()[SHOW], 2),
        "power sparkline (baseline): "
        + sparkline(baseline.power_series()[SHOW], lo=0.0, hi=13.0),
        "power sparkline (GPHT)    : "
        + sparkline(managed.power_series()[SHOW], lo=0.0, hi=13.0),
        "",
        "Bottom panel (BIPS):",
        format_series("BIPS (Baseline)", baseline.bips_series()[SHOW], 3),
        format_series("BIPS (GPHT)    ", managed.bips_series()[SHOW], 3),
        "",
        f"power savings          : {format_percent(comparison.power_savings)}",
        f"performance degradation: "
        f"{format_percent(comparison.performance_degradation)}",
        f"EDP improvement        : "
        f"{format_percent(comparison.edp_improvement)}",
        f"online prediction acc. : "
        f"{format_percent(managed.prediction_accuracy())}",
    ]
    report(
        "fig10_applu_full_system",
        "\n".join(lines),
        parameters={"benchmark": "applu_in", "n_intervals": N_INTERVALS},
        metrics={
            "power_savings": comparison.power_savings,
            "performance_degradation": comparison.performance_degradation,
            "edp_improvement": comparison.edp_improvement,
            "prediction_accuracy": managed.prediction_accuracy(),
            "managed_frequency_levels": len(
                set(managed.frequency_series())
            ),
        },
    )

    # (i) Mem/Uop is DVFS invariant: the two traces are identical.
    for b, m in zip(
        baseline.mem_per_uop_series(), managed.mem_per_uop_series()
    ):
        assert abs(b - m) < 1e-12

    # (ii) The shaded power-savings area is real and substantial.
    assert comparison.power_savings > 0.25

    # (iii) Performance degradation is much smaller than power savings.
    assert comparison.performance_degradation < comparison.power_savings / 2

    # GPHT tracks this highly varying application accurately online.
    assert managed.prediction_accuracy() > 0.80

    # Baseline intervals never leave 1.5 GHz; managed ones span the
    # DVFS range following the phases.
    assert set(baseline.frequency_series()) == {1500}
    assert len(set(managed.frequency_series())) >= 4
