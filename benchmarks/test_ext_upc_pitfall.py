"""Extension — quantifying Section 4's pitfall: UPC-based phases under
dynamic management.

The paper justifies its Mem/Uop choice by showing UPC is strongly
frequency-dependent (Figure 7) and warning that UPC-classified phases
"vary with different power management settings".  This bench closes the
argument by actually *deploying* a UPC-classified governor and measuring
the damage:

* **action-dependent phases** — between the baseline and managed runs,
  the Mem/Uop-classified phase sequence stays identical while the
  UPC-classified one diverges on a large fraction of intervals;
* **wrong fixed points** — on a perfectly stable memory-bound workload
  (swim) the invariant governor settles at the correct 600 MHz setting,
  while the UPC governor's classification shifts under its own slowdown
  and it converges to a faster, less efficient setting, surrendering a
  large slice of the achievable EDP improvement.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.dvfs_policy import DVFSPolicy
from repro.core.governor import (
    PhasePredictionGovernor,
    StaticGovernor,
)
from repro.core.predictors import LastValuePredictor
from repro.core.upc_phases import upc_phase_table, upc_slack_metric
from repro.system.machine import Machine
from repro.workloads.spec2000 import benchmark as spec_benchmark

N_INTERVALS = 200


def build_upc_governor():
    """A reactive governor classifying on UPC slack instead of Mem/Uop."""
    policy = DVFSPolicy.paper_default(upc_phase_table())
    return PhasePredictionGovernor(
        LastValuePredictor(),
        policy,
        name="UPC_reactive",
        metric=upc_slack_metric,
    )


def run_experiment():
    machine = Machine()
    outcomes = {}
    for name in ("swim_in", "applu_in"):
        trace = spec_benchmark(name).trace(n_intervals=N_INTERVALS)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        mem_managed = machine.run(
            trace,
            PhasePredictionGovernor(
                LastValuePredictor(), name="MemUop_reactive"
            ),
        )
        upc_baseline = machine.run(trace, build_upc_governor_static())
        upc_managed = machine.run(trace, build_upc_governor())
        outcomes[name] = {
            "baseline": baseline,
            "mem_managed": mem_managed,
            "upc_baseline": upc_baseline,
            "upc_managed": upc_managed,
        }
    return outcomes


def build_upc_governor_static():
    """Static run that *logs* UPC phases (for the divergence check)."""
    from repro.cpu.frequency import SpeedStepTable

    policy = DVFSPolicy(
        upc_phase_table(),
        {p: SpeedStepTable().fastest for p in upc_phase_table().phase_ids},
        name="upc_static",
    )
    return PhasePredictionGovernor(
        LastValuePredictor(), policy, name="UPC_static",
        metric=upc_slack_metric,
    )


def divergence(a, b):
    """Fraction of intervals whose classified phase differs."""
    pairs = list(zip(a.actual_phases(), b.actual_phases()))
    return sum(1 for x, y in pairs if x != y) / len(pairs)


def test_ext_upc_pitfall(benchmark, report):
    outcomes = run_once(benchmark, run_experiment)

    from repro.system.metrics import ComparisonMetrics

    rows = []
    summary = {}
    for name, runs in outcomes.items():
        mem_divergence = divergence(runs["baseline"], runs["mem_managed"])
        upc_divergence = divergence(runs["upc_baseline"], runs["upc_managed"])
        mem_edp = ComparisonMetrics(
            baseline=runs["baseline"], managed=runs["mem_managed"]
        ).edp_improvement
        upc_edp = ComparisonMetrics(
            baseline=runs["baseline"], managed=runs["upc_managed"]
        ).edp_improvement
        summary[f"{name}_mem_divergence"] = mem_divergence
        summary[f"{name}_upc_divergence"] = upc_divergence
        summary[f"{name}_mem_edp_improvement"] = mem_edp
        summary[f"{name}_upc_edp_improvement"] = upc_edp
        rows.append(
            (
                name,
                f"{mem_divergence:.1%}",
                f"{upc_divergence:.1%}",
                f"{mem_edp:.1%}",
                f"{upc_edp:.1%}",
            )
        )
    report(
        "ext_upc_pitfall",
        format_table(
            [
                "benchmark",
                "phase divergence (Mem/Uop)",
                "phase divergence (UPC)",
                "EDP impr (Mem/Uop)",
                "EDP impr (UPC)",
            ],
            rows,
            title=(
                "Extension: UPC-classified phases are altered by the "
                "governor's own DVFS actions; Mem/Uop phases are not "
                "(paper Section 4)."
            ),
        ),
        parameters={"n_intervals": N_INTERVALS},
        metrics=summary,
    )

    for name, runs in outcomes.items():
        # Mem/Uop phases are identical with and without management.
        assert divergence(runs["baseline"], runs["mem_managed"]) == 0.0, name
        # UPC phases are action-dependent: a large fraction diverges.
        assert divergence(
            runs["upc_baseline"], runs["upc_managed"]
        ) > 0.25, name

    # The wrong fixed point on the *stable* workload: the invariant
    # governor settles at 600 MHz after one transition; the slowed-down
    # die looks more CPU-bound to the UPC governor, which converges to
    # a faster setting and surrenders EDP improvement.
    swim = outcomes["swim_in"]
    assert swim["mem_managed"].transition_count <= 2
    assert swim["mem_managed"].frequency_series()[-1] == 600
    assert swim["upc_managed"].frequency_series()[-1] > 600
    mem_edp = ComparisonMetrics(
        baseline=swim["baseline"], managed=swim["mem_managed"]
    ).edp_improvement
    upc_edp = ComparisonMetrics(
        baseline=swim["baseline"], managed=swim["upc_managed"]
    ).edp_improvement
    assert upc_edp < mem_edp - 0.05
