"""Figure 3 — benchmark categories based on stability and power saving
potentials.

Places every SPEC2000 benchmark on the (savings potential, sample
variation) plane and reports its quadrant, asserting the paper's
categorisation of the named benchmarks.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.workloads.quadrants import Quadrant, place_all
from repro.workloads.spec2000 import SPEC2000_BENCHMARKS

N_INTERVALS = 400

PAPER_QUADRANTS = {
    "swim_in": Quadrant.Q2,
    "mcf_inp": Quadrant.Q2,
    "applu_in": Quadrant.Q3,
    "equake_in": Quadrant.Q3,
    "mgrid_in": Quadrant.Q3,
    "bzip2_program": Quadrant.Q4,
    "bzip2_source": Quadrant.Q4,
    "bzip2_graphic": Quadrant.Q4,
    "crafty_in": Quadrant.Q1,
    "gzip_log": Quadrant.Q1,
    "mesa_ref": Quadrant.Q1,
}


def place():
    return place_all(SPEC2000_BENCHMARKS, n_intervals=N_INTERVALS)


def test_fig03_quadrants(benchmark, report):
    placements = run_once(benchmark, place)

    ordered = sorted(
        placements.values(),
        key=lambda p: (p.quadrant.name, -p.variability_pct),
    )
    rows = [
        (
            p.name,
            round(p.savings_potential, 4),
            round(p.variability_pct, 1),
            p.quadrant.name,
        )
        for p in ordered
    ]
    q1 = [p for p in placements.values() if p.quadrant == Quadrant.Q1]
    report(
        "fig03_quadrants",
        format_table(
            ["benchmark", "mean Mem/Uop", "sample variation %", "quadrant"],
            rows,
            title=(
                "Figure 3. Benchmark categories based on stability and "
                "power saving potentials."
            ),
        ),
        parameters={"n_intervals": N_INTERVALS},
        metrics={
            "n_benchmarks": len(placements),
            "q1_count": len(q1),
            "paper_quadrants_matched": sum(
                1
                for name, expected in PAPER_QUADRANTS.items()
                if placements[name].quadrant == expected
            ),
            "mcf_savings_potential": placements[
                "mcf_inp"
            ].savings_potential,
        },
    )

    for name, expected in PAPER_QUADRANTS.items():
        assert placements[name].quadrant == expected, name

    # 'Many of the SPEC applications lie very close to the origin.'
    assert len(q1) >= 20

    # mcf is the far-right outlier of the figure (x ~ 0.10-0.12).
    assert placements["mcf_inp"].savings_potential > 0.09
