"""Extension — where does the GPHT's advantage come from?

Decomposes the gap between last-value prediction and the GPHT using two
intermediate predictors the paper's related work suggests:

* ``Markov1`` — learns one-step phase transitions (how much is gained
  just by learning *any* transition structure);
* ``Duration`` — learns run lengths and successors, the style of the
  paper's reference [14] (how much is gained by knowing *when* a phase
  ends);
* ``GPHT`` — deep global pattern history (the paper's contribution);
* ``ConfGPHT`` / ``Tournament`` — branch-predictor-inspired refinements
  (hysteresis; chooser-arbitrated hybrid with last-value);
* ``Oracle`` — the information-theoretic ceiling.

Expected shape on the variable benchmarks: LastValue < Markov1 <=
Duration < GPHT <= Oracle — each additional piece of structure helps,
and deep history captures what one-step models cannot.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.reporting import format_table
from repro.core.phases import PhaseTable
from repro.core.predictors import (
    GPHTPredictor,
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
)
from repro.core.predictors.confidence import ConfidenceGPHTPredictor
from repro.core.predictors.duration import DurationPredictor
from repro.core.predictors.hybrid import TournamentPredictor
from repro.workloads.spec2000 import VARIABLE_BENCHMARKS, benchmark

N_INTERVALS = 1000
TABLE = PhaseTable()


def run_zoo():
    results = {}
    for name in VARIABLE_BENCHMARKS:
        series = benchmark(name).mem_series(N_INTERVALS)
        phases = TABLE.classify_series(series)
        results[name] = {
            "LastValue": evaluate_predictor(LastValuePredictor(), series),
            "Markov1": evaluate_predictor(MarkovPredictor(), series),
            "Duration": evaluate_predictor(DurationPredictor(), series),
            "GPHT_8_128": evaluate_predictor(GPHTPredictor(8, 128), series),
            "ConfGPHT": evaluate_predictor(
                ConfidenceGPHTPredictor(8, 128), series
            ),
            "Tournament": evaluate_predictor(
                TournamentPredictor(8, 128), series
            ),
            "Oracle": evaluate_predictor(OraclePredictor(phases), series),
        }
    return results


def test_ext_predictor_zoo(benchmark, report):
    results = run_once(benchmark, run_zoo)

    columns = [
        "LastValue", "Markov1", "Duration",
        "GPHT_8_128", "ConfGPHT", "Tournament", "Oracle",
    ]
    rows = [
        [name] + [round(results[name][c].accuracy * 100, 1) for c in columns]
        for name in VARIABLE_BENCHMARKS
    ]
    report(
        "ext_predictor_zoo",
        format_table(
            ["benchmark"] + columns,
            rows,
            title=(
                "Extension: decomposing the GPHT advantage on the "
                "variable benchmarks (accuracy %)."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(VARIABLE_BENCHMARKS),
        },
        metrics={
            f"{column}_mean_accuracy": sum(
                results[name][column].accuracy
                for name in VARIABLE_BENCHMARKS
            )
            / len(VARIABLE_BENCHMARKS)
            for column in columns
        },
    )

    for name in VARIABLE_BENCHMARKS:
        acc = {c: results[name][c].accuracy for c in columns}

        # The oracle is the ceiling for everything.
        for column in columns[:-1]:
            assert acc[column] <= acc["Oracle"] + 1e-9, (name, column)

        # Deep global history dominates every one-step learner.
        assert acc["GPHT_8_128"] > acc["Markov1"] + 0.03, name
        assert acc["GPHT_8_128"] > acc["Duration"] + 0.03, name

        # One-step structure is still worth something over raw
        # persistence on these pattern-heavy applications.
        assert acc["Duration"] >= acc["LastValue"] - 0.03, name

        # The branch-predictor refinements stay within a small band of
        # the plain GPHT — refinements, not fixes.
        assert abs(acc["ConfGPHT"] - acc["GPHT_8_128"]) < 0.06, name
        assert acc["Tournament"] >= acc["GPHT_8_128"] - 0.06, name
