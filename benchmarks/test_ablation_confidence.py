"""Ablation — does branch-predictor hysteresis help the GPHT?

The paper's GPHT retrains each PHT entry from the single most recent
outcome.  This ablation compares it against the confidence-counter
variant (2-bit-style hysteresis) on the variable benchmarks, whose
duration jitter injects exactly the isolated anomalies hysteresis is
meant to absorb.

Expected shape: the variants are close everywhere; hysteresis buys a
little on jitter-dominated benchmarks and costs a little wherever the
pattern genuinely shifts (e.g. at motif-variant boundaries) because it
reacts one occurrence late.  The conclusion documents that the paper's
simpler update rule is a reasonable choice at phase granularity.
"""

from benchmarks.conftest import run_once
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.reporting import format_table
from repro.core.predictors import GPHTPredictor
from repro.core.predictors.confidence import ConfidenceGPHTPredictor
from repro.workloads.spec2000 import VARIABLE_BENCHMARKS, benchmark

N_INTERVALS = 1000


def run_sweep():
    factories = [
        lambda: GPHTPredictor(8, 128),
        lambda: ConfidenceGPHTPredictor(8, 128, max_confidence=3,
                                        use_threshold=1),
        lambda: ConfidenceGPHTPredictor(8, 128, max_confidence=3,
                                        use_threshold=2),
    ]
    series = {
        name: benchmark(name).mem_series(N_INTERVALS)
        for name in VARIABLE_BENCHMARKS
    }
    return evaluate_suite(factories, series)


def test_ablation_confidence(benchmark, report):
    results = run_once(benchmark, run_sweep)

    columns = ["GPHT_8_128", "ConfGPHT_8_128_c3t1", "ConfGPHT_8_128_c3t2"]
    rows = [
        [name] + [round(results[name][c].accuracy * 100, 1) for c in columns]
        for name in VARIABLE_BENCHMARKS
    ]
    report(
        "ablation_confidence",
        format_table(
            ["benchmark"] + columns,
            rows,
            title=(
                "Ablation: plain GPHT vs confidence-counter variants, "
                "accuracy (%)."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(VARIABLE_BENCHMARKS),
        },
        metrics={
            f"{column}_mean_accuracy": sum(
                results[name][column].accuracy
                for name in VARIABLE_BENCHMARKS
            )
            / len(VARIABLE_BENCHMARKS)
            for column in columns
        },
    )

    for name in VARIABLE_BENCHMARKS:
        acc = {c: results[name][c].accuracy for c in columns}
        # The variants never diverge dramatically from the paper's
        # update rule — hysteresis is a refinement, not a fix.
        assert abs(acc["ConfGPHT_8_128_c3t1"] - acc["GPHT_8_128"]) < 0.06, name
        # A higher use threshold delays prediction adoption, so it can
        # only trail the eager variant slightly.
        assert (
            acc["ConfGPHT_8_128_c3t2"]
            >= acc["ConfGPHT_8_128_c3t1"] - 0.06
        ), name
