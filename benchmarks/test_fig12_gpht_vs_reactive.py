"""Figure 12 — EDP improvement and performance degradation with GPHT and
last-value (reactive) management for the Q2, Q3 and Q4 benchmarks.

Runs both governors over the figure's benchmark set and asserts its
message: proactive GPHT management achieves superior EDP improvements on
the variable benchmarks with comparable or less performance degradation,
while the two approaches coincide on the stable Q2 pair.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_percent, format_table
from repro.core.governor import PhasePredictionGovernor, ReactiveGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.experiment import run_suite
from repro.system.metrics import mean
from repro.workloads.spec2000 import FIG12_BENCHMARKS, VARIABLE_BENCHMARKS

N_INTERVALS = 300


def run_both(machine):
    gpht = run_suite(
        FIG12_BENCHMARKS,
        lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
        machine,
        n_intervals=N_INTERVALS,
    )
    reactive = run_suite(
        FIG12_BENCHMARKS,
        lambda: ReactiveGovernor(),
        machine,
        n_intervals=N_INTERVALS,
    )
    return gpht, reactive


def test_fig12_gpht_vs_reactive(benchmark, report, machine):
    gpht, reactive = run_once(benchmark, lambda: run_both(machine))

    rows = []
    for name in FIG12_BENCHMARKS:
        g = gpht[name].comparison
        r = reactive[name].comparison
        rows.append(
            (
                name,
                format_percent(r.edp_improvement),
                format_percent(g.edp_improvement),
                format_percent(r.performance_degradation),
                format_percent(g.performance_degradation),
            )
        )
    report(
        "fig12_gpht_vs_reactive",
        format_table(
            [
                "benchmark",
                "EDP impr (LastValue)",
                "EDP impr (GPHT)",
                "perf degr (LastValue)",
                "perf degr (GPHT)",
            ],
            rows,
            title=(
                "Figure 12. EDP improvement and performance degradation: "
                "GPHT vs last-value reactive management."
            ),
        ),
    )

    # (a) Variable benchmarks: GPHT-based proactive management achieves
    # superior EDP improvements.
    for name in VARIABLE_BENCHMARKS:
        assert (
            gpht[name].comparison.edp_improvement
            > reactive[name].comparison.edp_improvement
        ), name

    # swim: 'virtually no variability — both approaches achieve almost
    # identical results.'
    swim_gap = abs(
        gpht["swim_in"].comparison.edp_improvement
        - reactive["swim_in"].comparison.edp_improvement
    )
    assert swim_gap < 0.02

    # mcf: small variability — GPHT achieves slightly better EDP and no
    # more degradation.
    assert (
        gpht["mcf_inp"].comparison.edp_improvement
        >= reactive["mcf_inp"].comparison.edp_improvement - 0.005
    )

    # Q2 pair shows the largest improvements of the figure (60-70%).
    for name in ("swim_in", "mcf_inp"):
        assert gpht[name].comparison.edp_improvement > 0.5, name

    # Averages: GPHT strictly better EDP than reactive, with comparable
    # performance degradation (paper: 27% vs 20% EDP, 5% vs 6% degr).
    gpht_edp = mean(
        [gpht[n].comparison.edp_improvement for n in FIG12_BENCHMARKS]
    )
    reactive_edp = mean(
        [reactive[n].comparison.edp_improvement for n in FIG12_BENCHMARKS]
    )
    gpht_deg = mean(
        [gpht[n].comparison.performance_degradation for n in FIG12_BENCHMARKS]
    )
    reactive_deg = mean(
        [
            reactive[n].comparison.performance_degradation
            for n in FIG12_BENCHMARKS
        ]
    )
    assert gpht_edp > reactive_edp + 0.01
    assert gpht_deg < reactive_deg + 0.02
