"""Figure 12 — EDP improvement and performance degradation with GPHT and
last-value (reactive) management for the Q2, Q3 and Q4 benchmarks.

Runs both governors over the figure's benchmark set and asserts its
message: proactive GPHT management achieves superior EDP improvements on
the variable benchmarks with comparable or less performance degradation,
while the two approaches coincide on the stable Q2 pair.

Both suites run through the :mod:`repro.exec` engine
(:func:`run_comparison_suite` with ``jobs=2``), exercising the parallel
fan-out path from the bench layer.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_percent, format_table
from repro.system.experiment import run_comparison_suite
from repro.workloads.spec2000 import FIG12_BENCHMARKS, VARIABLE_BENCHMARKS

N_INTERVALS = 300


def run_both():
    gpht = run_comparison_suite(
        FIG12_BENCHMARKS,
        governor="gpht",
        n_intervals=N_INTERVALS,
        jobs=2,
    )
    reactive = run_comparison_suite(
        FIG12_BENCHMARKS,
        governor="reactive",
        n_intervals=N_INTERVALS,
        jobs=2,
    )
    return gpht, reactive


def test_fig12_gpht_vs_reactive(benchmark, report):
    gpht, reactive = run_once(benchmark, run_both)

    rows = []
    for name in FIG12_BENCHMARKS:
        g = gpht.cell(name)
        r = reactive.cell(name)
        rows.append(
            (
                name,
                format_percent(r.edp_improvement),
                format_percent(g.edp_improvement),
                format_percent(r.performance_degradation),
                format_percent(g.performance_degradation),
            )
        )
    report(
        "fig12_gpht_vs_reactive",
        format_table(
            [
                "benchmark",
                "EDP impr (LastValue)",
                "EDP impr (GPHT)",
                "perf degr (LastValue)",
                "perf degr (GPHT)",
            ],
            rows,
            title=(
                "Figure 12. EDP improvement and performance degradation: "
                "GPHT vs last-value reactive management."
            ),
        ),
        parameters={
            "n_intervals": N_INTERVALS,
            "n_benchmarks": len(FIG12_BENCHMARKS),
        },
        metrics={
            "gpht_mean_edp_improvement": gpht.mean("edp_improvement"),
            "reactive_mean_edp_improvement": reactive.mean(
                "edp_improvement"
            ),
            "gpht_mean_degradation": gpht.mean("performance_degradation"),
            "reactive_mean_degradation": reactive.mean(
                "performance_degradation"
            ),
        },
    )

    # (a) Variable benchmarks: GPHT-based proactive management achieves
    # superior EDP improvements.
    for name in VARIABLE_BENCHMARKS:
        assert (
            gpht.value(name, "edp_improvement")
            > reactive.value(name, "edp_improvement")
        ), name

    # swim: 'virtually no variability — both approaches achieve almost
    # identical results.'
    swim_gap = abs(
        gpht.value("swim_in", "edp_improvement")
        - reactive.value("swim_in", "edp_improvement")
    )
    assert swim_gap < 0.02

    # mcf: small variability — GPHT achieves slightly better EDP and no
    # more degradation.
    assert (
        gpht.value("mcf_inp", "edp_improvement")
        >= reactive.value("mcf_inp", "edp_improvement") - 0.005
    )

    # Q2 pair shows the largest improvements of the figure (60-70%).
    for name in ("swim_in", "mcf_inp"):
        assert gpht.value(name, "edp_improvement") > 0.5, name

    # Averages: GPHT strictly better EDP than reactive, with comparable
    # performance degradation (paper: 27% vs 20% EDP, 5% vs 6% degr).
    assert gpht.mean("edp_improvement") > reactive.mean("edp_improvement") + 0.01
    assert (
        gpht.mean("performance_degradation")
        < reactive.mean("performance_degradation") + 0.02
    )
