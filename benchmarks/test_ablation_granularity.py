"""Ablation — sampling-granularity sensitivity (extension).

The paper samples at 100M uops, chosen as 'a safe granularity' after
experimenting with various ones (Section 5.1).  This ablation quantifies
the trade-off on the full machine: finer sampling reacts faster but pays
more handler overhead; much coarser sampling blends distinct phases
inside one interval, blurring classification and costing EDP on variable
workloads.

The workload's intrinsic behaviour is held fixed (segments of 25M uops)
while only the PMI pacing changes, so intervals at coarse granularities
genuinely aggregate several behaviour changes.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.governor import PhasePredictionGovernor, StaticGovernor
from repro.core.predictors import GPHTPredictor
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark as spec_benchmark

SEGMENT_UOPS = 25_000_000
N_SEGMENTS = 1200
GRANULARITIES = (25_000_000, 50_000_000, 100_000_000, 400_000_000)


def run_sweep():
    trace = spec_benchmark("applu_in").trace(
        n_intervals=N_SEGMENTS, uops_per_interval=SEGMENT_UOPS
    )
    outcomes = {}
    for granularity in GRANULARITIES:
        machine = Machine(granularity_uops=granularity)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        managed = machine.run(
            trace, PhasePredictionGovernor(GPHTPredictor(8, 128))
        )
        outcomes[granularity] = (
            ComparisonMetrics(baseline=baseline, managed=managed),
            managed,
        )
    return outcomes


def test_ablation_granularity(benchmark, report):
    outcomes = run_once(benchmark, run_sweep)

    rows = []
    for granularity in GRANULARITIES:
        comparison, managed = outcomes[granularity]
        rows.append(
            (
                f"{granularity // 1_000_000}M uops",
                len(managed.intervals),
                round(managed.prediction_accuracy() * 100, 1),
                round(comparison.edp_improvement * 100, 1),
                round(comparison.performance_degradation * 100, 1),
                f"{managed.handler_overhead_fraction:.5%}",
            )
        )
    report(
        "ablation_granularity",
        format_table(
            [
                "granularity",
                "intervals",
                "online acc %",
                "EDP impr %",
                "perf degr %",
                "handler share",
            ],
            rows,
            title="Ablation: PMI sampling granularity on applu.",
        ),
        parameters={
            "benchmark": "applu_in",
            "segment_uops": SEGMENT_UOPS,
            "n_segments": N_SEGMENTS,
        },
        metrics={
            f"edp_improvement_{granularity // 1_000_000}m": outcomes[
                granularity
            ][0].edp_improvement
            for granularity in GRANULARITIES
        },
    )

    fine, _ = outcomes[25_000_000]
    paper, paper_run = outcomes[100_000_000]
    coarse, _ = outcomes[400_000_000]

    # All granularities still beat the unmanaged baseline.
    for granularity in GRANULARITIES:
        assert outcomes[granularity][0].edp_improvement > 0.10, granularity

    # The paper's 100M-uop choice keeps handler overhead invisible.
    assert paper_run.handler_overhead_fraction < 1e-3

    # Finer sampling never pays *more* handler share than coarser
    # sampling per interval count.
    fine_run = outcomes[25_000_000][1]
    coarse_run = outcomes[400_000_000][1]
    assert (
        fine_run.handler_overhead_fraction
        > coarse_run.handler_overhead_fraction
    )

    # Coarse sampling blends phases: its online accuracy can look high
    # (aggregation smooths the series) but it leaves EDP on the table
    # relative to the best granularity for this workload.
    best_edp = max(
        outcomes[g][0].edp_improvement for g in GRANULARITIES
    )
    assert coarse.edp_improvement <= best_edp
