"""Learned predictors vs the paper's GPHT — accuracy vs overhead.

The headline claim of the ``repro.learn`` subsystem: trained models
(decision tree, order-k Markov) are competitive with — and on most
workloads better than — the hand-designed GPHT at comparable or lower
per-prediction structure cost, and everything beats last-value.  This
bench runs the full ``learned_accuracy`` comparison grid over the
entire SPEC2000 registry through the execution engine and persists the
grid as a versioned artifact (suite means in ``metrics``, the full
per-benchmark grid in ``details``).

The grid itself is byte-reproducible: ``repro learn compare
--benchmarks <all> --intervals 512 --format json`` regenerates the
``comparison`` block exactly, at any ``--jobs`` level.
"""

from repro.analysis.reporting import format_table
from repro.exec import make_engine
from repro.learn import compare_models
from repro.workloads import SPEC2000_BENCHMARKS

from .conftest import run_once

N_INTERVALS = 512
MODELS = ("tree", "markov", "gpht", "last_value")


def test_learned_models_beat_baselines(benchmark, report):
    """Trained models must beat last-value everywhere that matters."""
    engine = make_engine(jobs=2, cache=None)
    comparison = run_once(
        benchmark,
        lambda: compare_models(
            engine,
            benchmarks=tuple(SPEC2000_BENCHMARKS),
            n_intervals=N_INTERVALS,
        ),
    )

    summary = comparison["summary"]
    tree = summary["tree"]
    markov = summary["markov"]
    gpht = summary["gpht"]
    last_value = summary["last_value"]

    # Every model yields a sane mean accuracy over the whole suite.
    for stats in (tree, markov, gpht, last_value):
        assert 0.0 < stats["mean_accuracy"] <= 1.0

    # Shape claims: training pays.  Both learned models clear the
    # last-value floor by a wide margin and beat the GPHT on suite
    # mean; the tree does it at bounded structure cost (depth <= 8 vs
    # the markov's full context scan).
    assert tree["mean_accuracy"] > last_value["mean_accuracy"] + 0.05
    assert markov["mean_accuracy"] > last_value["mean_accuracy"] + 0.05
    assert tree["mean_accuracy"] > gpht["mean_accuracy"]
    assert markov["mean_accuracy"] > gpht["mean_accuracy"]
    assert tree["mean_overhead_units"] <= 8.0

    # The learned models take the bulk of the per-benchmark wins.
    learned_wins = tree["benchmarks_won"] + markov["benchmarks_won"]
    baseline_wins = gpht["benchmarks_won"] + last_value["benchmarks_won"]
    assert learned_wins > baseline_wins

    # Per-benchmark cells are complete: every (benchmark, model) pair.
    cells = comparison["cells"]
    assert set(cells) == set(SPEC2000_BENCHMARKS)
    for name in SPEC2000_BENCHMARKS:
        assert set(cells[name]) == {"tree", "markov", "gpht", "last_value"}

    rows = [
        (
            model,
            f"{summary[model]['mean_accuracy']:.1%}",
            f"{summary[model]['mean_overhead_units']:.1f}",
            summary[model]["benchmarks_won"],
        )
        for model in MODELS
    ]
    metrics = {}
    for model in MODELS:
        metrics[f"{model}_mean_accuracy"] = summary[model]["mean_accuracy"]
        metrics[f"{model}_mean_overhead_units"] = summary[model][
            "mean_overhead_units"
        ]
    report(
        "learned_accuracy",
        format_table(
            ["model", "mean accuracy", "mean overhead units", "wins"],
            rows,
            title=(
                "Learned predictors vs table-lookup baselines over "
                f"{len(SPEC2000_BENCHMARKS)} SPEC2000 benchmarks "
                f"({N_INTERVALS} intervals, held-out eval series)."
            ),
        ),
        parameters={
            "n_benchmarks": len(SPEC2000_BENCHMARKS),
            "n_intervals": N_INTERVALS,
        },
        metrics=metrics,
        details={"comparison": comparison},
    )
