"""Figure 6 — observed (UPC, Mem/Uop) pairs for all experimented
applications, the maximum-UPC boundary, and the IPCxMEM coverage grid.

Sweeps every SPEC benchmark's behaviour through the timing model to
collect observed (UPC, Mem/Uop) points, solves the IPCxMEM grid, and
asserts the geometric facts the figure shows: all observations lie under
the boundary, and the grid covers the space the applications occupy.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.cpu.frequency import SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.workloads.ipcxmem import ipcxmem_grid
from repro.workloads.spec2000 import SPEC2000_BENCHMARKS
from repro.workloads.segments import SegmentSpec

N_INTERVALS = 200
TIMING = TimingModel()
FASTEST = SpeedStepTable().fastest


def collect_space():
    spec_points = []
    for spec in SPEC2000_BENCHMARKS.values():
        behavior = spec.behavior(N_INTERVALS)
        for mem, upc_core in behavior[::10]:
            segment = SegmentSpec(
                uops=1_000_000,
                mem_per_uop=float(mem),
                upc_core=float(upc_core),
                mem_overlap=spec.mem_overlap,
            )
            observed_upc = TIMING.upc(segment, FASTEST)
            spec_points.append((observed_upc, float(mem)))
    grid = ipcxmem_grid()
    return spec_points, grid


def test_fig06_exploration_space(benchmark, report):
    spec_points, grid = run_once(benchmark, collect_space)

    mem_levels = np.linspace(0.0, 0.055, 12)
    boundary_rows = [
        (round(float(m), 4), round(TIMING.max_upc_boundary(float(m), FASTEST), 3))
        for m in mem_levels
    ]
    lines = [
        format_table(
            ["Mem/Uop", "max UPC (SPEC boundary)"],
            boundary_rows,
            title=(
                "Figure 6. (UPC, Mem/Uop) exploration space: boundary, "
                f"{len(spec_points)} SPEC sample points, "
                f"{len(grid)} IPCxMEM grid configurations."
            ),
        ),
        "",
        "IPCxMEM grid coverage:",
    ]
    grid_rows = [
        (c.target_upc, c.target_mem_per_uop,
         round(c.segment.upc_core, 3), round(c.segment.mem_overlap, 3))
        for c in grid[:12]
    ]
    lines.append(
        format_table(
            ["target UPC", "target Mem/Uop", "solved upc_core", "overlap"],
            grid_rows,
        )
    )
    upcs = [p[0] for p in spec_points]
    mems = [p[1] for p in spec_points]
    boundary_violations = sum(
        1
        for observed_upc, mem in spec_points
        if observed_upc > TIMING.max_upc_boundary(mem, FASTEST) + 1e-9
    )
    report(
        "fig06_exploration_space",
        "\n".join(lines),
        parameters={"n_intervals": N_INTERVALS},
        metrics={
            "n_spec_points": len(spec_points),
            "n_grid_configs": len(grid),
            "boundary_violations": boundary_violations,
            "max_observed_upc": max(upcs),
            "max_observed_mem_per_uop": max(mems),
        },
    )

    # Every observed SPEC point lies under the boundary at its Mem/Uop.
    assert boundary_violations == 0

    # The applications cover a wide range of operating points.
    assert max(upcs) > 1.4 and min(upcs) < 0.2
    assert max(mems) > 0.05

    # The paper runs ~50 grid configurations.
    assert 40 <= len(grid) <= 110

    # The grid spans the same region the applications occupy.
    grid_mems = {c.target_mem_per_uop for c in grid}
    assert min(grid_mems) == 0.0
    assert max(grid_mems) >= 0.0475
