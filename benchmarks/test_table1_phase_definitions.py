"""Table 1 — definition of phases based on Mem/Uop rates.

Regenerates the paper's phase-definition table from the implementation
and checks it verbatim against the published bin edges.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.phases import PhaseTable

PAPER_TABLE_1 = [
    ("< 0.005", 1),
    ("[0.005,0.010)", 2),
    ("[0.010,0.015)", 3),
    ("[0.015,0.020)", 4),
    ("[0.020,0.030)", 5),
    (">= 0.030", 6),
]


def build_table():
    table = PhaseTable()
    rows = []
    for definition in table.definitions:
        if definition.lower == 0.0:
            interval = f"< {definition.upper:.3f}"
        elif definition.upper == float("inf"):
            interval = f">= {definition.lower:.3f}"
        else:
            interval = f"[{definition.lower:.3f},{definition.upper:.3f})"
        rows.append((interval, definition.phase_id))
    return table, rows


def test_table1_phase_definitions(benchmark, report):
    table, rows = run_once(benchmark, build_table)

    report(
        "table1_phase_definitions",
        format_table(
            ["Mem/Uop", "Phase #"],
            rows,
            title="Table 1. Definition of phases based on Mem/Uop rates.",
        ),
        parameters={"source": "paper_table_1"},
        metrics={
            "n_phases": len(rows),
            "paper_rows_matched": sum(
                1 for row in rows if row in PAPER_TABLE_1
            ),
        },
    )

    assert rows == PAPER_TABLE_1

    # The classifier agrees with the printed intervals on a dense sweep.
    for value in np.linspace(0.0, 0.06, 1201):
        phase = table.classify(float(value))
        assert 1 <= phase <= 6
