"""Performance counter bank: two programmable PMCs plus the TSC.

Models the counter programming protocol the paper's kernel module uses
(Figure 8): configure an event per counter, optionally arm an overflow
threshold on one of them (the PMI pacing counter), then repeatedly
``advance`` as the core retires work, ``read`` inside the handler, and
``restart`` on handler exit.

Counts are exact — the simulated core reports event deltas analytically —
but the *interface* is deliberately register-like so the management code
path matches a real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.pmc.events import PMCEvent

#: Hardware counters available on the Pentium-M for general events.
NUM_PROGRAMMABLE_COUNTERS = 2


@dataclass
class PerformanceCounter:
    """One programmable hardware counter.

    Attributes:
        event: The event this counter accumulates.
        value: Current count since the last restart.
        overflow_threshold: If set, :meth:`advance` reports overflow once
            ``value`` reaches this threshold.  Mirrors programming the
            counter to a negative initial value on real hardware.
    """

    event: PMCEvent
    value: float = 0.0
    overflow_threshold: Optional[float] = None

    def advance(self, delta: float) -> bool:
        """Accumulate ``delta`` events; return True on overflow crossing."""
        if delta < 0:
            raise SimulationError(f"counter delta must be >= 0, got {delta}")
        before = self.value
        self.value += delta
        if self.overflow_threshold is None:
            return False
        return before < self.overflow_threshold <= self.value

    def restart(self) -> None:
        """Zero the count (re-arm), keeping event and threshold."""
        self.value = 0.0


class PMCBank:
    """The Pentium-M's two programmable counters plus the TSC.

    Args:
        events: The event selected for each programmable counter; at most
            :data:`NUM_PROGRAMMABLE_COUNTERS` and no duplicates.

    The bank exposes the handler-facing protocol: ``stop``/``read`` deltas,
    set one counter's overflow threshold (the PMI pacing counter), and
    ``restart`` everything including the TSC baseline.
    """

    def __init__(self, events: Tuple[PMCEvent, ...]) -> None:
        if len(events) > NUM_PROGRAMMABLE_COUNTERS:
            raise ConfigurationError(
                f"platform has {NUM_PROGRAMMABLE_COUNTERS} programmable "
                f"counters; {len(events)} events requested"
            )
        if len(set(events)) != len(events):
            raise ConfigurationError(f"duplicate counter events: {events}")
        if not events:
            raise ConfigurationError("at least one counter event is required")
        self._counters: Dict[PMCEvent, PerformanceCounter] = {
            event: PerformanceCounter(event=event) for event in events
        }
        self._tsc_cycles = 0.0
        self._running = True

    @property
    def events(self) -> Tuple[PMCEvent, ...]:
        """Events configured on the programmable counters."""
        return tuple(self._counters)

    @property
    def running(self) -> bool:
        """Whether the counters are currently accumulating."""
        return self._running

    @property
    def tsc_cycles(self) -> float:
        """Time stamp counter value (core cycles) since last restart."""
        return self._tsc_cycles

    def set_overflow(self, event: PMCEvent, threshold: Optional[float]) -> None:
        """Arm (or disarm with None) an overflow threshold on ``event``.

        Raises:
            ConfigurationError: If ``event`` is not a configured counter
                or the threshold is not positive.
        """
        counter = self._require(event)
        if threshold is not None and threshold <= 0:
            raise ConfigurationError(
                f"overflow threshold must be > 0, got {threshold}"
            )
        counter.overflow_threshold = threshold

    def overflow_threshold(self, event: PMCEvent) -> Optional[float]:
        """The armed overflow threshold on ``event``, if any."""
        return self._require(event).overflow_threshold

    def uops_until_overflow(self, event: PMCEvent) -> Optional[float]:
        """Remaining events before ``event``'s counter overflows.

        Returns None when no threshold is armed.  The machine model uses
        this to split workload segments exactly at PMI boundaries.
        """
        counter = self._require(event)
        if counter.overflow_threshold is None:
            return None
        return max(counter.overflow_threshold - counter.value, 0.0)

    def advance(
        self, event_deltas: Mapping[PMCEvent, float], cycles: float
    ) -> Tuple[PMCEvent, ...]:
        """Accumulate event deltas and TSC cycles for an execution slice.

        Args:
            event_deltas: Events produced by the slice, keyed by event.
                Events without a configured counter are silently dropped —
                real hardware cannot observe unconfigured events either.
            cycles: Core cycles elapsed (advances the TSC).

        Returns:
            The events whose counters crossed their overflow threshold
            during this advance (empty tuple when none did).
        """
        if not self._running:
            raise SimulationError("cannot advance stopped counters")
        if cycles < 0:
            raise SimulationError(f"cycles must be >= 0, got {cycles}")
        self._tsc_cycles += cycles
        overflowed: List[PMCEvent] = []
        for event, counter in self._counters.items():
            delta = event_deltas.get(event, 0.0)
            if counter.advance(delta):
                overflowed.append(event)
        return tuple(overflowed)

    def stop(self) -> None:
        """Stop accumulation (handler entry)."""
        self._running = False

    def read(self, event: PMCEvent) -> float:
        """Read the current count of ``event`` since the last restart."""
        return self._require(event).value

    def read_all(self) -> Dict[PMCEvent, float]:
        """Read every configured counter at once."""
        return {event: c.value for event, c in self._counters.items()}

    def restart(self) -> None:
        """Zero all counters and the TSC, then resume (handler exit)."""
        for counter in self._counters.values():
            counter.restart()
        self._tsc_cycles = 0.0
        self._running = True

    def _require(self, event: PMCEvent) -> PerformanceCounter:
        try:
            return self._counters[event]
        except KeyError:
            raise ConfigurationError(
                f"event {event} is not configured on this bank; "
                f"configured: {list(self._counters)}"
            ) from None
