"""Performance monitoring counters and the PMI controller."""

from repro.pmc.counters import NUM_PROGRAMMABLE_COUNTERS, PMCBank, PerformanceCounter
from repro.pmc.events import PAPER_COUNTER_CONFIG, PMCEvent
from repro.pmc.interrupt import DEFAULT_PMI_GRANULARITY_UOPS, PMIController

__all__ = [
    "PMCEvent",
    "PAPER_COUNTER_CONFIG",
    "PerformanceCounter",
    "PMCBank",
    "NUM_PROGRAMMABLE_COUNTERS",
    "PMIController",
    "DEFAULT_PMI_GRANULARITY_UOPS",
]
