"""Performance monitoring interrupt (PMI) controller.

The paper paces its whole control loop with a counter-overflow interrupt:
the ``UOPS_RETIRED`` counter is armed to overflow every 100 million
micro-ops, and the overflow raises a PMI whose handler classifies the
elapsed interval, predicts the next phase and programs DVFS (Figure 8).

This module provides the dispatch glue: a handler registration point, an
interrupt-pending latch, and invocation bookkeeping (the handler itself
lives in :mod:`repro.system.lkm`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError, SimulationError

#: The paper's sampling granularity: one PMI per 100 million micro-ops.
DEFAULT_PMI_GRANULARITY_UOPS = 100_000_000

#: Handler signature: called with the simulated time (seconds) at which
#: the interrupt fires; returns the handler's execution time in seconds.
PMIHandler = Callable[[float], float]


class PMIController:
    """Latches counter-overflow interrupts and dispatches the handler.

    Args:
        handler: Optional handler to register at construction.

    The machine model calls :meth:`raise_interrupt` when the pacing
    counter overflows, then :meth:`dispatch` once the current execution
    slice is retired (interrupts are taken at segment boundaries, the
    analytic analogue of instruction-boundary interrupt delivery).
    """

    def __init__(self, handler: Optional[PMIHandler] = None) -> None:
        self._handler = handler
        self._pending = False
        self._dispatch_count = 0

    @property
    def handler_registered(self) -> bool:
        """Whether a handler is installed."""
        return self._handler is not None

    @property
    def pending(self) -> bool:
        """Whether an interrupt is latched awaiting dispatch."""
        return self._pending

    @property
    def dispatch_count(self) -> int:
        """How many interrupts have been delivered to the handler."""
        return self._dispatch_count

    def register(self, handler: PMIHandler) -> None:
        """Install the interrupt handler (LKM load).

        Raises:
            ConfigurationError: If a handler is already installed.
        """
        if self._handler is not None:
            raise ConfigurationError(
                "a PMI handler is already registered; unregister it first"
            )
        self._handler = handler

    def unregister(self) -> None:
        """Remove the interrupt handler (LKM unload)."""
        self._handler = None
        self._pending = False

    def raise_interrupt(self) -> None:
        """Latch a pending interrupt (counter overflow occurred)."""
        self._pending = True

    def clear(self) -> None:
        """Clear the pending latch without dispatching (handler exit)."""
        self._pending = False

    def dispatch(self, time_s: float) -> float:
        """Deliver a pending interrupt to the handler.

        Args:
            time_s: Current simulated time, passed through to the handler.

        Returns:
            The handler's execution time in seconds (0.0 if nothing was
            pending).

        Raises:
            SimulationError: If an interrupt is pending but no handler is
                registered — on real hardware this would be a stuck PMI.
        """
        if not self._pending:
            return 0.0
        if self._handler is None:
            raise SimulationError(
                "PMI raised but no handler is registered (LKM not loaded?)"
            )
        self._pending = False
        self._dispatch_count += 1
        return self._handler(time_s)
