"""Performance-monitoring event definitions.

The Pentium-M exposes two programmable performance counters plus the time
stamp counter (TSC).  The paper configures the two counters as
``UOPS_RETIRED`` (which also paces the PMI) and ``BUS_TRAN_MEM`` (memory
bus transactions).  This module names the events the simulated core can
produce; the counter bank selects among them.
"""

from __future__ import annotations

from enum import Enum, unique


@unique
class PMCEvent(Enum):
    """Countable events produced by the simulated core.

    Values are the event mnemonics used in the paper's configuration.
    """

    #: Retired micro-ops.  Used to pace the PMI at fixed uop granularity.
    UOPS_RETIRED = "UOPS_RETIRED"

    #: Memory bus transactions.  Numerator of the ``Mem/Uop`` phase metric.
    BUS_TRAN_MEM = "BUS_TRAN_MEM"

    #: Retired architectural instructions.  With UOPS_RETIRED, gives the
    #: paper's "concurrent execution" proxy (uops per instruction).
    INSTR_RETIRED = "INSTR_RETIRED"

    #: Unhalted core cycles.  With UOPS_RETIRED, gives UPC.
    CPU_CLK_UNHALTED = "CPU_CLK_UNHALTED"

    def __str__(self) -> str:
        return self.value


#: Events a 2-counter Pentium-M configuration can monitor simultaneously
#: in the paper's setup (one counter is dedicated to pacing the PMI).
PAPER_COUNTER_CONFIG = (PMCEvent.UOPS_RETIRED, PMCEvent.BUS_TRAN_MEM)
