"""Tolerance-aware float comparison helpers.

Simulation quantities (watts, joules, seconds) are accumulated floats,
so exact ``==``/``!=`` comparisons on them are either redundant (the
value is exactly representable) or wrong (it is not).  The static
analysis layer (:mod:`repro.devtools.lint`, rule ``no-float-equality``)
forbids raw float equality inside ``core/`` and ``power/``; these
helpers are the sanctioned replacements, with one explicit absolute
tolerance shared across the simulator so that determinism-sensitive
guards behave identically everywhere.
"""

from __future__ import annotations

import math

#: Absolute tolerance below which an accumulated physical quantity
#: (seconds, joules, watts) is treated as zero.  Far below one PMI
#: interval (~0.07 s) or one handler dispatch (~3 us), far above
#: accumulated rounding noise.
ABSOLUTE_TOLERANCE = 1e-12


def is_zero(value: float, tolerance: float = ABSOLUTE_TOLERANCE) -> bool:
    """Whether ``value`` is zero to within an absolute tolerance."""
    return abs(value) <= tolerance


def approx_equal(
    a: float,
    b: float,
    rel_tolerance: float = 1e-9,
    abs_tolerance: float = ABSOLUTE_TOLERANCE,
) -> bool:
    """Tolerance-aware float equality (symmetric, like ``math.isclose``)."""
    return math.isclose(a, b, rel_tol=rel_tolerance, abs_tol=abs_tolerance)
