"""Whole-benchmark characterisation reports.

Bundles the workload-analysis machinery — variability, quadrant
placement, phase occupancy, run-length statistics and predictability —
into a single summary per benchmark, the kind of table a workload
characterisation study (or this repository's CLI) prints per
application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.durations import DurationStatistics
from repro.analysis.variability import sample_variation_pct
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.workloads.quadrants import Quadrant, categorize
from repro.workloads.spec2000 import BenchmarkSpec


@dataclass(frozen=True)
class BenchmarkCharacterization:
    """Everything the analysis layer knows about one benchmark.

    Attributes:
        name: Benchmark label.
        n_intervals: Samples the characterisation was computed over.
        mean_mem_per_uop: Average phase metric (savings potential).
        variability_pct: Sample-variation percentage (Figure 3 y-axis).
        quadrant: Figure 3 quadrant.
        phase_occupancy: Fraction of intervals spent in each phase.
        mean_run_length: Mean phase run length per phase (intervals).
        last_value_accuracy: Last-value predictability.
        gpht_accuracy: GPHT(8, 1024) predictability.
    """

    name: str
    n_intervals: int
    mean_mem_per_uop: float
    variability_pct: float
    quadrant: Quadrant
    phase_occupancy: Dict[int, float]
    mean_run_length: Dict[int, float]
    last_value_accuracy: float
    gpht_accuracy: float

    @property
    def dominant_phase(self) -> int:
        """The phase the benchmark spends the most intervals in."""
        return max(self.phase_occupancy, key=self.phase_occupancy.get)

    @property
    def predictability_gain(self) -> float:
        """GPHT accuracy minus last-value accuracy (pattern payoff)."""
        return self.gpht_accuracy - self.last_value_accuracy


def characterize(
    spec: BenchmarkSpec,
    n_intervals: int = 1000,
    phase_table: Optional[PhaseTable] = None,
) -> BenchmarkCharacterization:
    """Compute the full characterisation of one benchmark.

    Args:
        spec: The benchmark to characterise.
        n_intervals: Trace length to analyse.
        phase_table: Phase definitions (default: paper Table 1).
    """
    table = phase_table if phase_table is not None else PhaseTable()
    series = spec.mem_series(n_intervals)
    phases = table.classify_series(series)

    occupancy: Dict[int, float] = {}
    for phase_id in table.phase_ids:
        count = sum(1 for p in phases if p == phase_id)
        if count:
            occupancy[phase_id] = count / len(phases)

    durations = DurationStatistics.from_sequence(phases)
    mean_runs = {
        phase_id: durations.mean_duration(phase_id)
        for phase_id in durations.observed_phases()
    }

    last = evaluate_predictor(LastValuePredictor(), series, table)
    gpht = evaluate_predictor(GPHTPredictor(8, 1024), series, table)
    variability = sample_variation_pct(series)
    mean_mem = float(series.mean())

    return BenchmarkCharacterization(
        name=spec.name,
        n_intervals=n_intervals,
        mean_mem_per_uop=mean_mem,
        variability_pct=variability,
        quadrant=categorize(variability, mean_mem),
        phase_occupancy=occupancy,
        mean_run_length=mean_runs,
        last_value_accuracy=last.accuracy,
        gpht_accuracy=gpht.accuracy,
    )


def characterization_rows(
    characterization: BenchmarkCharacterization,
) -> Tuple[Tuple[str, str], ...]:
    """Render a characterisation as (label, value) text rows."""
    occupancy = ", ".join(
        f"P{phase}:{fraction:.0%}"
        for phase, fraction in sorted(
            characterization.phase_occupancy.items()
        )
    )
    runs = ", ".join(
        f"P{phase}:{length:.1f}"
        for phase, length in sorted(
            characterization.mean_run_length.items()
        )
    )
    return (
        ("benchmark", characterization.name),
        ("intervals analysed", str(characterization.n_intervals)),
        ("mean Mem/Uop", f"{characterization.mean_mem_per_uop:.4f}"),
        ("sample variation", f"{characterization.variability_pct:.1f}%"),
        ("quadrant", characterization.quadrant.name),
        ("phase occupancy", occupancy),
        ("mean run length", runs),
        ("dominant phase", str(characterization.dominant_phase)),
        (
            "last-value accuracy",
            f"{characterization.last_value_accuracy:.1%}",
        ),
        ("GPHT accuracy", f"{characterization.gpht_accuracy:.1%}"),
        (
            "predictability gain",
            f"{characterization.predictability_gain:+.1%}",
        ),
    )
