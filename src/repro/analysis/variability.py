"""Sample-variation metrics (the y-axis of the paper's Figure 3).

The paper quantifies how "unstable" a benchmark is as the percentage of
consecutive sample pairs whose ``Mem/Uop`` differs by more than 0.005 at
the 100M-instruction sampling granularity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The paper's variation threshold at 100M-instruction granularity.
DEFAULT_VARIATION_DELTA = 0.005


def sample_variation_pct(
    mem_series: Sequence[float], delta: float = DEFAULT_VARIATION_DELTA
) -> float:
    """Percentage of consecutive samples changing by more than ``delta``.

    Args:
        mem_series: Per-interval ``Mem/Uop`` values (at least two).
        delta: Change magnitude that counts as a variation.

    Returns:
        A percentage in ``[0, 100]``.
    """
    series = np.asarray(mem_series, dtype=float)
    if series.size < 2:
        raise ConfigurationError(
            f"variation needs >= 2 samples, got {series.size}"
        )
    if delta <= 0:
        raise ConfigurationError(f"delta must be > 0, got {delta}")
    changes = np.abs(np.diff(series)) > delta
    return float(changes.mean() * 100.0)


def phase_transition_rate(phases: Sequence[int]) -> float:
    """Fraction of consecutive samples whose phase id differs.

    The complement of this rate is exactly the accuracy a last-value
    predictor achieves on the sequence, which makes it a useful analytic
    cross-check in tests.
    """
    series = np.asarray(phases)
    if series.size < 2:
        raise ConfigurationError(
            f"transition rate needs >= 2 samples, got {series.size}"
        )
    return float((np.diff(series) != 0).mean())
