"""Evaluation helpers: predictor accuracy, variability, durations,
witnesses, characterisation, sweeps and reporting.

The low-level metrics (accuracy, variability, durations, reporting) are
imported eagerly.  The high-level helpers (characterisation, sweeps,
witnesses) depend on :mod:`repro.core` and :mod:`repro.workloads` —
which in turn use the low-level metrics here — so they are exposed
lazily via PEP 562 module ``__getattr__`` to keep the import graph
acyclic.
"""

import importlib

from repro.analysis.accuracy import (
    PredictionResult,
    evaluate_predictor,
    evaluate_predictor_batch,
    evaluate_suite,
    misprediction_improvement,
)
from repro.analysis.durations import DurationStatistics, PhaseRun, phase_runs
from repro.analysis.reporting import format_percent, format_series, format_table
from repro.analysis.variability import (
    DEFAULT_VARIATION_DELTA,
    phase_transition_rate,
    sample_variation_pct,
)

#: High-level helpers resolved on first attribute access (PEP 562).
_LAZY_EXPORTS = {
    "spec_phase_witnesses": "repro.analysis.witnesses",
    "characterize": "repro.analysis.characterize",
    "characterization_rows": "repro.analysis.characterize",
    "BenchmarkCharacterization": "repro.analysis.characterize",
    "sweep_pht_entries": "repro.analysis.sweeps",
    "sweep_gphr_depth": "repro.analysis.sweeps",
    "sweep_granularity": "repro.analysis.sweeps",
    "sweep_frequencies": "repro.analysis.sweeps",
    "Claim": "repro.analysis.paper_report",
    "claims_payload": "repro.analysis.paper_report",
    "measure_claims": "repro.analysis.paper_report",
    "render_report": "repro.analysis.paper_report",
}

__all__ = [
    "PredictionResult",
    "evaluate_predictor",
    "evaluate_predictor_batch",
    "evaluate_suite",
    "misprediction_improvement",
    "sample_variation_pct",
    "phase_transition_rate",
    "DEFAULT_VARIATION_DELTA",
    "phase_runs",
    "PhaseRun",
    "DurationStatistics",
    "format_table",
    "format_percent",
    "format_series",
] + list(_LAZY_EXPORTS)


def __getattr__(name):
    """Resolve the high-level helpers on demand (PEP 562)."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
