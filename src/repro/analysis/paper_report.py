"""One-command reproduction report: re-measure every headline claim.

Regenerates the paper's headline numbers live and checks each against
its published counterpart, producing a pass/fail "reproduction
certificate".  This is the programmatic core behind
``python -m repro report`` and the evidence base of EXPERIMENTS.md.

Each claim is a :class:`Claim`: what the paper says, what this
reproduction measures, and the shape criterion under which the claim
counts as reproduced (absolute numbers are not expected to match a
simulated platform; directions and rough factors are).

Measurement runs through the :mod:`repro.exec` engine — all predictor
evaluations and baseline-vs-managed suites are independent cells, so
``repro report --jobs N`` fans them out over processes and a warm
result cache makes re-certification nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.exec.cache import ResultCache
from repro.exec.cells import comparison_summary
from repro.exec.engine import ExecutionEngine, make_engine
from repro.exec.results import MetricValue
from repro.exec.spec import ExperimentSpec
from repro.system.experiment import run_comparison_suite, run_suite
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics, mean
from repro.workloads.spec2000 import (
    FIG4_BENCHMARK_ORDER,
    FIG12_BENCHMARKS,
    FIG13_BENCHMARKS,
)


@dataclass(frozen=True)
class Claim:
    """One headline claim: paper statement vs measured value.

    Attributes:
        name: Short identifier of the claim.
        paper: What the paper reports.
        measured: What this reproduction measured (formatted).
        holds: Whether the shape criterion is satisfied.
    """

    name: str
    paper: str
    measured: str
    holds: bool

    @property
    def verdict(self) -> str:
        """Render the outcome as a checkmark or cross."""
        return "REPRODUCED" if self.holds else "NOT REPRODUCED"


def _accuracy_cells(
    engine: ExecutionEngine, n_accuracy: int
) -> Dict[str, Mapping[str, MetricValue]]:
    """Evaluate every predictor-accuracy cell the claims need, keyed
    ``"<benchmark>/<predictor>"``."""
    wanted = [(name, "GPHT_8_1024") for name in FIG4_BENCHMARK_ORDER]
    wanted += [("applu_in", "LastValue"), ("applu_in", "GPHT_8_128")]
    specs = {
        f"{name}/{predictor}": ExperimentSpec.create(
            "predictor_accuracy",
            benchmark=name,
            n_intervals=n_accuracy,
            predictor=predictor,
            phase_edges=None,
        )
        for name, predictor in wanted
    }
    report = engine.run(list(specs.values()))
    return {key: report.value(spec) for key, spec in specs.items()}


def _suite_metrics(
    benchmark_names: "Sequence[str]",
    governor: str,
    policy: str,
    n_intervals: int,
    engine: ExecutionEngine,
    machine: Optional[Machine],
) -> Dict[str, Mapping[str, MetricValue]]:
    """Per-benchmark comparison summaries for one managed suite.

    With the default platform the suite runs through the engine
    (parallelisable, cacheable); a hand-built ``machine`` falls back to
    the inline :func:`run_suite` path, flattened to the same summary
    shape.
    """
    if machine is None:
        return dict(
            run_comparison_suite(
                benchmark_names,
                governor=governor,
                policy=policy,
                n_intervals=n_intervals,
                engine=engine,
            ).to_dict()
        )
    from repro.exec.cells import build_governor

    suite = run_suite(
        benchmark_names,
        lambda: build_governor(governor, policy),
        machine,
        n_intervals=n_intervals,
    )
    return {
        name: comparison_summary(
            ComparisonMetrics(
                baseline=result.baseline, managed=result.managed
            ),
            result.managed,
        )
        for name, result in suite.items()
    }


def _rate(metrics: Mapping[str, MetricValue], key: str) -> float:
    value = metrics[key]
    assert isinstance(value, (int, float))
    return float(value)


def measure_claims(
    n_accuracy: int = 1000,
    n_intervals: int = 300,
    machine: Optional[Machine] = None,
    engine: Optional[ExecutionEngine] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Claim]:
    """Re-measure the paper's headline claims.

    Args:
        n_accuracy: Trace length for predictor-accuracy claims.
        n_intervals: Trace length for full-system management claims.
        machine: Platform override; forces the management suites onto
            the inline path (custom machines cannot be content-hashed).
        engine: Execution engine (overrides ``jobs``/``cache``).
        jobs: Worker processes when no engine is given (1 = serial).
        cache: On-disk result cache when no engine is given.

    Returns:
        The claims in presentation order.
    """
    if engine is None:
        engine = make_engine(jobs=jobs, cache=cache)
    claims: List[Claim] = []

    # -- prediction claims --------------------------------------------------
    accuracy = _accuracy_cells(engine, n_accuracy)
    high_accuracy = sum(
        1
        for name in FIG4_BENCHMARK_ORDER
        if _rate(accuracy[f"{name}/GPHT_8_1024"], "accuracy") > 0.9
    )
    claims.append(
        Claim(
            name="above-90% accuracy for many benchmarks",
            paper="above 90% prediction accuracies for many benchmarks",
            measured=f"{high_accuracy}/{len(FIG4_BENCHMARK_ORDER)} "
            "benchmarks above 90%",
            holds=high_accuracy >= 20,
        )
    )

    applu_last_rate = _rate(
        accuracy["applu_in/LastValue"], "misprediction_rate"
    )
    applu_gpht_rate = _rate(
        accuracy["applu_in/GPHT_8_1024"], "misprediction_rate"
    )
    factor = (
        applu_last_rate / applu_gpht_rate
        if applu_gpht_rate > 0.0
        else float("inf")
    )
    claims.append(
        Claim(
            name="6X misprediction reduction (applu)",
            paper="reduce mispredictions by more than 6X over statistical "
            "approaches",
            measured=f"{factor:.1f}X (last value "
            f"{applu_last_rate:.1%} -> GPHT "
            f"{applu_gpht_rate:.1%})",
            holds=factor > 6.0,
        )
    )

    small_accuracy = _rate(accuracy["applu_in/GPHT_8_128"], "accuracy")
    large_accuracy = _rate(accuracy["applu_in/GPHT_8_1024"], "accuracy")
    claims.append(
        Claim(
            name="128-entry PHT is sufficient",
            paper="down to 128 entries, GPHT performs almost identically "
            "to the 1024 entry predictor",
            measured=f"GPHT(8,128) {small_accuracy:.1%} vs GPHT(8,1024) "
            f"{large_accuracy:.1%} on applu",
            holds=abs(small_accuracy - large_accuracy) < 0.03,
        )
    )

    # -- management claims --------------------------------------------------
    gpht_suite = _suite_metrics(
        FIG12_BENCHMARKS, "gpht", "table2", n_intervals, engine, machine
    )
    reactive_suite = _suite_metrics(
        FIG12_BENCHMARKS, "reactive", "table2", n_intervals, engine, machine
    )

    equake = _rate(gpht_suite["equake_in"], "edp_improvement")
    claims.append(
        Claim(
            name="EDP improvement up to ~34% on variable apps",
            paper="EDP improvements as high as 34% — in the case of "
            "equake — for the highly variable Q3 benchmarks",
            measured=f"equake {equake:.1%}",
            holds=0.25 < equake < 0.50,
        )
    )

    q2_floor = min(
        _rate(gpht_suite[name], "edp_improvement")
        for name in ("swim_in", "mcf_inp")
    )
    claims.append(
        Claim(
            name="Q2 benchmarks above 60% EDP improvement",
            paper="the trivial Q2 applications swim and mcf exhibit above "
            "60% EDP improvements",
            measured=f"min(swim, mcf) = {q2_floor:.1%}",
            holds=q2_floor > 0.50,
        )
    )

    gpht_avg = mean(
        [
            _rate(gpht_suite[name], "edp_improvement")
            for name in FIG12_BENCHMARKS
        ]
    )
    reactive_avg = mean(
        [
            _rate(reactive_suite[name], "edp_improvement")
            for name in FIG12_BENCHMARKS
        ]
    )
    claims.append(
        Claim(
            name="proactive beats reactive management",
            paper="a 7% EDP improvement over reactive methods (27% vs 20%)",
            measured=f"GPHT {gpht_avg:.1%} vs reactive {reactive_avg:.1%} "
            f"(+{(gpht_avg - reactive_avg) * 100:.1f} pts)",
            holds=gpht_avg > reactive_avg + 0.01,
        )
    )

    handler_fraction = max(
        _rate(gpht_suite[name], "handler_overhead_fraction")
        for name in FIG12_BENCHMARKS
    )
    claims.append(
        Claim(
            name="no observable overheads",
            paper="with no visible overheads",
            measured=f"worst handler share {handler_fraction:.4%} of "
            "execution",
            holds=handler_fraction < 1e-3,
        )
    )

    # -- bounded degradation (Section 6.3) ----------------------------------
    bounded = _suite_metrics(
        FIG13_BENCHMARKS, "gpht", "bounded", n_intervals, engine, machine
    )
    worst_degradation = max(
        _rate(bounded[name], "performance_degradation")
        for name in FIG13_BENCHMARKS
    )
    reduced_2x = all(
        _rate(bounded[name], "edp_improvement")
        < _rate(gpht_suite[name], "edp_improvement") / 2
        for name in FIG13_BENCHMARKS
        if name in gpht_suite
    )
    claims.append(
        Claim(
            name="bounded degradation below 5%",
            paper="performance degradations significantly lower than 5%, "
            "EDP improvements reduced by more than 2X",
            measured=f"worst degradation {worst_degradation:.1%}; "
            f"2X reduction on all five: {reduced_2x}",
            holds=worst_degradation < 0.05 and reduced_2x,
        )
    )

    return claims


def claims_payload(claims: List[Claim]) -> Dict[str, object]:
    """The reproduction certificate as a JSON-ready mapping."""
    return {
        "reproduced": sum(1 for claim in claims if claim.holds),
        "total": len(claims),
        "claims": [
            {
                "name": claim.name,
                "paper": claim.paper,
                "measured": claim.measured,
                "holds": claim.holds,
                "verdict": claim.verdict,
            }
            for claim in claims
        ],
    }


def render_report(claims: List[Claim]) -> str:
    """Render the claims as the reproduction-certificate table."""
    rows = [
        (claim.name, claim.paper, claim.measured, claim.verdict)
        for claim in claims
    ]
    reproduced = sum(1 for claim in claims if claim.holds)
    header = (
        f"Reproduction certificate: {reproduced}/{len(claims)} headline "
        "claims reproduced."
    )
    return header + "\n\n" + format_table(
        ["claim", "paper", "measured", "verdict"], rows
    )


def claims_by_name(claims: List[Claim]) -> Dict[str, Claim]:
    """Index claims by their short names."""
    return {claim.name: claim for claim in claims}
