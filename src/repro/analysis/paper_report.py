"""One-command reproduction report: re-measure every headline claim.

Regenerates the paper's headline numbers live and checks each against
its published counterpart, producing a pass/fail "reproduction
certificate".  This is the programmatic core behind
``python -m repro report`` and the evidence base of EXPERIMENTS.md.

Each claim is a :class:`Claim`: what the paper says, what this
reproduction measures, and the shape criterion under which the claim
counts as reproduced (absolute numbers are not expected to match a
simulated platform; directions and rough factors are).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.accuracy import evaluate_predictor, misprediction_improvement
from repro.analysis.reporting import format_table
from repro.analysis.witnesses import spec_phase_witnesses
from repro.core.dvfs_policy import derive_bounded_policy
from repro.core.governor import PhasePredictionGovernor, ReactiveGovernor
from repro.core.predictors import GPHTPredictor, LastValuePredictor
from repro.system.experiment import run_suite
from repro.system.machine import Machine
from repro.system.metrics import mean
from repro.workloads.spec2000 import (
    FIG4_BENCHMARK_ORDER,
    FIG12_BENCHMARKS,
    FIG13_BENCHMARKS,
    benchmark,
)


@dataclass(frozen=True)
class Claim:
    """One headline claim: paper statement vs measured value.

    Attributes:
        name: Short identifier of the claim.
        paper: What the paper reports.
        measured: What this reproduction measured (formatted).
        holds: Whether the shape criterion is satisfied.
    """

    name: str
    paper: str
    measured: str
    holds: bool

    @property
    def verdict(self) -> str:
        """Render the outcome as a checkmark or cross."""
        return "REPRODUCED" if self.holds else "NOT REPRODUCED"


def measure_claims(
    n_accuracy: int = 1000,
    n_intervals: int = 300,
    machine: Optional[Machine] = None,
) -> List[Claim]:
    """Re-measure the paper's headline claims.

    Args:
        n_accuracy: Trace length for predictor-accuracy claims.
        n_intervals: Trace length for full-system management claims.
        machine: Platform to run on (default machine when omitted).

    Returns:
        The claims in presentation order.
    """
    machine = machine if machine is not None else Machine()
    claims: List[Claim] = []

    # -- prediction claims --------------------------------------------------
    high_accuracy = 0
    for name in FIG4_BENCHMARK_ORDER:
        series = benchmark(name).mem_series(n_accuracy)
        if evaluate_predictor(GPHTPredictor(8, 1024), series).accuracy > 0.9:
            high_accuracy += 1
    claims.append(
        Claim(
            name="above-90% accuracy for many benchmarks",
            paper="above 90% prediction accuracies for many benchmarks",
            measured=f"{high_accuracy}/{len(FIG4_BENCHMARK_ORDER)} "
            "benchmarks above 90%",
            holds=high_accuracy >= 20,
        )
    )

    applu_series = benchmark("applu_in").mem_series(n_accuracy)
    applu_last = evaluate_predictor(LastValuePredictor(), applu_series)
    applu_gpht = evaluate_predictor(GPHTPredictor(8, 1024), applu_series)
    factor = misprediction_improvement(applu_last, applu_gpht)
    claims.append(
        Claim(
            name="6X misprediction reduction (applu)",
            paper="reduce mispredictions by more than 6X over statistical "
            "approaches",
            measured=f"{factor:.1f}X (last value "
            f"{applu_last.misprediction_rate:.1%} -> GPHT "
            f"{applu_gpht.misprediction_rate:.1%})",
            holds=factor > 6.0,
        )
    )

    small = evaluate_predictor(GPHTPredictor(8, 128), applu_series)
    claims.append(
        Claim(
            name="128-entry PHT is sufficient",
            paper="down to 128 entries, GPHT performs almost identically "
            "to the 1024 entry predictor",
            measured=f"GPHT(8,128) {small.accuracy:.1%} vs GPHT(8,1024) "
            f"{applu_gpht.accuracy:.1%} on applu",
            holds=abs(small.accuracy - applu_gpht.accuracy) < 0.03,
        )
    )

    # -- management claims --------------------------------------------------
    gpht_suite = run_suite(
        FIG12_BENCHMARKS,
        lambda: PhasePredictionGovernor(GPHTPredictor(8, 128)),
        machine,
        n_intervals=n_intervals,
    )
    reactive_suite = run_suite(
        FIG12_BENCHMARKS,
        lambda: ReactiveGovernor(),
        machine,
        n_intervals=n_intervals,
    )

    equake = gpht_suite["equake_in"].comparison.edp_improvement
    claims.append(
        Claim(
            name="EDP improvement up to ~34% on variable apps",
            paper="EDP improvements as high as 34% — in the case of "
            "equake — for the highly variable Q3 benchmarks",
            measured=f"equake {equake:.1%}",
            holds=0.25 < equake < 0.50,
        )
    )

    q2_floor = min(
        gpht_suite[name].comparison.edp_improvement
        for name in ("swim_in", "mcf_inp")
    )
    claims.append(
        Claim(
            name="Q2 benchmarks above 60% EDP improvement",
            paper="the trivial Q2 applications swim and mcf exhibit above "
            "60% EDP improvements",
            measured=f"min(swim, mcf) = {q2_floor:.1%}",
            holds=q2_floor > 0.50,
        )
    )

    gpht_avg = mean(
        [gpht_suite[n].comparison.edp_improvement for n in FIG12_BENCHMARKS]
    )
    reactive_avg = mean(
        [
            reactive_suite[n].comparison.edp_improvement
            for n in FIG12_BENCHMARKS
        ]
    )
    claims.append(
        Claim(
            name="proactive beats reactive management",
            paper="a 7% EDP improvement over reactive methods (27% vs 20%)",
            measured=f"GPHT {gpht_avg:.1%} vs reactive {reactive_avg:.1%} "
            f"(+{(gpht_avg - reactive_avg) * 100:.1f} pts)",
            holds=gpht_avg > reactive_avg + 0.01,
        )
    )

    handler_fraction = max(
        gpht_suite[n].managed.handler_overhead_fraction
        for n in FIG12_BENCHMARKS
    )
    claims.append(
        Claim(
            name="no observable overheads",
            paper="with no visible overheads",
            measured=f"worst handler share {handler_fraction:.4%} of "
            "execution",
            holds=handler_fraction < 1e-3,
        )
    )

    # -- bounded degradation (Section 6.3) ----------------------------------
    bounded_policy = derive_bounded_policy(
        0.05, witnesses_by_phase=spec_phase_witnesses()
    )
    bounded = run_suite(
        FIG13_BENCHMARKS,
        lambda: PhasePredictionGovernor(GPHTPredictor(8, 128), bounded_policy),
        machine,
        n_intervals=n_intervals,
    )
    worst_degradation = max(
        bounded[name].comparison.performance_degradation
        for name in FIG13_BENCHMARKS
    )
    reduced_2x = all(
        bounded[name].comparison.edp_improvement
        < gpht_suite[name].comparison.edp_improvement / 2
        for name in FIG13_BENCHMARKS
        if name in gpht_suite
    )
    claims.append(
        Claim(
            name="bounded degradation below 5%",
            paper="performance degradations significantly lower than 5%, "
            "EDP improvements reduced by more than 2X",
            measured=f"worst degradation {worst_degradation:.1%}; "
            f"2X reduction on all five: {reduced_2x}",
            holds=worst_degradation < 0.05 and reduced_2x,
        )
    )

    return claims


def render_report(claims: List[Claim]) -> str:
    """Render the claims as the reproduction-certificate table."""
    rows = [
        (claim.name, claim.paper, claim.measured, claim.verdict)
        for claim in claims
    ]
    reproduced = sum(1 for claim in claims if claim.holds)
    header = (
        f"Reproduction certificate: {reproduced}/{len(claims)} headline "
        "claims reproduced."
    )
    return header + "\n\n" + format_table(
        ["claim", "paper", "measured", "verdict"], rows
    )


def claims_by_name(claims: List[Claim]) -> Dict[str, Claim]:
    """Index claims by their short names."""
    return {claim.name: claim for claim in claims}
