"""Phase run-length (duration) analysis — extension.

The paper's related work (Isci, Martonosi & Buyuktosunoglu, IEEE Micro
2005, its reference [14]) predicts *phase durations*: how long the
current phase will persist before transitioning.  This module provides
the run-length machinery — run-length encoding of phase sequences and
per-phase duration statistics — used both for workload characterisation
and by the duration-based predictor in
:mod:`repro.core.predictors.duration`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PhaseRun:
    """A maximal run of consecutive identical phases.

    Attributes:
        phase: The phase id of the run.
        start: Index of the run's first sample.
        length: Number of consecutive samples (>= 1).
    """

    phase: int
    start: int
    length: int


def phase_runs(phases: Sequence[int]) -> List[PhaseRun]:
    """Run-length encode a phase sequence.

    Args:
        phases: The per-interval phase ids (non-empty).

    Returns:
        Maximal runs in order; their lengths sum to ``len(phases)``.
    """
    if not phases:
        raise ConfigurationError("cannot encode an empty phase sequence")
    runs: List[PhaseRun] = []
    start = 0
    current = phases[0]
    for index, phase in enumerate(phases[1:], start=1):
        if phase != current:
            runs.append(PhaseRun(phase=current, start=start,
                                 length=index - start))
            current = phase
            start = index
    runs.append(PhaseRun(phase=current, start=start,
                         length=len(phases) - start))
    return runs


class DurationStatistics:
    """Per-phase run-length distributions of a phase sequence.

    Built offline from a complete sequence (characterisation) or grown
    online one completed run at a time (the duration predictor).
    """

    def __init__(self) -> None:
        self._histograms: Dict[int, Counter] = defaultdict(Counter)

    @classmethod
    def from_sequence(cls, phases: Sequence[int]) -> "DurationStatistics":
        """Build statistics from a complete phase sequence.

        The final (possibly truncated) run is excluded: its true
        duration is unknown.
        """
        statistics = cls()
        runs = phase_runs(phases)
        for run in runs[:-1]:
            statistics.record(run.phase, run.length)
        return statistics

    def record(self, phase: int, length: int) -> None:
        """Record one completed run of ``phase`` lasting ``length``."""
        if length < 1:
            raise ConfigurationError(f"run length must be >= 1, got {length}")
        self._histograms[phase][length] += 1

    def observed_phases(self) -> Tuple[int, ...]:
        """Phases with at least one recorded run, ascending."""
        return tuple(sorted(self._histograms))

    def run_count(self, phase: int) -> int:
        """Number of completed runs recorded for ``phase``."""
        return sum(self._histograms[phase].values())

    def histogram(self, phase: int) -> Dict[int, int]:
        """Run-length histogram of ``phase`` (length -> occurrences)."""
        return dict(self._histograms[phase])

    def mean_duration(self, phase: int) -> float:
        """Mean run length of ``phase``.

        Raises:
            ConfigurationError: If no run of ``phase`` was recorded.
        """
        histogram = self._histograms.get(phase)
        if not histogram:
            raise ConfigurationError(f"no runs recorded for phase {phase}")
        total = sum(length * count for length, count in histogram.items())
        return total / sum(histogram.values())

    def median_duration(self, phase: int) -> int:
        """Median run length of ``phase`` (lower median)."""
        histogram = self._histograms.get(phase)
        if not histogram:
            raise ConfigurationError(f"no runs recorded for phase {phase}")
        count = sum(histogram.values())
        midpoint = (count + 1) // 2
        seen = 0
        for length in sorted(histogram):
            seen += histogram[length]
            if seen >= midpoint:
                return length
        raise AssertionError("unreachable: midpoint within total count")

    def to_payload(self) -> List[List[object]]:
        """Lossless JSON-able form of the recorded histograms.

        Entries keep their insertion order (first-recorded phase first,
        first-recorded length first) so a rebuilt instance is exactly the
        original, not merely statistically equivalent.
        """
        return [
            [phase, [[length, count] for length, count in histogram.items()]]
            for phase, histogram in self._histograms.items()
        ]

    @classmethod
    def from_payload(cls, payload: object) -> "DurationStatistics":
        """Rebuild statistics from a :meth:`to_payload` value.

        Raises:
            ConfigurationError: On a malformed payload.
        """
        if not isinstance(payload, list):
            raise ConfigurationError(
                f"duration statistics payload must be a list, got {payload!r}"
            )
        statistics = cls()
        for entry in payload:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ConfigurationError(
                    f"malformed duration histogram entry: {entry!r}"
                )
            phase, pairs = entry
            if isinstance(phase, bool) or not isinstance(phase, int):
                raise ConfigurationError(
                    f"duration histogram phase must be an int, got {phase!r}"
                )
            if not isinstance(pairs, (list, tuple)):
                raise ConfigurationError(
                    f"duration histogram for phase {phase} must be a list, "
                    f"got {pairs!r}"
                )
            histogram = statistics._histograms[phase]
            for pair in pairs:
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise ConfigurationError(
                        f"malformed duration histogram pair: {pair!r}"
                    )
                length, count = pair
                for value in (length, count):
                    if isinstance(value, bool) or not isinstance(value, int):
                        raise ConfigurationError(
                            f"duration histogram values must be ints, "
                            f"got {value!r}"
                        )
                if length < 1 or count < 1:
                    raise ConfigurationError(
                        f"duration histogram pair must be >= 1, "
                        f"got ({length}, {count})"
                    )
                histogram[length] = count
        return statistics

    def continuation_probability(self, phase: int, elapsed: int) -> float:
        """P(run continues past ``elapsed`` | it reached ``elapsed``).

        The hazard-complement a duration predictor thresholds on: among
        recorded runs of ``phase`` that lasted at least ``elapsed``
        samples, the fraction that lasted strictly longer.
        """
        if elapsed < 1:
            raise ConfigurationError(f"elapsed must be >= 1, got {elapsed}")
        histogram = self._histograms.get(phase)
        if not histogram:
            return 1.0
        reached = sum(c for length, c in histogram.items() if length >= elapsed)
        if reached == 0:
            # Longer than anything seen: assume the run is ending.
            return 0.0
        longer = sum(c for length, c in histogram.items() if length > elapsed)
        return longer / reached
