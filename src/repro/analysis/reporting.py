"""Plain-text reporting helpers for the benchmark harness.

The benches regenerate the paper's tables and figure series as aligned
text so the rows/series the paper reports can be compared directly in a
terminal or a log file.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with four significant decimals; other values use
    ``str``.  Column widths adapt to content.

    Args:
        headers: Column names.
        rows: Row cell values; every row must match ``headers`` length.
        title: Optional title line printed above the table.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append([_cell(value) for value in row])

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 1) -> str:
    """Render a fraction as a percentage string (0.341 -> '34.1%')."""
    return f"{value * 100.0:.{decimals}f}%"


def format_series(name: str, values: Sequence[float], decimals: int = 4) -> str:
    """Render a named numeric series on one line."""
    body = ", ".join(f"{v:.{decimals}f}" for v in values)
    return f"{name}: [{body}]"


#: Block characters for eight-level sparklines, lowest first.
_SPARK_LEVELS = " \u2581\u2582\u2583\u2584\u2585\u2586\u2587\u2588"


def sparkline(values: Sequence[float], lo: float = None, hi: float = None) -> str:
    """Render a numeric series as a one-line block-character sparkline.

    Gives the text figures (e.g. Figure 2/10 trace dumps) a visual
    shape without any plotting dependency.

    Args:
        values: The series (non-empty).
        lo: Value mapped to the lowest block (default: series minimum).
        hi: Value mapped to the highest block (default: series maximum).
    """
    if not values:
        raise ConfigurationError("sparkline of an empty series")
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    span = high - low
    characters = []
    for value in values:
        if span == 0:
            level = 4
        else:
            fraction = (value - low) / span
            level = int(round(fraction * 8))
            level = min(max(level, 0), 8)
        characters.append(_SPARK_LEVELS[level])
    return "".join(characters)


def phase_timeline(phases: Sequence[int], num_phases: int = 6) -> str:
    """Render a phase-id sequence as a sparkline scaled to the table.

    Phase 1 (CPU-bound) renders low, phase ``num_phases`` renders high —
    visually matching the paper's phase plots.
    """
    if not phases:
        raise ConfigurationError("timeline of an empty phase sequence")
    return sparkline(list(phases), lo=1.0, hi=float(num_phases))


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
