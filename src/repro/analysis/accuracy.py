"""Offline predictor evaluation on phase traces (paper Section 3.2).

Replays a ``Mem/Uop`` series through a predictor exactly the way the
deployed PMI handler would — observe the finished interval, then predict
the next — and scores the predictions against the actual phases.  This is
the harness behind the paper's Figures 2, 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phases import PhaseTable
from repro.core.predictors import PhaseObservation, PhasePredictor
from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of replaying one series through one predictor.

    Predictions exist for every interval after the first (the first has
    no history to predict from), so ``len(predictions) == len(actuals)
    == n - 1`` for an ``n``-interval series.

    Attributes:
        predictor_name: Display name of the evaluated predictor.
        predictions: Predicted phase per scored interval.
        actuals: Actual phase per scored interval.
    """

    predictor_name: str
    predictions: Tuple[int, ...]
    actuals: Tuple[int, ...]

    @property
    def total(self) -> int:
        """Number of scored predictions."""
        return len(self.predictions)

    @property
    def correct(self) -> int:
        """Number of correct predictions."""
        return sum(p == a for p, a in zip(self.predictions, self.actuals))

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions, in [0, 1]."""
        if self.total == 0:
            return 1.0
        return self.correct / self.total

    @property
    def misprediction_rate(self) -> float:
        """Fraction of wrong predictions, in [0, 1]."""
        return 1.0 - self.accuracy


def evaluate_predictor(
    predictor: PhasePredictor,
    mem_series: Sequence[float],
    phase_table: Optional[PhaseTable] = None,
    tracer: Tracer = NULL_TRACER,
) -> PredictionResult:
    """Replay ``mem_series`` through ``predictor`` and score it.

    The predictor is reset first, then driven through the handler's
    observe/predict cycle: the prediction made after observing sample
    ``t`` is scored against the actual phase of sample ``t + 1``.

    Args:
        predictor: The predictor under test (reset in place).
        mem_series: Per-interval ``Mem/Uop`` values (>= 2 samples).
        phase_table: Phase definitions (default: paper Table 1).
        tracer: Optional trace collector bound to the predictor for the
            replay; events are stamped with the sample index.  Recording
            never changes the scored result.
    """
    if len(mem_series) < 2:
        raise ConfigurationError(
            f"evaluation needs >= 2 samples, got {len(mem_series)}"
        )
    table = phase_table if phase_table is not None else PhaseTable()
    predictor.reset()
    predictor.bind_tracer(tracer)
    tracing = tracer.enabled
    predictions: List[int] = []
    actuals: List[int] = []
    pending: Optional[int] = None
    for index, value in enumerate(mem_series):
        if tracing:
            tracer.begin_interval(index)
        phase = table.classify(float(value))
        if pending is not None:
            predictions.append(pending)
            actuals.append(phase)
        predictor.observe(PhaseObservation(phase=phase, mem_per_uop=float(value)))
        pending = predictor.predict()
    return PredictionResult(
        predictor_name=predictor.name,
        predictions=tuple(predictions),
        actuals=tuple(actuals),
    )


def evaluate_predictor_batch(
    predictor: PhasePredictor,
    mem_series: Sequence[float],
    phase_table: Optional[PhaseTable] = None,
    tracer: Tracer = NULL_TRACER,
) -> PredictionResult:
    """Vectorized :func:`evaluate_predictor` — bit-identical results.

    Classifies the whole series in one :meth:`PhaseTable.classify_batch`
    call and drives the predictor through its fused
    :meth:`PhasePredictor.predict_batch` cycle, so kernelized predictors
    (GPHT, last-value, fixed-window) skip all per-sample Python
    dispatch; every other predictor transparently runs the scalar-loop
    default and still produces the same :class:`PredictionResult`.

    When ``tracer`` is enabled the evaluation delegates to the scalar
    :func:`evaluate_predictor`, which stamps per-interval trace events —
    the scored result is identical either way.
    """
    if len(mem_series) < 2:
        raise ConfigurationError(
            f"evaluation needs >= 2 samples, got {len(mem_series)}"
        )
    if tracer.enabled:
        return evaluate_predictor(predictor, mem_series, phase_table, tracer)
    table = phase_table if phase_table is not None else PhaseTable()
    predictor.reset()
    predictor.bind_tracer(tracer)
    # One float64 round-trip matches the scalar path's float(value)
    # coercion exactly, whatever the input container was.
    values: List[float] = np.asarray(mem_series, dtype=np.float64).tolist()
    phases = table.classify_batch(values)
    predictions = predictor.predict_batch(phases, values)
    return PredictionResult(
        predictor_name=predictor.name,
        predictions=tuple(predictions[:-1]),
        actuals=tuple(phases[1:]),
    )


def evaluate_suite(
    predictor_factories: Sequence[Callable[[], PhasePredictor]],
    series_by_benchmark: Dict[str, Sequence[float]],
    phase_table: Optional[PhaseTable] = None,
) -> Dict[str, Dict[str, PredictionResult]]:
    """Evaluate a family of predictors over a family of benchmarks.

    Each predictor is constructed fresh per benchmark so no state leaks
    between workloads (matching per-application deployment).

    Args:
        predictor_factories: Zero-argument callables producing fresh
            predictors.
        series_by_benchmark: ``Mem/Uop`` series keyed by benchmark name.
        phase_table: Shared phase definitions.

    Returns:
        ``{benchmark: {predictor_name: result}}``.
    """
    results: Dict[str, Dict[str, PredictionResult]] = {}
    for name, series in series_by_benchmark.items():
        per_predictor: Dict[str, PredictionResult] = {}
        for factory in predictor_factories:
            predictor = factory()
            result = evaluate_predictor(predictor, series, phase_table)
            per_predictor[result.predictor_name] = result
        results[name] = per_predictor
    return results


def misprediction_improvement(
    baseline: PredictionResult, improved: PredictionResult
) -> float:
    """How many times fewer mispredictions ``improved`` makes.

    The paper reports "GPHT reduces mispredictions by more than 6X over
    commonly-used statistical approaches" — this is that factor.  Returns
    ``inf`` when the improved predictor is perfect.
    """
    if improved.misprediction_rate == 0.0:
        return float("inf")
    return baseline.misprediction_rate / improved.misprediction_rate
