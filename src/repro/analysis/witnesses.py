"""Empirical per-phase witness segments for bounded-degradation policies.

The paper derives its conservative phase definitions (Section 6.3) from
measured behaviour: it examines the achieved BIPS at each DVFS setting
over the observed (UPC, Mem/Uop) execution points and picks the settings
whose worst case stays within the performance target.

This module reproduces the "observed execution points" part: it sweeps
the benchmark registry's behaviour, groups every sample by its phase, and
condenses each phase's population into a worst-case *witness* segment —
the least memory-bound, least frequency-tolerant behaviour ever
classified into that phase.  Feeding these witnesses to
:func:`repro.core.dvfs_policy.derive_bounded_policy` yields policies that
bound slowdown over everything the workloads actually do, without the
pessimism of synthetic corner cases no application exhibits.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.phases import PhaseTable
from repro.workloads.segments import SegmentSpec
from repro.workloads.spec2000 import SPEC2000_BENCHMARKS, BenchmarkSpec


def spec_phase_witnesses(
    phase_table: Optional[PhaseTable] = None,
    benchmarks: Optional[Mapping[str, BenchmarkSpec]] = None,
    n_intervals: int = 300,
    witness_uops: int = 100_000_000,
) -> Dict[int, List[SegmentSpec]]:
    """Build worst-case witness segments per phase from observed behaviour.

    For every phase, the witness combines the *minimum* ``Mem/Uop`` and
    the *minimum* ``upc_core`` seen among samples classified into that
    phase.  Under the platform timing model both minima maximise the
    slowdown a given DVFS setting inflicts, so a policy that satisfies the
    witness satisfies every observed sample of the phase.

    Args:
        phase_table: Phase definitions (default: paper Table 1).
        benchmarks: Benchmark registry to sweep (default: all SPEC2000).
        n_intervals: Behaviour samples examined per benchmark.
        witness_uops: Uop count of the built witness segments.

    Returns:
        Witness segments keyed by phase id.  Phases no benchmark ever
        enters get no entry (the policy derivation falls back to its
        synthetic witness for those).
    """
    table = phase_table if phase_table is not None else PhaseTable()
    registry = benchmarks if benchmarks is not None else SPEC2000_BENCHMARKS

    min_mem: Dict[int, float] = {}
    min_upc: Dict[int, float] = {}
    for spec in registry.values():
        behavior = spec.behavior(n_intervals)
        phases = np.array([table.classify(m) for m in behavior[:, 0]])
        for phase_id in np.unique(phases):
            mask = phases == phase_id
            mem_floor = float(behavior[mask, 0].min())
            upc_floor = float(behavior[mask, 1].min())
            key = int(phase_id)
            min_mem[key] = min(min_mem.get(key, np.inf), mem_floor)
            min_upc[key] = min(min_upc.get(key, np.inf), upc_floor)

    witnesses: Dict[int, List[SegmentSpec]] = {}
    for phase_id in min_mem:
        witnesses[phase_id] = [
            SegmentSpec(
                uops=witness_uops,
                mem_per_uop=min_mem[phase_id],
                upc_core=min_upc[phase_id],
            )
        ]
    return witnesses
