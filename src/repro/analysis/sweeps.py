"""Parameter-sweep helpers for predictor and system studies.

The paper's evaluation is built from sweeps — PHT sizes (Figure 5),
frequencies (Figure 7), benchmarks (Figures 4/11).  This module packages
the recurring sweep shapes behind one call each, returning plain nested
dictionaries so callers (benches, notebooks, the CLI) can print or test
them directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.analysis.accuracy import evaluate_predictor
from repro.core.governor import Governor, StaticGovernor
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor
from repro.errors import ConfigurationError
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark


def sweep_pht_entries(
    benchmark_names: Sequence[str],
    pht_sizes: Sequence[int],
    gphr_depth: int = 8,
    n_intervals: int = 1000,
    phase_table: Optional[PhaseTable] = None,
) -> Dict[str, Dict[int, float]]:
    """GPHT accuracy per benchmark per PHT capacity (Figure 5's sweep).

    Returns:
        ``{benchmark: {pht_size: accuracy}}``.
    """
    if not pht_sizes:
        raise ConfigurationError("pht_sizes must not be empty")
    results: Dict[str, Dict[int, float]] = {}
    for name in benchmark_names:
        series = benchmark(name).mem_series(n_intervals)
        per_size: Dict[int, float] = {}
        for size in pht_sizes:
            predictor = GPHTPredictor(gphr_depth, size)
            per_size[size] = evaluate_predictor(
                predictor, series, phase_table
            ).accuracy
        results[name] = per_size
    return results


def sweep_gphr_depth(
    benchmark_names: Sequence[str],
    depths: Sequence[int],
    pht_entries: int = 1024,
    n_intervals: int = 1000,
    phase_table: Optional[PhaseTable] = None,
) -> Dict[str, Dict[int, float]]:
    """GPHT accuracy per benchmark per history depth.

    Returns:
        ``{benchmark: {depth: accuracy}}``.
    """
    if not depths:
        raise ConfigurationError("depths must not be empty")
    results: Dict[str, Dict[int, float]] = {}
    for name in benchmark_names:
        series = benchmark(name).mem_series(n_intervals)
        per_depth: Dict[int, float] = {}
        for depth in depths:
            predictor = GPHTPredictor(depth, pht_entries)
            per_depth[depth] = evaluate_predictor(
                predictor, series, phase_table
            ).accuracy
        results[name] = per_depth
    return results


def sweep_granularity(
    benchmark_name: str,
    granularities: Sequence[int],
    governor_factory: Callable[[], Governor],
    segment_uops: int = 25_000_000,
    n_segments: int = 800,
) -> Dict[int, ComparisonMetrics]:
    """Baseline-vs-managed comparison per PMI granularity.

    The workload's intrinsic behaviour (segment size) is held fixed so
    the sweep isolates the sampling effect, exactly as in the
    granularity ablation bench.

    Returns:
        ``{granularity_uops: ComparisonMetrics}``.
    """
    if not granularities:
        raise ConfigurationError("granularities must not be empty")
    trace = benchmark(benchmark_name).trace(
        n_intervals=n_segments, uops_per_interval=segment_uops
    )
    results: Dict[int, ComparisonMetrics] = {}
    for granularity in granularities:
        machine = Machine(granularity_uops=granularity)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        managed = machine.run(trace, governor_factory())
        results[granularity] = ComparisonMetrics(
            baseline=baseline, managed=managed
        )
    return results


def sweep_frequencies(
    benchmark_name: str,
    n_intervals: int = 50,
    machine: Optional[Machine] = None,
) -> Dict[int, Dict[str, float]]:
    """Run a benchmark pinned at every operating point (Figure 7 style).

    Returns:
        ``{frequency_mhz: {"bips": ..., "power_w": ..., "upc": ...,
        "mem_per_uop": ...}}`` with per-run aggregates.
    """
    machine = machine if machine is not None else Machine()
    trace = benchmark(benchmark_name).trace(n_intervals=n_intervals)
    results: Dict[int, Dict[str, float]] = {}
    for point in machine.speedstep:
        run = machine.run(
            trace, StaticGovernor(point), initial_point=point
        )
        records = [m.record for m in run.intervals]
        results[point.frequency_mhz] = {
            "bips": run.bips,
            "power_w": run.average_power_w,
            "upc": sum(r.upc for r in records) / len(records),
            "mem_per_uop": sum(r.mem_per_uop for r in records)
            / len(records),
        }
    return results
