"""Parameter-sweep helpers for predictor and system studies.

The paper's evaluation is built from sweeps — PHT sizes (Figure 5),
frequencies (Figure 7), benchmarks (Figures 4/11).  This module packages
the recurring sweep shapes behind one call each.  Every helper returns a
typed :class:`~repro.exec.results.SweepResult` (cells + parameters +
provenance); the old nested-dict shape is available via ``.to_dict()``
and, transitionally, via deprecated dict-style access on the result
itself.

Execution goes through the :mod:`repro.exec` engine: pass ``engine=``
(or ``jobs=``/``cache=``) to fan a sweep out over worker processes and
memoise completed cells on disk.  Serial, parallel and cache-replayed
runs produce bit-identical results.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

from repro.core.governor import Governor, StaticGovernor
from repro.core.phases import PhaseTable
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.cells import comparison_summary
from repro.exec.engine import ExecutionEngine, make_engine
from repro.exec.results import Provenance, SweepCell, SweepResult
from repro.exec.spec import ExperimentSpec
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.spec2000 import benchmark


def _resolve_engine(
    engine: Optional[ExecutionEngine],
    jobs: int,
    cache: Optional[ResultCache],
) -> ExecutionEngine:
    """One engine from whichever convenience knob the caller used."""
    if engine is not None:
        return engine
    return make_engine(jobs=jobs, cache=cache)


def _phase_edges_param(
    phase_table: Optional[PhaseTable],
) -> Optional[Tuple[float, ...]]:
    """Encode an optional custom phase table for spec hashing."""
    if phase_table is None:
        return None
    return phase_table.edges


def _accuracy_sweep(
    sweep_name: str,
    axis_name: str,
    benchmark_names: Sequence[str],
    axis_values: Sequence[int],
    predictor_for: Callable[[int], str],
    n_intervals: int,
    phase_table: Optional[PhaseTable],
    fixed_params: Sequence[Tuple[str, object]],
    engine: ExecutionEngine,
) -> SweepResult:
    """Shared benchmark-cross-capacity accuracy sweep implementation.

    Each benchmark's ``Mem/Uop`` series is generated exactly once per
    process and shared by every cell that replays it (see
    :mod:`repro.exec.cells`).
    """
    edges = _phase_edges_param(phase_table)
    grid = [
        (name, value, ExperimentSpec.create(
            "predictor_accuracy",
            benchmark=name,
            n_intervals=n_intervals,
            predictor=predictor_for(value),
            phase_edges=edges,
        ))
        for name in benchmark_names
        for value in axis_values
    ]
    report = engine.run([spec for _, _, spec in grid])
    cells = tuple(
        SweepCell.create(
            (name, value),
            {
                "accuracy": report.value(spec)["accuracy"],
                "misprediction_rate": report.value(spec)["misprediction_rate"],
            },
        )
        for name, value, spec in grid
    )
    parameters = dict(fixed_params)
    parameters["n_intervals"] = n_intervals
    if edges is not None:
        parameters["phase_edges"] = edges
    return SweepResult(
        name=sweep_name,
        axes=("benchmark", axis_name),
        cells=cells,
        parameters=tuple(sorted(parameters.items())),
        metric="accuracy",
        provenance=report.provenance(),
    )


def sweep_pht_entries(
    benchmark_names: Sequence[str],
    pht_sizes: Sequence[int],
    gphr_depth: int = 8,
    n_intervals: int = 1000,
    phase_table: Optional[PhaseTable] = None,
    engine: Optional[ExecutionEngine] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """GPHT accuracy per benchmark per PHT capacity (Figure 5's sweep).

    Args:
        benchmark_names: Benchmarks to sweep.
        pht_sizes: PHT capacities to cross them with.
        gphr_depth: Global phase history depth.
        n_intervals: Series length per benchmark.
        phase_table: Phase definitions (default: paper Table 1).
        engine: Execution engine (overrides ``jobs``/``cache``).
        jobs: Worker processes when no engine is given (1 = serial).
        cache: On-disk result cache when no engine is given.

    Returns:
        A :class:`SweepResult` over axes ``(benchmark, pht_entries)``
        with primary metric ``accuracy``; ``.to_dict()`` restores the
        legacy ``{benchmark: {pht_size: accuracy}}`` shape.
    """
    if not pht_sizes:
        raise ConfigurationError("pht_sizes must not be empty")
    return _accuracy_sweep(
        "pht_entries",
        "pht_entries",
        benchmark_names,
        pht_sizes,
        lambda size: f"GPHT_{gphr_depth}_{size}",
        n_intervals,
        phase_table,
        [("gphr_depth", gphr_depth)],
        _resolve_engine(engine, jobs, cache),
    )


def sweep_gphr_depth(
    benchmark_names: Sequence[str],
    depths: Sequence[int],
    pht_entries: int = 1024,
    n_intervals: int = 1000,
    phase_table: Optional[PhaseTable] = None,
    engine: Optional[ExecutionEngine] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """GPHT accuracy per benchmark per history depth.

    Returns:
        A :class:`SweepResult` over axes ``(benchmark, gphr_depth)``
        with primary metric ``accuracy``; ``.to_dict()`` restores the
        legacy ``{benchmark: {depth: accuracy}}`` shape.
    """
    if not depths:
        raise ConfigurationError("depths must not be empty")
    return _accuracy_sweep(
        "gphr_depth",
        "gphr_depth",
        benchmark_names,
        depths,
        lambda depth: f"GPHT_{depth}_{pht_entries}",
        n_intervals,
        phase_table,
        [("pht_entries", pht_entries)],
        _resolve_engine(engine, jobs, cache),
    )


def sweep_granularity(
    benchmark_name: str,
    granularities: Sequence[int],
    governor_factory: Callable[[], Governor],
    segment_uops: int = 25_000_000,
    n_segments: int = 800,
) -> SweepResult:
    """Baseline-vs-managed comparison per PMI granularity.

    The workload's intrinsic behaviour (segment size) is held fixed so
    the sweep isolates the sampling effect, exactly as in the
    granularity ablation bench.  The trace is generated once and shared
    by every granularity.

    This sweep takes an arbitrary governor *factory*, which cannot be
    content-hashed, so it always computes inline (no engine fan-out or
    caching); the result is still a typed :class:`SweepResult`.

    Returns:
        A :class:`SweepResult` over axis ``(granularity_uops,)`` whose
        cells carry the comparison summary metrics
        (``edp_improvement``, ``power_savings``, ...); ``.to_dict()``
        gives ``{granularity_uops: {metric: value}}``.
    """
    if not granularities:
        raise ConfigurationError("granularities must not be empty")
    started = time.perf_counter()
    trace = benchmark(benchmark_name).trace(
        n_intervals=n_segments, uops_per_interval=segment_uops
    )
    cells = []
    for granularity in granularities:
        machine = Machine(granularity_uops=granularity)
        baseline = machine.run(
            trace, StaticGovernor(machine.speedstep.fastest)
        )
        managed = machine.run(trace, governor_factory())
        summary = comparison_summary(
            ComparisonMetrics(baseline=baseline, managed=managed), managed
        )
        cells.append(SweepCell.create((granularity,), summary))
    return SweepResult(
        name="granularity",
        axes=("granularity_uops",),
        cells=tuple(cells),
        parameters=(
            ("benchmark", benchmark_name),
            ("n_segments", n_segments),
            ("segment_uops", segment_uops),
        ),
        metric=None,
        provenance=Provenance.inline(
            len(cells), time.perf_counter() - started
        ),
    )


def sweep_frequencies(
    benchmark_name: str,
    n_intervals: int = 50,
    machine: Optional[Machine] = None,
    engine: Optional[ExecutionEngine] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """Run a benchmark pinned at every operating point (Figure 7 style).

    With the default platform the sweep runs through the execution
    engine (one ``pinned_frequency`` cell per operating point); passing
    a hand-built ``machine`` — whose models cannot be content-hashed —
    falls back to inline computation.

    Returns:
        A :class:`SweepResult` over axis ``(frequency_mhz,)``;
        ``.to_dict()`` restores the legacy ``{frequency_mhz: {"bips":
        ..., "power_w": ..., "upc": ..., "mem_per_uop": ...}}`` shape.
    """
    parameters = (("benchmark", benchmark_name), ("n_intervals", n_intervals))
    if machine is not None:
        started = time.perf_counter()
        trace = benchmark(benchmark_name).trace(n_intervals=n_intervals)
        cells = []
        for point in machine.speedstep:
            run = machine.run(
                trace, StaticGovernor(point), initial_point=point
            )
            records = [m.record for m in run.intervals]
            cells.append(
                SweepCell.create(
                    (point.frequency_mhz,),
                    {
                        "bips": run.bips,
                        "power_w": run.average_power_w,
                        "upc": sum(r.upc for r in records) / len(records),
                        "mem_per_uop": sum(r.mem_per_uop for r in records)
                        / len(records),
                    },
                )
            )
        return SweepResult(
            name="frequencies",
            axes=("frequency_mhz",),
            cells=tuple(cells),
            parameters=parameters,
            metric=None,
            provenance=Provenance.inline(
                len(cells), time.perf_counter() - started
            ),
        )

    from repro.exec.cells import pinned_frequency_points

    frequencies = pinned_frequency_points()
    specs = [
        ExperimentSpec.create(
            "pinned_frequency",
            benchmark=benchmark_name,
            n_intervals=n_intervals,
            frequency_mhz=frequency,
        )
        for frequency in frequencies
    ]
    report = _resolve_engine(engine, jobs, cache).run(specs)
    cells = []
    for frequency, spec in zip(frequencies, specs):
        value = dict(report.value(spec))
        value.pop("frequency_mhz", None)
        cells.append(SweepCell.create((frequency,), value))
    return SweepResult(
        name="frequencies",
        axes=("frequency_mhz",),
        cells=tuple(cells),
        parameters=parameters,
        metric=None,
        provenance=report.provenance(),
    )
