"""Benchmark categorisation by stability and savings potential (Figure 3).

The paper plots every benchmark on two axes — *sample variation* (how
often ``Mem/Uop`` moves by more than 0.005 between consecutive samples)
against *power savings potential* (average ``Mem/Uop``) — and divides the
plane into four quadrants:

* **Q1** — stable, CPU-bound: little to gain, trivially predictable;
* **Q2** — stable, memory-bound: big savings, trivially predictable;
* **Q3** — variable *and* memory-bound: big savings, hard to predict —
  the applications this research targets;
* **Q4** — variable, CPU-bound-ish: hard to predict, modest savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Optional

from repro.workloads.spec2000 import BenchmarkSpec


@unique
class Quadrant(Enum):
    """Figure 3 quadrants."""

    Q1 = "Q1 (stable, low savings)"
    Q2 = "Q2 (stable, high savings)"
    Q3 = "Q3 (variable, high savings)"
    Q4 = "Q4 (variable, low savings)"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class QuadrantThresholds:
    """Axis thresholds separating the quadrants.

    Attributes:
        variability_pct: Sample-variation percentage above which a
            benchmark counts as "variable".
        savings_potential: Mean ``Mem/Uop`` above which a benchmark
            counts as having high power-savings potential.
    """

    variability_pct: float = 20.0
    savings_potential: float = 0.012


@dataclass(frozen=True)
class BenchmarkPlacement:
    """A benchmark's coordinates and quadrant on the Figure 3 plane."""

    name: str
    variability_pct: float
    savings_potential: float
    quadrant: Quadrant


def categorize(
    variability_pct: float,
    savings_potential: float,
    thresholds: Optional[QuadrantThresholds] = None,
) -> Quadrant:
    """Map a ``(variability, savings)`` coordinate to its quadrant."""
    thresholds = thresholds if thresholds is not None else QuadrantThresholds()
    variable = variability_pct > thresholds.variability_pct
    high_savings = savings_potential > thresholds.savings_potential
    if variable:
        return Quadrant.Q3 if high_savings else Quadrant.Q4
    return Quadrant.Q2 if high_savings else Quadrant.Q1


def place_benchmark(
    spec: BenchmarkSpec,
    n_intervals: int = 400,
    thresholds: Optional[QuadrantThresholds] = None,
    variation_delta: float = 0.005,
) -> BenchmarkPlacement:
    """Compute a benchmark's Figure 3 placement from its behaviour.

    Args:
        spec: The benchmark to place.
        n_intervals: Trace length to measure over.
        thresholds: Quadrant boundaries.
        variation_delta: ``Mem/Uop`` delta counting as a variation (the
            paper uses 0.005 at 100M-instruction granularity).
    """
    # Imported at call time: repro.analysis's package __init__ pulls in
    # modules that depend on this one, so a module-level import here
    # would close an import cycle.
    from repro.analysis.variability import sample_variation_pct

    series = spec.mem_series(n_intervals)
    variability = sample_variation_pct(series, variation_delta)
    savings = float(series.mean())
    return BenchmarkPlacement(
        name=spec.name,
        variability_pct=variability,
        savings_potential=savings,
        quadrant=categorize(variability, savings, thresholds),
    )


def place_all(
    benchmarks: Dict[str, BenchmarkSpec],
    n_intervals: int = 400,
    thresholds: Optional[QuadrantThresholds] = None,
) -> Dict[str, BenchmarkPlacement]:
    """Place every benchmark in a registry on the Figure 3 plane."""
    return {
        name: place_benchmark(spec, n_intervals, thresholds)
        for name, spec in benchmarks.items()
    }
