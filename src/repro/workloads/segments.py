"""Workload representation: segments and traces.

A workload is modelled as a stream of *segments*.  Each segment describes a
run of micro-ops with homogeneous behaviour: how many micro-ops it retires,
how many memory bus transactions it issues per micro-op, and how fast the
core could retire its micro-ops if memory were infinitely fast
(``upc_core``).  This is exactly the information the paper's analysis needs:

* ``mem_per_uop`` is the DVFS-invariant phase metric (``Mem/Uop``),
* ``upc_core`` together with the platform timing model yields the observed,
  frequency-dependent UPC of Section 4,
* ``uops_per_instruction`` relates the micro-op counter that paces the PMI
  to the architectural instruction count used for BIPS.

Segments are deliberately coarse (millions of micro-ops); the machine model
executes them analytically rather than instruction by instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Maximum micro-ops the core can retire per cycle (issue width proxy).
MAX_CORE_UPC = 3.0


@dataclass(frozen=True)
class SegmentSpec:
    """A run of micro-ops with homogeneous execution behaviour.

    Attributes:
        uops: Number of micro-ops retired in this segment (> 0).
        mem_per_uop: Memory bus transactions issued per retired micro-op;
            this is the paper's ``Mem/Uop`` phase metric and is a property
            of the program, independent of frequency.
        upc_core: Micro-ops per cycle the core sustains on this segment
            when no memory stalls occur (0 < upc_core <= MAX_CORE_UPC).
        uops_per_instruction: Ratio of retired micro-ops to retired
            architectural instructions (>= 1 on x86 decompositions; the
            paper observes values near 1).
        mem_overlap: Fraction of each memory transaction's latency hidden
            under concurrent execution (memory-level parallelism), in
            ``[0, 1)``.  High-ILP streaming code overlaps much of its
            memory traffic; pointer chasing exposes nearly all of it.
    """

    uops: int
    mem_per_uop: float
    upc_core: float
    uops_per_instruction: float = 1.0
    mem_overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.uops <= 0:
            raise ConfigurationError(f"segment uops must be > 0, got {self.uops}")
        if self.mem_per_uop < 0:
            raise ConfigurationError(
                f"mem_per_uop must be >= 0, got {self.mem_per_uop}"
            )
        if not 0 < self.upc_core <= MAX_CORE_UPC:
            raise ConfigurationError(
                f"upc_core must be in (0, {MAX_CORE_UPC}], got {self.upc_core}"
            )
        if self.uops_per_instruction < 1.0:
            raise ConfigurationError(
                "uops_per_instruction must be >= 1, got "
                f"{self.uops_per_instruction}"
            )
        if not 0.0 <= self.mem_overlap < 1.0:
            raise ConfigurationError(
                f"mem_overlap must be in [0, 1), got {self.mem_overlap}"
            )

    @property
    def instructions(self) -> float:
        """Architectural instructions retired by this segment."""
        return self.uops / self.uops_per_instruction

    @property
    def memory_transactions(self) -> float:
        """Memory bus transactions issued by this segment."""
        return self.uops * self.mem_per_uop

    def split(self, first_uops: int) -> Tuple["SegmentSpec", "SegmentSpec"]:
        """Split this segment into two with identical rates.

        Used by the machine model when a performance-counter overflow
        boundary (the PMI granularity) falls inside a segment.

        Args:
            first_uops: Micro-ops assigned to the first part; must satisfy
                ``0 < first_uops < self.uops``.

        Returns:
            A ``(head, tail)`` pair whose uop counts sum to ``self.uops``.
        """
        if not 0 < first_uops < self.uops:
            raise ConfigurationError(
                f"cannot split a {self.uops}-uop segment at {first_uops}"
            )
        head = replace(self, uops=first_uops)
        tail = replace(self, uops=self.uops - first_uops)
        return head, tail


class WorkloadTrace:
    """An ordered, finite sequence of segments with a display name.

    Traces are immutable once constructed and support iteration, indexing
    and aggregate queries used by the analysis layer.
    """

    def __init__(self, name: str, segments: Iterable[SegmentSpec]) -> None:
        self._name = name
        self._segments: Tuple[SegmentSpec, ...] = tuple(segments)
        if not self._segments:
            raise ConfigurationError(f"trace {name!r} has no segments")

    @property
    def name(self) -> str:
        """Human-readable workload name (e.g. ``applu_in``)."""
        return self._name

    @property
    def segments(self) -> Tuple[SegmentSpec, ...]:
        """The trace contents in execution order."""
        return self._segments

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[SegmentSpec]:
        return iter(self._segments)

    def __getitem__(self, index: int) -> SegmentSpec:
        return self._segments[index]

    @property
    def total_uops(self) -> int:
        """Total micro-ops retired across the whole trace."""
        return sum(segment.uops for segment in self._segments)

    @property
    def total_instructions(self) -> float:
        """Total architectural instructions across the whole trace."""
        return sum(segment.instructions for segment in self._segments)

    def mean_mem_per_uop(self) -> float:
        """Uop-weighted average ``Mem/Uop`` over the trace.

        This is the x-axis of the paper's Figure 3 ("power savings
        potential").
        """
        transactions = sum(s.memory_transactions for s in self._segments)
        return transactions / self.total_uops

    def mem_per_uop_series(self) -> List[float]:
        """Per-segment ``Mem/Uop`` values in execution order."""
        return [segment.mem_per_uop for segment in self._segments]

    def __repr__(self) -> str:
        return (
            f"WorkloadTrace(name={self._name!r}, segments={len(self)}, "
            f"uops={self.total_uops})"
        )


def uniform_trace(
    name: str,
    levels: Sequence[Tuple[float, float]],
    uops_per_segment: int,
    uops_per_instruction: float = 1.0,
) -> WorkloadTrace:
    """Build a trace from ``(mem_per_uop, upc_core)`` pairs.

    Convenience constructor used heavily by tests and the synthetic
    benchmark generators: every segment gets the same uop count.

    Args:
        name: Trace name.
        levels: One ``(mem_per_uop, upc_core)`` pair per segment.
        uops_per_segment: Micro-ops in every segment.
        uops_per_instruction: Shared uop decomposition ratio.
    """
    segments = [
        SegmentSpec(
            uops=uops_per_segment,
            mem_per_uop=mem,
            upc_core=upc,
            uops_per_instruction=uops_per_instruction,
        )
        for mem, upc in levels
    ]
    return WorkloadTrace(name, segments)
