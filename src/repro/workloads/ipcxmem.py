"""The IPCxMEM microbenchmark suite (paper Section 4, Figure 6).

The paper builds "a suite of configurable applications that can pinpoint
specific (UPC, Mem/Uop) coordinates" of the two-dimensional behaviour
space, then runs every configuration at all six frequencies to establish
which metrics are DVFS-invariant.

Here a suite configuration is *solved*: given a target observed UPC and a
target ``Mem/Uop`` at a reference operating point, we compute the
``(upc_core, mem_overlap)`` pair that produces exactly that coordinate
under the platform timing model.  The solver prefers zero overlap (fully
exposed memory latency) and only introduces memory-level parallelism when
the coordinate is otherwise unreachable — the analogue of the real suite
interleaving independent loads to raise achievable UPC at a given memory
intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

import repro.cpu.timing as _timing_module
from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.errors import ConfigurationError
from repro.workloads.segments import MAX_CORE_UPC, SegmentSpec, WorkloadTrace

if TYPE_CHECKING:  # resolved lazily: cpu.timing itself imports workloads
    from repro.cpu.timing import TimingModel

#: The most memory latency a configuration can hide behind memory-level
#: parallelism.  Bounds the reachable region of the behaviour space the
#: way limited MSHRs/bus pipelining bound it on real hardware, producing
#: the Figure 6 boundary.
MAX_MEM_OVERLAP = 0.75

#: Target UPC values of the paper's exploration grid.
PAPER_GRID_UPC: Tuple[float, ...] = (
    0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9,
)

#: Target Mem/Uop values of the paper's exploration grid.
PAPER_GRID_MEM: Tuple[float, ...] = (
    0.0000, 0.0025, 0.0075, 0.0125, 0.0175, 0.0225,
    0.0275, 0.0325, 0.0375, 0.0425, 0.0475,
)


@dataclass(frozen=True)
class IPCxMEMConfig:
    """One solved suite configuration.

    Attributes:
        target_upc: Observed UPC this configuration hits at the reference
            operating point.
        target_mem_per_uop: ``Mem/Uop`` of the configuration (frequency
            independent by construction).
        segment: A workload segment realising the coordinate.
    """

    target_upc: float
    target_mem_per_uop: float
    segment: SegmentSpec

    @property
    def label(self) -> str:
        """Display label matching the paper's legend style."""
        return (
            f"UPC={self.target_upc:.1f}, "
            f"Mem/Uop={self.target_mem_per_uop:.4f}"
        )

    def trace(self, n_segments: int = 1) -> "WorkloadTrace":
        """A runnable trace of ``n_segments`` copies of this segment.

        Convenience for executing a grid configuration on the machine
        (Figure 7 runs each configuration at every frequency).
        """
        if n_segments <= 0:
            raise ConfigurationError(
                f"n_segments must be > 0, got {n_segments}"
            )
        return WorkloadTrace(self.label, [self.segment] * n_segments)


def solve_configuration(
    target_upc: float,
    target_mem_per_uop: float,
    timing: Optional[TimingModel] = None,
    reference: Optional[OperatingPoint] = None,
    uops: int = 100_000_000,
) -> IPCxMEMConfig:
    """Solve for a segment hitting ``(target_upc, target_mem_per_uop)``.

    The observed UPC at the reference point satisfies::

        1 / upc_obs = 1 / upc_core + mem_per_uop * L_exposed * f_ref

    with ``L_exposed = latency * (1 - overlap)``.  Zero overlap is tried
    first; if the required ``upc_core`` would exceed the issue width,
    overlap is raised exactly enough to make the coordinate feasible at
    maximum ``upc_core``.

    Raises:
        ConfigurationError: If the coordinate is unreachable even with
            full overlap (it lies above the UPC ceiling).
    """
    timing = timing if timing is not None else _timing_module.TimingModel()
    reference = (
        reference if reference is not None else SpeedStepTable().fastest
    )
    if target_upc <= 0 or target_upc > MAX_CORE_UPC:
        raise ConfigurationError(
            f"target UPC must be in (0, {MAX_CORE_UPC}], got {target_upc}"
        )
    if target_mem_per_uop < 0:
        raise ConfigurationError(
            f"target Mem/Uop must be >= 0, got {target_mem_per_uop}"
        )

    cycles_per_uop = 1.0 / target_upc
    memory_cycles = (
        target_mem_per_uop
        * timing.exposed_latency_ns
        * reference.frequency_ghz
    )
    core_cycles = cycles_per_uop - memory_cycles
    overlap = 0.0
    if core_cycles < 1.0 / MAX_CORE_UPC:
        # Exposed memory time alone exceeds the budget: hide part of it
        # behind memory-level parallelism and run the core flat out.
        core_cycles = 1.0 / MAX_CORE_UPC
        available = cycles_per_uop - core_cycles
        if memory_cycles <= 0 or available < 0:
            raise ConfigurationError(
                f"coordinate (UPC={target_upc}, Mem/Uop="
                f"{target_mem_per_uop}) is unreachable"
            )
        overlap = 1.0 - available / memory_cycles
        if overlap > MAX_MEM_OVERLAP:
            raise ConfigurationError(
                f"coordinate (UPC={target_upc}, Mem/Uop="
                f"{target_mem_per_uop}) lies above the reachable boundary "
                f"(would need overlap {overlap:.2f} > {MAX_MEM_OVERLAP})"
            )
        overlap = max(overlap, 0.0)
    segment = SegmentSpec(
        uops=uops,
        mem_per_uop=target_mem_per_uop,
        upc_core=1.0 / core_cycles,
        mem_overlap=overlap,
    )
    return IPCxMEMConfig(
        target_upc=target_upc,
        target_mem_per_uop=target_mem_per_uop,
        segment=segment,
    )


def ipcxmem_grid(
    upc_values: Sequence[float] = PAPER_GRID_UPC,
    mem_values: Sequence[float] = PAPER_GRID_MEM,
    timing: Optional[TimingModel] = None,
    reference: Optional[OperatingPoint] = None,
    uops: int = 100_000_000,
) -> List[IPCxMEMConfig]:
    """Solve every feasible grid coordinate (the paper runs ~50).

    Infeasible corners (very high UPC together with very high memory
    intensity, above the Figure 6 boundary) are skipped, exactly as the
    real suite cannot reach them either.
    """
    configs: List[IPCxMEMConfig] = []
    for upc in upc_values:
        for mem in mem_values:
            try:
                configs.append(
                    solve_configuration(upc, mem, timing, reference, uops)
                )
            except ConfigurationError:
                continue
    return configs
