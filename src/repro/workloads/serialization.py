"""Workload trace serialisation.

Traces are seeded and reproducible inside this package, but sharing an
exact workload with a colleague — or archiving the trace behind a
published number — calls for a portable representation.  This module
round-trips :class:`~repro.workloads.segments.WorkloadTrace` through a
compact JSON document with a versioned schema.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec, WorkloadTrace

#: Schema version written into every document.
SCHEMA_VERSION = 1

#: Per-segment field order in the compact rows.
_FIELDS = (
    "uops",
    "mem_per_uop",
    "upc_core",
    "uops_per_instruction",
    "mem_overlap",
)


def trace_to_dict(trace: WorkloadTrace) -> Dict[str, Any]:
    """Represent a trace as a JSON-ready dictionary.

    Segments are stored as compact positional rows (see ``_FIELDS``) to
    keep hundred-interval traces readable and small.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "name": trace.name,
        "fields": list(_FIELDS),
        "segments": [
            [
                segment.uops,
                segment.mem_per_uop,
                segment.upc_core,
                segment.uops_per_instruction,
                segment.mem_overlap,
            ]
            for segment in trace
        ],
    }


def trace_from_dict(document: Dict[str, Any]) -> WorkloadTrace:
    """Rebuild a trace from :func:`trace_to_dict`'s representation.

    Raises:
        ConfigurationError: On schema mismatches or malformed rows.
    """
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported trace schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    fields = document.get("fields")
    if fields != list(_FIELDS):
        raise ConfigurationError(
            f"unexpected field layout {fields!r}; expected {list(_FIELDS)}"
        )
    name = document.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"invalid trace name {name!r}")
    rows = document.get("segments")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError("trace document has no segments")
    segments = []
    for row in rows:
        if len(row) != len(_FIELDS):
            raise ConfigurationError(
                f"segment row {row!r} has {len(row)} fields, expected "
                f"{len(_FIELDS)}"
            )
        uops, mem, upc, upi, overlap = row
        segments.append(
            SegmentSpec(
                uops=int(uops),
                mem_per_uop=float(mem),
                upc_core=float(upc),
                uops_per_instruction=float(upi),
                mem_overlap=float(overlap),
            )
        )
    return WorkloadTrace(name, segments)


def trace_to_json(trace: WorkloadTrace) -> str:
    """Serialise a trace to a JSON string."""
    return json.dumps(trace_to_dict(trace))


def trace_from_json(text: str) -> WorkloadTrace:
    """Parse a trace from :func:`trace_to_json` output.

    Raises:
        ConfigurationError: If the text is not valid JSON or does not
            match the schema.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid trace JSON: {error}") from error
    if not isinstance(document, dict):
        raise ConfigurationError("trace JSON must be an object")
    return trace_from_dict(document)
