"""Workload substrate: segments, pattern generators, synthetic SPEC2000
benchmarks, the IPCxMEM suite, and quadrant categorisation."""

from repro.workloads.generators import (
    BehaviorPattern,
    BurstPattern,
    CyclePattern,
    FlatPattern,
    MarkovPattern,
    MotifElement,
    MotifPattern,
    RampPattern,
)
from repro.workloads.ipcxmem import (
    IPCxMEMConfig,
    ipcxmem_grid,
    solve_configuration,
)
from repro.workloads.multiprogram import round_robin
from repro.workloads.quadrants import (
    BenchmarkPlacement,
    Quadrant,
    QuadrantThresholds,
    categorize,
    place_all,
    place_benchmark,
)
from repro.workloads.segments import SegmentSpec, WorkloadTrace, uniform_trace
from repro.workloads.serialization import (
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.workloads.spec2000 import (
    FIG4_BENCHMARK_ORDER,
    FIG5_BENCHMARKS,
    FIG12_BENCHMARKS,
    FIG13_BENCHMARKS,
    SPEC2000_BENCHMARKS,
    VARIABLE_BENCHMARKS,
    BenchmarkSpec,
    benchmark,
    benchmark_names,
)

__all__ = [
    "SegmentSpec",
    "WorkloadTrace",
    "uniform_trace",
    "BehaviorPattern",
    "FlatPattern",
    "MotifElement",
    "MotifPattern",
    "CyclePattern",
    "BurstPattern",
    "MarkovPattern",
    "RampPattern",
    "BenchmarkSpec",
    "SPEC2000_BENCHMARKS",
    "FIG4_BENCHMARK_ORDER",
    "FIG5_BENCHMARKS",
    "FIG12_BENCHMARKS",
    "FIG13_BENCHMARKS",
    "VARIABLE_BENCHMARKS",
    "benchmark",
    "benchmark_names",
    "round_robin",
    "trace_to_dict",
    "trace_from_dict",
    "trace_to_json",
    "trace_from_json",
    "IPCxMEMConfig",
    "solve_configuration",
    "ipcxmem_grid",
    "Quadrant",
    "QuadrantThresholds",
    "BenchmarkPlacement",
    "categorize",
    "place_benchmark",
    "place_all",
]
