"""Multiprogrammed workloads: OS-style time slicing (extension).

The paper deploys its predictor system-wide: the PMI sees whatever the
processor runs, including context switches between applications.  This
module builds that scenario: a round-robin scheduler interleaves several
benchmark traces at a fixed uop quantum, producing one combined trace in
which phase changes come both from *within* applications and from the
*switches between* them.

With a fixed quantum the interleaving is deterministic, so switch-induced
phase patterns are themselves learnable history patterns — exactly the
kind of structure the GPHT exploits and statistical predictors cannot.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec, WorkloadTrace


class _TraceCursor:
    """Consumes a trace's segments a given number of uops at a time."""

    def __init__(self, trace: WorkloadTrace) -> None:
        self._segments = list(trace.segments)
        self._index = 0
        self._remainder: Optional[SegmentSpec] = None

    @property
    def exhausted(self) -> bool:
        return self._remainder is None and self._index >= len(self._segments)

    def take(self, budget_uops: int) -> List[SegmentSpec]:
        """Remove up to ``budget_uops`` of work from the trace."""
        taken: List[SegmentSpec] = []
        remaining = budget_uops
        while remaining > 0 and not self.exhausted:
            segment = self._next_segment()
            if segment.uops <= remaining:
                taken.append(segment)
                remaining -= segment.uops
            else:
                head, tail = segment.split(remaining)
                taken.append(head)
                self._remainder = tail
                remaining = 0
        return taken

    def _next_segment(self) -> SegmentSpec:
        if self._remainder is not None:
            segment = self._remainder
            self._remainder = None
            return segment
        segment = self._segments[self._index]
        self._index += 1
        return segment


def round_robin(
    traces: Sequence[WorkloadTrace],
    quantum_uops: int,
    name: Optional[str] = None,
) -> WorkloadTrace:
    """Interleave traces under a round-robin scheduler.

    Each application runs for ``quantum_uops`` retired micro-ops, then
    the next runnable one is switched in; applications that finish drop
    out of the rotation.  All work from every trace is preserved.

    Args:
        traces: The applications to co-schedule (at least one).
        quantum_uops: Scheduler timeslice in retired micro-ops.
        name: Combined trace name (default: ``rr(<names>)``).

    Returns:
        The combined trace, in scheduled execution order.
    """
    if not traces:
        raise ConfigurationError("round_robin needs at least one trace")
    if quantum_uops <= 0:
        raise ConfigurationError(
            f"quantum must be > 0 uops, got {quantum_uops}"
        )
    cursors = [_TraceCursor(trace) for trace in traces]
    scheduled: List[SegmentSpec] = []
    while any(not cursor.exhausted for cursor in cursors):
        for cursor in cursors:
            if cursor.exhausted:
                continue
            scheduled.extend(cursor.take(quantum_uops))
    combined_name = (
        name
        if name is not None
        else "rr(" + "+".join(trace.name for trace in traces) + ")"
    )
    return WorkloadTrace(combined_name, scheduled)
