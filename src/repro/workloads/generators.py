"""Composable behaviour-pattern generators for synthetic workloads.

SPEC2000 binaries are not available offline, so the reproduction
synthesises per-benchmark behaviour *statistics*: each benchmark is a
:class:`BehaviorPattern` producing a per-interval series of
``(mem_per_uop, upc_core)`` pairs whose variability, level structure and
repetitiveness match what the paper reports for that benchmark
(Figures 2-4).  Predictor quality depends only on these sequence
statistics, which is what makes the substitution faithful.

Patterns are deterministic given a seeded ``numpy`` generator, so every
experiment in the repository is exactly reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Clipping bounds keeping generated values physically meaningful.
_MEM_BOUNDS = (0.0, 0.2)
_UPC_BOUNDS = (0.05, 2.0)


@dataclass(frozen=True)
class BehaviorSample:
    """One sampling interval's behaviour: the two generator outputs."""

    mem_per_uop: float
    upc_core: float


class BehaviorPattern(ABC):
    """A generator of per-interval ``(mem_per_uop, upc_core)`` series."""

    @abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Produce ``n`` intervals of behaviour.

        Args:
            n: Number of intervals to generate (> 0).
            rng: Seeded random generator; identical seeds give identical
                series.

        Returns:
            Array of shape ``(n, 2)``: column 0 is ``mem_per_uop``,
            column 1 is ``upc_core``.
        """

    @staticmethod
    def _clip(series: np.ndarray) -> np.ndarray:
        """Clip a raw ``(n, 2)`` series into physical bounds."""
        series[:, 0] = np.clip(series[:, 0], *_MEM_BOUNDS)
        series[:, 1] = np.clip(series[:, 1], *_UPC_BOUNDS)
        return series


def _check_length(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"pattern length must be > 0, got {n}")


class FlatPattern(BehaviorPattern):
    """Constant behaviour with optional Gaussian jitter.

    Models the paper's Q1/Q2 benchmarks: "almost completely flat
    execution behaviour, where the application rarely changes its
    execution properties".

    Args:
        mem_per_uop: Mean memory transactions per uop.
        upc_core: Mean core-limited UPC.
        mem_sigma: Standard deviation of per-interval ``Mem/Uop`` noise.
        upc_sigma: Standard deviation of per-interval UPC noise.
    """

    def __init__(
        self,
        mem_per_uop: float,
        upc_core: float,
        mem_sigma: float = 0.0,
        upc_sigma: float = 0.0,
    ) -> None:
        if mem_per_uop < 0 or upc_core <= 0:
            raise ConfigurationError(
                f"invalid flat levels mem={mem_per_uop}, upc={upc_core}"
            )
        if mem_sigma < 0 or upc_sigma < 0:
            raise ConfigurationError("noise sigmas must be >= 0")
        self._mem = mem_per_uop
        self._upc = upc_core
        self._mem_sigma = mem_sigma
        self._upc_sigma = upc_sigma

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_length(n)
        series = np.empty((n, 2))
        series[:, 0] = self._mem + (
            rng.normal(0.0, self._mem_sigma, n) if self._mem_sigma else 0.0
        )
        series[:, 1] = self._upc + (
            rng.normal(0.0, self._upc_sigma, n) if self._upc_sigma else 0.0
        )
        return self._clip(series)


@dataclass(frozen=True)
class MotifElement:
    """One step of a repeating motif.

    Attributes:
        mem_per_uop: ``Mem/Uop`` level during this step.
        upc_core: Core UPC during this step.
        duration: How many sampling intervals the step lasts (>= 1).
    """

    mem_per_uop: float
    upc_core: float
    duration: int = 1

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ConfigurationError(
                f"motif element duration must be >= 1, got {self.duration}"
            )


class MotifPattern(BehaviorPattern):
    """A repeating multi-level motif — the loop-nest signature of the
    paper's variable benchmarks (applu's "distinctive repetitive phases").

    Args:
        elements: The motif steps, repeated cyclically forever.
        mem_sigma: Gaussian noise added to every interval's ``Mem/Uop``.
        duration_jitter: Probability that an element instance is stretched
            or shrunk by one interval (never below one).  Jitter models
            the real-system timing variability of Section 5.1 and keeps
            pattern-based predictors honest.
    """

    def __init__(
        self,
        elements: Sequence[MotifElement],
        mem_sigma: float = 0.0,
        duration_jitter: float = 0.0,
    ) -> None:
        if not elements:
            raise ConfigurationError("a motif needs at least one element")
        if not 0.0 <= duration_jitter <= 1.0:
            raise ConfigurationError(
                f"duration_jitter must be in [0, 1], got {duration_jitter}"
            )
        if mem_sigma < 0:
            raise ConfigurationError("mem_sigma must be >= 0")
        self._elements = tuple(elements)
        self._mem_sigma = mem_sigma
        self._jitter = duration_jitter

    @property
    def period(self) -> int:
        """Nominal motif period in intervals (without jitter)."""
        return sum(e.duration for e in self._elements)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_length(n)
        mems: List[float] = []
        upcs: List[float] = []
        index = 0
        while len(mems) < n:
            element = self._elements[index % len(self._elements)]
            duration = element.duration
            if self._jitter and rng.random() < self._jitter:
                duration = max(1, duration + rng.choice((-1, 1)))
            mems.extend([element.mem_per_uop] * duration)
            upcs.extend([element.upc_core] * duration)
            index += 1
        series = np.column_stack((mems[:n], upcs[:n]))
        if self._mem_sigma:
            series[:, 0] += rng.normal(0.0, self._mem_sigma, n)
        return self._clip(series)


class CyclePattern(BehaviorPattern):
    """Cycles through sub-patterns in fixed-length blocks.

    Models program-level structure above the loop level: a benchmark
    alternating between several distinct loop nests.  Used to enlarge the
    set of distinct history patterns a benchmark exhibits — the knob
    behind the PHT-capacity sensitivity of the paper's Figure 5.

    Args:
        blocks: ``(pattern, block_length)`` pairs visited round-robin.
    """

    def __init__(self, blocks: Sequence[Tuple[BehaviorPattern, int]]) -> None:
        if not blocks:
            raise ConfigurationError("a cycle needs at least one block")
        for _, length in blocks:
            if length < 1:
                raise ConfigurationError(
                    f"block length must be >= 1, got {length}"
                )
        self._blocks = tuple(blocks)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_length(n)
        pieces: List[np.ndarray] = []
        produced = 0
        index = 0
        while produced < n:
            pattern, length = self._blocks[index % len(self._blocks)]
            take = min(length, n - produced)
            pieces.append(pattern.generate(take, rng))
            produced += take
            index += 1
        return np.vstack(pieces)


class BurstPattern(BehaviorPattern):
    """A base behaviour interrupted by short random bursts.

    Models benchmarks that are mostly flat but occasionally shift
    behaviour for a few intervals (gzip's buffer refills, mcf's
    non-pointer-chasing spells).  Burst starts are random, so no
    predictor can anticipate them — but history-based predictors can
    learn the burst's *shape* once it starts.

    Args:
        base: Steady-state ``(mem_per_uop, upc_core)``.
        burst: Burst ``(mem_per_uop, upc_core)``.
        burst_probability: Per-interval probability a burst begins.
        burst_length: Burst duration in intervals.
        mem_sigma: Gaussian ``Mem/Uop`` noise on every interval.
    """

    def __init__(
        self,
        base: Tuple[float, float],
        burst: Tuple[float, float],
        burst_probability: float,
        burst_length: int = 2,
        mem_sigma: float = 0.0,
    ) -> None:
        if not 0.0 <= burst_probability <= 1.0:
            raise ConfigurationError(
                f"burst probability must be in [0, 1], got {burst_probability}"
            )
        if burst_length < 1:
            raise ConfigurationError(
                f"burst length must be >= 1, got {burst_length}"
            )
        self._base = base
        self._burst = burst
        self._probability = burst_probability
        self._length = burst_length
        self._mem_sigma = mem_sigma

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_length(n)
        series = np.empty((n, 2))
        series[:, 0] = self._base[0]
        series[:, 1] = self._base[1]
        i = 0
        while i < n:
            if rng.random() < self._probability:
                end = min(i + self._length, n)
                series[i:end, 0] = self._burst[0]
                series[i:end, 1] = self._burst[1]
                i = end
            else:
                i += 1
        if self._mem_sigma:
            series[:, 0] += rng.normal(0.0, self._mem_sigma, n)
        return self._clip(series)


class MarkovPattern(BehaviorPattern):
    """Behaviour levels visited according to a Markov chain.

    The stress case for pattern-based prediction: transitions carry only
    one step of memory, so the GPHT's deep history buys nothing beyond
    the chain's own predictability.  Used in robustness studies rather
    than in the SPEC registry.

    Args:
        states: The ``(mem_per_uop, upc_core)`` level of each state.
        transition_matrix: Row-stochastic matrix of state transition
            probabilities.
    """

    def __init__(
        self,
        states: Sequence[Tuple[float, float]],
        transition_matrix: Sequence[Sequence[float]],
    ) -> None:
        if not states:
            raise ConfigurationError("a Markov pattern needs states")
        matrix = np.asarray(transition_matrix, dtype=float)
        if matrix.shape != (len(states), len(states)):
            raise ConfigurationError(
                f"transition matrix shape {matrix.shape} does not match "
                f"{len(states)} states"
            )
        if np.any(matrix < 0) or not np.allclose(matrix.sum(axis=1), 1.0):
            raise ConfigurationError("rows must be probability distributions")
        self._states = tuple(states)
        self._matrix = matrix

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_length(n)
        series = np.empty((n, 2))
        state = 0
        for i in range(n):
            series[i] = self._states[state]
            state = int(rng.choice(len(self._states), p=self._matrix[state]))
        return self._clip(series)


class RampPattern(BehaviorPattern):
    """Behaviour drifting linearly between two levels, then repeating.

    Models gradual working-set growth (e.g. an in-place sort becoming
    cache-resident).  Exercises phase-boundary crossings that are slow
    rather than abrupt.

    Args:
        start: ``(mem_per_uop, upc_core)`` at the ramp start.
        end: ``(mem_per_uop, upc_core)`` at the ramp end.
        length: Intervals per ramp before restarting.
    """

    def __init__(
        self,
        start: Tuple[float, float],
        end: Tuple[float, float],
        length: int,
    ) -> None:
        if length < 2:
            raise ConfigurationError(f"ramp length must be >= 2, got {length}")
        self._start = np.asarray(start, dtype=float)
        self._end = np.asarray(end, dtype=float)
        self._length = length

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_length(n)
        fractions = (np.arange(n) % self._length) / (self._length - 1)
        series = self._start + np.outer(fractions, self._end - self._start)
        return self._clip(series)
