"""Synthetic SPEC2000 benchmark registry.

The paper evaluates 33 SPEC2000 benchmark/input pairs on real hardware.
Binaries and reference inputs are not available offline, so each pair is
synthesised as a :class:`BenchmarkSpec`: a seeded behaviour pattern whose
*sequence statistics* — mean ``Mem/Uop`` (power-savings potential),
sample-to-sample variability, and repetitive pattern structure — are set
from what the paper reports per benchmark:

* quadrant membership in Figure 3 (variability vs. savings potential),
* the predictability ordering of Figure 4 (the x-axis sorts benchmarks
  by decreasing last-value accuracy; the rightmost six are the variable
  Q3/Q4 applications),
* the qualitative trace shapes of Figures 2 and 10 (applu's rapid
  repetitive multi-level phases).

Every spec is deterministic: the seed is derived from the benchmark name,
so traces are bit-identical across runs and machines.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    BehaviorPattern,
    BurstPattern,
    CyclePattern,
    FlatPattern,
    MotifElement,
    MotifPattern,
)
from repro.workloads.segments import SegmentSpec, WorkloadTrace

#: The paper's PMI sampling granularity, used as the default segment size.
DEFAULT_UOPS_PER_INTERVAL = 100_000_000

#: Default trace length in sampling intervals (tens of billions of
#: instructions at the paper's granularity — long enough for pattern
#: predictors to train and statistics to stabilise).
DEFAULT_TRACE_INTERVALS = 400


@dataclass(frozen=True)
class BenchmarkSpec:
    """One synthetic SPEC2000 benchmark/input pair.

    Attributes:
        name: The paper's benchmark label (e.g. ``applu_in``).
        pattern: Behaviour generator for per-interval
            ``(mem_per_uop, upc_core)`` samples.
        uops_per_instruction: Micro-op decomposition ratio for BIPS.
        mem_overlap: Memory-level parallelism of the benchmark's
            transactions (see :class:`~repro.workloads.segments.SegmentSpec`).
        description: One-line provenance note.
    """

    name: str
    pattern: BehaviorPattern
    uops_per_instruction: float = 1.15
    mem_overlap: float = 0.0
    description: str = ""

    @property
    def seed(self) -> int:
        """Deterministic per-benchmark RNG seed derived from the name."""
        return zlib.crc32(self.name.encode("utf-8"))

    def behavior(
        self, n_intervals: int, seed: Optional[int] = None
    ) -> np.ndarray:
        """Generate ``n_intervals`` of raw behaviour.

        Returns:
            Array of shape ``(n_intervals, 2)``: columns are
            ``mem_per_uop`` and ``upc_core``.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        return self.pattern.generate(n_intervals, rng)

    def mem_series(
        self, n_intervals: int, seed: Optional[int] = None
    ) -> np.ndarray:
        """The per-interval ``Mem/Uop`` series (phase metric input)."""
        return self.behavior(n_intervals, seed)[:, 0]

    def trace(
        self,
        n_intervals: int = DEFAULT_TRACE_INTERVALS,
        uops_per_interval: int = DEFAULT_UOPS_PER_INTERVAL,
        seed: Optional[int] = None,
    ) -> WorkloadTrace:
        """Materialise a workload trace of ``n_intervals`` segments."""
        if n_intervals <= 0:
            raise ConfigurationError(
                f"n_intervals must be > 0, got {n_intervals}"
            )
        behavior = self.behavior(n_intervals, seed)
        segments = [
            SegmentSpec(
                uops=uops_per_interval,
                mem_per_uop=float(mem),
                upc_core=float(upc),
                uops_per_instruction=self.uops_per_instruction,
                mem_overlap=self.mem_overlap,
            )
            for mem, upc in behavior
        ]
        return WorkloadTrace(self.name, segments)


def _motif(*steps: Tuple[float, float, int]) -> Tuple[MotifElement, ...]:
    """Shorthand: build motif elements from (mem, upc, duration) tuples."""
    return tuple(
        MotifElement(mem_per_uop=m, upc_core=u, duration=d) for m, u, d in steps
    )


def _cycle(
    variants: Sequence[Tuple[Tuple[float, float, int], ...]],
    block: int,
    jitter: float,
    sigma: float = 0.0003,
) -> CyclePattern:
    """Build a cycle of distinct motif variants for variable benchmarks.

    Each variant is a different arrangement of the benchmark's phase
    levels (a different loop nest of the same program).  Cycling through
    several variants multiplies the number of distinct *phase-sequence*
    patterns the benchmark exhibits — the property behind the
    PHT-capacity sensitivity in the paper's Figure 5: a 64-entry PHT can
    no longer hold the full working set of history patterns while 128
    entries can.
    """
    blocks = []
    for steps in variants:
        pattern = MotifPattern(
            _motif(*steps), mem_sigma=sigma, duration_jitter=jitter
        )
        blocks.append((pattern, block))
    return CyclePattern(blocks)


# ---------------------------------------------------------------------------
# Q1 — stable, CPU-bound: flat behaviour, negligible savings potential.
# ---------------------------------------------------------------------------

_Q1_FLAT: Tuple[Tuple[str, float, float, float, float], ...] = (
    # (name, mem_per_uop, upc_core, mem_sigma, uops_per_instruction)
    ("crafty_in", 0.0004, 1.55, 0.0002, 1.25),
    ("eon_cook", 0.0002, 1.70, 0.0001, 1.30),
    ("eon_kajiya", 0.00025, 1.70, 0.0001, 1.30),
    ("eon_rushmeier", 0.0003, 1.70, 0.0001, 1.30),
    ("mesa_ref", 0.0012, 1.50, 0.0002, 1.20),
    ("sixtrack_in", 0.0008, 1.80, 0.0002, 1.10),
    ("twolf_ref", 0.0035, 1.10, 0.0005, 1.20),
)

_VORTEX: Tuple[Tuple[str, float, float], ...] = (
    # (name, base mem_per_uop, burst probability)
    ("vortex_lendian1", 0.0028, 0.004),
    ("vortex_lendian2", 0.0025, 0.002),
    ("vortex_lendian3", 0.0030, 0.006),
)

_GZIP: Tuple[Tuple[str, float, float, float], ...] = (
    # (name, base mem_per_uop, burst mem_per_uop, burst probability)
    ("gzip_program", 0.0025, 0.0080, 0.010),
    ("gzip_graphic", 0.0040, 0.0090, 0.012),
    ("gzip_random", 0.0020, 0.0070, 0.013),
    ("gzip_source", 0.0030, 0.0080, 0.015),
    ("gzip_log", 0.0035, 0.0090, 0.018),
)


def _build_registry() -> Dict[str, BenchmarkSpec]:
    specs: List[BenchmarkSpec] = []

    for name, mem, upc, sigma, upi in _Q1_FLAT:
        specs.append(
            BenchmarkSpec(
                name=name,
                pattern=FlatPattern(mem, upc, mem_sigma=sigma),
                uops_per_instruction=upi,
                description="Q1: stable, CPU-bound",
            )
        )

    for name, mem, probability in _VORTEX:
        specs.append(
            BenchmarkSpec(
                name=name,
                pattern=BurstPattern(
                    base=(mem, 1.30),
                    burst=(mem + 0.004, 1.15),
                    burst_probability=probability,
                    burst_length=2,
                    mem_sigma=0.0003,
                ),
                uops_per_instruction=1.25,
                description="Q1: stable with rare working-set steps",
            )
        )

    for name, base_mem, burst_mem, probability in _GZIP:
        specs.append(
            BenchmarkSpec(
                name=name,
                pattern=BurstPattern(
                    base=(base_mem, 1.50),
                    burst=(burst_mem, 1.30),
                    burst_probability=probability,
                    burst_length=2,
                    mem_sigma=0.0003,
                ),
                uops_per_instruction=1.20,
                description="Q1: stable with buffer-refill bursts",
            )
        )

    # -- Q1, moderate variability (the mid-pack of Figure 4) ---------------
    specs.extend(
        [
            BenchmarkSpec(
                name="gcc_200",
                pattern=MotifPattern(
                    _motif((0.0040, 1.40, 16), (0.0085, 1.20, 3)),
                    mem_sigma=0.0003,
                    duration_jitter=0.10,
                ),
                uops_per_instruction=1.30,
                description="Q1: long optimisation passes, short spills",
            ),
            BenchmarkSpec(
                name="gcc_scilab",
                pattern=MotifPattern(
                    _motif((0.0042, 1.40, 14), (0.0085, 1.20, 3)),
                    mem_sigma=0.0003,
                    duration_jitter=0.10,
                ),
                uops_per_instruction=1.30,
                description="Q1: long optimisation passes, short spills",
            ),
            BenchmarkSpec(
                name="wupwise_ref",
                pattern=MotifPattern(
                    _motif((0.0020, 1.70, 18), (0.0080, 1.50, 8)),
                    mem_sigma=0.0003,
                    duration_jitter=0.08,
                ),
                uops_per_instruction=1.10,
                description="Q1: slow alternation of BLAS-like kernels",
            ),
            BenchmarkSpec(
                name="gap_ref",
                pattern=BurstPattern(
                    base=(0.0060, 1.40),
                    burst=(0.0130, 1.20),
                    burst_probability=0.05,
                    burst_length=3,
                    mem_sigma=0.0004,
                ),
                uops_per_instruction=1.25,
                description="Q1: flat with garbage-collection bursts",
            ),
            BenchmarkSpec(
                name="gcc_integrate",
                pattern=MotifPattern(
                    _motif((0.0042, 1.30, 14), (0.0085, 1.20, 3), (0.0125, 1.10, 4)),
                    mem_sigma=0.0003,
                    duration_jitter=0.12,
                ),
                uops_per_instruction=1.30,
                description="Q1: three-level pass structure",
            ),
            BenchmarkSpec(
                name="gcc_expr",
                pattern=MotifPattern(
                    _motif((0.0035, 1.30, 10), (0.0110, 1.10, 2), (0.0022, 1.50, 3)),
                    mem_sigma=0.0003,
                    duration_jitter=0.12,
                ),
                uops_per_instruction=1.30,
                description="Q1: three-level pass structure",
            ),
            BenchmarkSpec(
                name="ammp_in",
                pattern=MotifPattern(
                    _motif((0.0060, 1.10, 10), (0.0115, 1.00, 4)),
                    mem_sigma=0.0004,
                    duration_jitter=0.10,
                ),
                uops_per_instruction=1.15,
                description="Q1: neighbour-list rebuild alternation",
            ),
            BenchmarkSpec(
                name="gcc_166",
                pattern=MotifPattern(
                    _motif(
                        (0.0040, 1.30, 8),
                        (0.0085, 1.20, 3),
                        (0.0065, 1.25, 4),
                        (0.0125, 1.10, 2),
                    ),
                    mem_sigma=0.0003,
                    duration_jitter=0.12,
                ),
                uops_per_instruction=1.30,
                description="Q1: most variable of the gcc inputs",
            ),
            BenchmarkSpec(
                name="parser_ref",
                pattern=MotifPattern(
                    _motif((0.0040, 1.20, 11), (0.0075, 1.10, 2)),
                    mem_sigma=0.0004,
                    duration_jitter=0.10,
                ),
                uops_per_instruction=1.25,
                description="Q1: dictionary-walk hiccups",
            ),
            BenchmarkSpec(
                name="apsi_ref",
                pattern=MotifPattern(
                    _motif((0.0042, 1.40, 10), (0.0085, 1.30, 3), (0.0130, 1.20, 2)),
                    mem_sigma=0.0004,
                    duration_jitter=0.10,
                ),
                uops_per_instruction=1.10,
                description="Q1: layered mesoscale solver sweeps",
            ),
        ]
    )

    # -- Q2 — stable and memory-bound: big savings, trivially predictable --
    specs.extend(
        [
            BenchmarkSpec(
                name="swim_in",
                pattern=FlatPattern(0.0330, 1.90, mem_sigma=0.0004),
                uops_per_instruction=1.05,
                description="Q2: streaming stencil, flat and memory-bound",
            ),
            BenchmarkSpec(
                name="mcf_inp",
                pattern=BurstPattern(
                    base=(0.1080, 1.20),
                    burst=(0.0180, 1.40),
                    burst_probability=0.02,
                    burst_length=2,
                    mem_sigma=0.0015,
                ),
                uops_per_instruction=1.10,
                description="Q2: pointer chasing with rare arithmetic spells",
            ),
        ]
    )

    # -- Q4 — variable, modest savings: the bzip2 family -------------------
    specs.extend(
        [
            BenchmarkSpec(
                name="bzip2_program",
                pattern=_cycle(
                    variants=(
                        (
                            (0.0022, 1.50, 8),
                            (0.0078, 1.30, 2),
                            (0.0128, 1.20, 3),
                            (0.0078, 1.30, 1),
                        ),
                        (
                            (0.0022, 1.50, 6),
                            (0.0128, 1.20, 2),
                            (0.0078, 1.30, 4),
                            (0.0022, 1.50, 2),
                        ),
                        (
                            (0.0022, 1.50, 7),
                            (0.0078, 1.30, 3),
                            (0.0128, 1.20, 2),
                            (0.0022, 1.50, 1),
                            (0.0078, 1.30, 1),
                        ),
                    ),
                    block=42,
                    jitter=0.03,
                ),
                uops_per_instruction=1.20,
                description="Q4: sort/Huffman alternation, mild levels",
            ),
            BenchmarkSpec(
                name="bzip2_source",
                pattern=_cycle(
                    variants=(
                        (
                            (0.0022, 1.50, 6),
                            (0.0078, 1.30, 2),
                            (0.0128, 1.20, 1),
                            (0.0060, 1.40, 3),
                        ),
                        (
                            (0.0022, 1.50, 5),
                            (0.0128, 1.20, 2),
                            (0.0078, 1.30, 2),
                            (0.0022, 1.50, 1),
                            (0.0078, 1.30, 2),
                        ),
                        (
                            (0.0022, 1.50, 7),
                            (0.0078, 1.30, 2),
                            (0.0128, 1.20, 2),
                            (0.0078, 1.30, 1),
                        ),
                    ),
                    block=36,
                    jitter=0.03,
                ),
                uops_per_instruction=1.20,
                description="Q4: faster block turnover than program input",
            ),
            BenchmarkSpec(
                name="bzip2_graphic",
                pattern=_cycle(
                    variants=(
                        (
                            (0.0022, 1.50, 5),
                            (0.0078, 1.30, 1),
                            (0.0128, 1.20, 2),
                            (0.0060, 1.35, 1),
                            (0.0110, 1.25, 2),
                        ),
                        (
                            (0.0022, 1.50, 5),
                            (0.0110, 1.25, 2),
                            (0.0078, 1.30, 2),
                            (0.0128, 1.20, 2),
                            (0.0022, 1.50, 1),
                            (0.0078, 1.30, 1),
                        ),
                        (
                            (0.0022, 1.50, 6),
                            (0.0078, 1.30, 2),
                            (0.0128, 1.20, 2),
                            (0.0078, 1.30, 1),
                        ),
                    ),
                    block=36,
                    jitter=0.03,
                ),
                uops_per_instruction=1.20,
                description="Q4: most variable bzip2 input",
            ),
        ]
    )

    # -- Q3 — variable and memory-bound: the headline applications ---------
    specs.extend(
        [
            BenchmarkSpec(
                name="mgrid_in",
                pattern=_cycle(
                    variants=(
                        (
                            (0.0025, 1.80, 4),
                            (0.0175, 1.60, 3),
                            (0.0260, 1.50, 4),
                            (0.0125, 1.70, 1),
                        ),
                        (
                            (0.0025, 1.80, 4),
                            (0.0125, 1.70, 2),
                            (0.0260, 1.50, 4),
                            (0.0175, 1.60, 2),
                        ),
                        (
                            (0.0025, 1.80, 5),
                            (0.0260, 1.50, 4),
                            (0.0175, 1.60, 2),
                            (0.0125, 1.70, 1),
                        ),
                    ),
                    block=36,
                    jitter=0.03,
                ),
                uops_per_instruction=1.05,
                description="Q3: multigrid V-cycle level sweeps",
            ),
            BenchmarkSpec(
                name="applu_in",
                pattern=_cycle(
                    variants=(
                        (
                            (0.0015, 1.80, 2),
                            (0.0250, 1.30, 2),
                            (0.0125, 1.50, 1),
                            (0.0260, 1.20, 2),
                            (0.0175, 1.40, 1),
                            (0.0025, 1.80, 1),
                        ),
                        (
                            (0.0015, 1.80, 2),
                            (0.0350, 1.20, 2),
                            (0.0125, 1.50, 2),
                            (0.0250, 1.25, 1),
                            (0.0025, 1.80, 2),
                            (0.0175, 1.40, 1),
                        ),
                        (
                            (0.0025, 1.80, 2),
                            (0.0175, 1.40, 2),
                            (0.0250, 1.30, 1),
                            (0.0125, 1.50, 2),
                            (0.0350, 1.20, 2),
                            (0.0015, 1.80, 1),
                        ),
                        (
                            (0.0015, 1.80, 3),
                            (0.0250, 1.30, 2),
                            (0.0175, 1.40, 1),
                            (0.0125, 1.50, 1),
                            (0.0350, 1.20, 2),
                        ),
                    ),
                    block=75,
                    jitter=0.010,
                ),
                uops_per_instruction=1.05,
                description="Q3: the paper's running example — rapid, "
                "distinctive repetitive phases (Figure 2)",
            ),
            BenchmarkSpec(
                name="equake_in",
                pattern=_cycle(
                    variants=(
                        (
                            (0.0025, 1.60, 2),
                            (0.0310, 1.25, 2),
                            (0.0240, 1.30, 2),
                            (0.0025, 1.60, 1),
                            (0.0340, 1.20, 2),
                        ),
                        (
                            (0.0025, 1.60, 1),
                            (0.0340, 1.20, 3),
                            (0.0175, 1.40, 1),
                            (0.0240, 1.30, 2),
                            (0.0025, 1.60, 2),
                        ),
                        (
                            (0.0025, 1.60, 2),
                            (0.0240, 1.30, 2),
                            (0.0340, 1.20, 2),
                            (0.0025, 1.60, 1),
                            (0.0260, 1.30, 1),
                            (0.0125, 1.50, 1),
                        ),
                        (
                            (0.0025, 1.60, 1),
                            (0.0310, 1.25, 2),
                            (0.0125, 1.50, 1),
                            (0.0340, 1.20, 3),
                            (0.0025, 1.60, 1),
                            (0.0240, 1.30, 1),
                        ),
                    ),
                    block=75,
                    jitter=0.010,
                ),
                uops_per_instruction=1.05,
                description="Q3: sparse-solve / element-update alternation; "
                "the paper's best EDP improvement (34%)",
            ),
        ]
    )

    registry = {spec.name: spec for spec in specs}
    if len(registry) != len(specs):
        raise ConfigurationError("duplicate benchmark names in registry")
    return registry


#: All 33 benchmark/input pairs, keyed by the paper's labels.
SPEC2000_BENCHMARKS: Dict[str, BenchmarkSpec] = _build_registry()

#: Figure 4's x-axis order: decreasing last-value prediction accuracy.
FIG4_BENCHMARK_ORDER: Tuple[str, ...] = (
    "crafty_in",
    "eon_cook",
    "eon_kajiya",
    "eon_rushmeier",
    "mesa_ref",
    "vortex_lendian2",
    "sixtrack_in",
    "swim_in",
    "vortex_lendian1",
    "twolf_ref",
    "vortex_lendian3",
    "gzip_program",
    "gzip_graphic",
    "gzip_random",
    "gzip_source",
    "gzip_log",
    "mcf_inp",
    "gcc_200",
    "gcc_scilab",
    "wupwise_ref",
    "gap_ref",
    "gcc_integrate",
    "gcc_expr",
    "ammp_in",
    "gcc_166",
    "parser_ref",
    "apsi_ref",
    "bzip2_program",
    "mgrid_in",
    "bzip2_source",
    "bzip2_graphic",
    "applu_in",
    "equake_in",
)

#: The 18 benchmarks of Figure 5's PHT-size sweep (the harder-to-predict
#: right half of Figure 4, from gzip_log onward).
FIG5_BENCHMARKS: Tuple[str, ...] = FIG4_BENCHMARK_ORDER[15:]

#: The six variable benchmarks (Q3 + Q4) the paper highlights.
VARIABLE_BENCHMARKS: Tuple[str, ...] = (
    "bzip2_program",
    "mgrid_in",
    "bzip2_source",
    "bzip2_graphic",
    "applu_in",
    "equake_in",
)

#: Figure 12's benchmark set: the variable Q3/Q4 applications plus the
#: high-savings Q2 pair.
FIG12_BENCHMARKS: Tuple[str, ...] = (
    "bzip2_program",
    "bzip2_source",
    "bzip2_graphic",
    "mgrid_in",
    "applu_in",
    "equake_in",
    "swim_in",
    "mcf_inp",
)

#: Figure 13's benchmark set: the applications that originally exceeded
#: 5% performance degradation.
FIG13_BENCHMARKS: Tuple[str, ...] = (
    "mcf_inp",
    "applu_in",
    "equake_in",
    "swim_in",
    "mgrid_in",
)


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by its paper label.

    Raises:
        ConfigurationError: If the name is unknown.
    """
    try:
        return SPEC2000_BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {sorted(SPEC2000_BENCHMARKS)}"
        ) from None


def benchmark_names() -> Tuple[str, ...]:
    """All benchmark names in the paper's Figure 4 order."""
    return FIG4_BENCHMARK_ORDER
