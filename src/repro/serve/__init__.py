"""Online streaming phase-prediction service (``repro serve``).

The serving layer turns the repo's offline phase-prediction stack into a
long-running service: each client holds a :class:`PhaseSession` (live
predictor + governor + phase table), feeds it counter samples — one at a
time or in ordered batches — over a versioned line-delimited JSON
protocol (stdio or TCP), and can checkpoint/restore the session
losslessly at any point.  ``repro serve tcp --workers N`` scales out to
N worker processes behind a consistent-hash router
(:mod:`repro.serve.shard`).

Guarantees:

* **online == offline** — a session fed a ``Mem/Uop`` series emits
  bit-for-bit the prediction sequence of
  :func:`repro.analysis.accuracy.evaluate_predictor`;
* **batched == unbatched** — any partition of a sample stream into
  ``sample_batch`` requests yields exactly the outcomes of the same
  stream fed one ``sample`` at a time;
* **lossless checkpoints** — ``restore(snapshot(s))`` continues exactly
  where ``s`` stopped, including full GPHT state (GPHR, PHT tags, LRU
  order);
* **overload protection** — session ceiling, idle eviction, bounded
  per-connection queues and latency-budget degradation to last-value
  prediction;
* **shard isolation** — a worker death degrades only its own shard
  (``worker_unavailable``), and with auto-restart the router respawns
  the worker and restores its sessions from durable checkpoints
  (``worker_recovering`` while it does), bounding the loss to one
  checkpoint cadence of replayable samples;
* **lossless migration** — the router-level ``migrate`` op moves a live
  session between workers via drain–snapshot–restore, preserving its id
  and every bit of predictor state.

See ``docs/serving.md`` for the wire protocol and workflows.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointStore,
    StoredCheckpoint,
    checkpoint_from_json,
    checkpoint_to_json,
    validate_checkpoint,
)
from repro.serve.frontends import (
    DEFAULT_QUEUE_DEPTH,
    relay_lines,
    serve_stdio,
    serve_tcp,
    serve_tcp_async,
)
from repro.serve.loadgen import (
    ChaosEvent,
    ChaosSchedule,
    LoadgenResult,
    generate_series,
    run_loadgen,
)
from repro.serve.manager import (
    DEFAULT_MAX_SESSIONS,
    MIGRATED_CLOSE_REASON,
    OverloadedError,
    SessionManager,
    UnknownSessionError,
)
from repro.serve.protocol import (
    MAX_BATCH_SAMPLES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    handle_line,
    handle_request,
    parse_response,
)
from repro.serve.replay import (
    ReplayReport,
    ReplaySample,
    extract_samples,
    load_trace,
    replay_trace,
)
from repro.serve.session import (
    SESSION_GOVERNORS,
    BatchOutcomes,
    PhaseSession,
    SampleOutcome,
    SessionConfig,
)
from repro.serve.shard import (
    DEFAULT_CHECKPOINT_EVERY,
    ShardedServer,
    aggregate_stats,
    merge_metrics,
    mint_shard_session_id,
    run_sharded,
    shard_for,
    worker_ceilings,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "BatchOutcomes",
    "ChaosEvent",
    "ChaosSchedule",
    "Checkpoint",
    "CheckpointStore",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_QUEUE_DEPTH",
    "LoadgenResult",
    "MAX_BATCH_SAMPLES",
    "MIGRATED_CLOSE_REASON",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "PhaseSession",
    "ReplayReport",
    "ReplaySample",
    "SESSION_GOVERNORS",
    "SUPPORTED_PROTOCOLS",
    "SampleOutcome",
    "SessionConfig",
    "SessionManager",
    "ShardedServer",
    "StoredCheckpoint",
    "UnknownSessionError",
    "aggregate_stats",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "extract_samples",
    "generate_series",
    "handle_line",
    "handle_request",
    "load_trace",
    "merge_metrics",
    "mint_shard_session_id",
    "parse_response",
    "relay_lines",
    "replay_trace",
    "run_loadgen",
    "run_sharded",
    "serve_stdio",
    "serve_tcp",
    "serve_tcp_async",
    "shard_for",
    "validate_checkpoint",
    "worker_ceilings",
]
