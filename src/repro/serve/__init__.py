"""Online streaming phase-prediction service (``repro serve``).

The serving layer turns the repo's offline phase-prediction stack into a
long-running service: each client holds a :class:`PhaseSession` (live
predictor + governor + phase table), feeds it counter samples one at a
time over a versioned line-delimited JSON protocol (stdio or TCP), and
can checkpoint/restore the session losslessly at any point.

Guarantees:

* **online == offline** — a session fed a ``Mem/Uop`` series emits
  bit-for-bit the prediction sequence of
  :func:`repro.analysis.accuracy.evaluate_predictor`;
* **lossless checkpoints** — ``restore(snapshot(s))`` continues exactly
  where ``s`` stopped, including full GPHT state (GPHR, PHT tags, LRU
  order);
* **overload protection** — session ceiling, idle eviction, bounded
  per-connection queues and latency-budget degradation to last-value
  prediction.

See ``docs/serving.md`` for the wire protocol and workflows.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    checkpoint_from_json,
    checkpoint_to_json,
    validate_checkpoint,
)
from repro.serve.frontends import (
    DEFAULT_QUEUE_DEPTH,
    serve_stdio,
    serve_tcp,
    serve_tcp_async,
)
from repro.serve.manager import (
    DEFAULT_MAX_SESSIONS,
    OverloadedError,
    SessionManager,
    UnknownSessionError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    handle_line,
    handle_request,
    parse_response,
)
from repro.serve.replay import (
    ReplayReport,
    ReplaySample,
    extract_samples,
    load_trace,
    replay_trace,
)
from repro.serve.session import (
    SESSION_GOVERNORS,
    PhaseSession,
    SampleOutcome,
    SessionConfig,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_QUEUE_DEPTH",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "PhaseSession",
    "ReplayReport",
    "ReplaySample",
    "SESSION_GOVERNORS",
    "SampleOutcome",
    "SessionConfig",
    "SessionManager",
    "UnknownSessionError",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "extract_samples",
    "handle_line",
    "handle_request",
    "load_trace",
    "parse_response",
    "replay_trace",
    "serve_stdio",
    "serve_tcp",
    "serve_tcp_async",
    "validate_checkpoint",
]
