"""Transport frontends for the serving layer: stdio and asyncio TCP.

Both frontends speak the same line-delimited JSON protocol via
:func:`repro.serve.protocol.handle_line`; they differ only in how bytes
arrive and leave.

**stdio** is a synchronous loop: read a line, answer a line, flush.
It exists for `repro serve stdio`, piping a client over a subprocess
boundary, and for deterministic tests.

**TCP** is an asyncio server with explicit overload protection per
connection: a bounded request queue sits between the socket reader and
the worker that executes requests.  When a client floods requests faster
than the server answers, the reader stops consuming once the queue is
full, TCP flow control pushes back on the sender, and ``writer.drain()``
bounds the outgoing buffer.  Responses stay in request order because a
single worker drains the queue sequentially.

Time is taken from an injectable clock (default ``time.monotonic``,
passed by reference) so idle eviction and latency budgets work on wall
time in production but can run on a fake clock in tests.
"""

from __future__ import annotations

import asyncio
import time
from typing import IO, Awaitable, Callable, Optional

from repro.serve.manager import SessionManager
from repro.serve.protocol import handle_line
from repro.serve.session import Clock

#: One request line in, one response line out — the contract both the
#: in-process dispatcher and the shard router's forwarding loop satisfy.
LineHandler = Callable[[str], Awaitable[str]]

#: Wall clock used by production frontends (a reference, so tests can
#: substitute a deterministic callable).
DEFAULT_CLOCK: Clock = time.monotonic

#: Per-connection request-queue depth; when full, the reader stops
#: consuming and TCP flow control throttles the client.
DEFAULT_QUEUE_DEPTH = 64


def serve_stdio(
    manager: SessionManager,
    stdin: IO[str],
    stdout: IO[str],
) -> int:
    """Serve line-delimited JSON over text streams until EOF.

    Returns the number of requests handled.  Blank lines are ignored so
    interactive use tolerates stray newlines.
    """
    handled = 0
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        stdout.write(handle_line(manager, line) + "\n")
        stdout.flush()
        handled += 1
    return handled


async def relay_lines(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    answer: LineHandler,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> None:
    """Pump request lines through ``answer`` with bounded buffering.

    The backpressure core shared by the in-process TCP frontend and the
    shard router: a bounded queue sits between the socket reader and the
    single worker that calls ``answer`` in order.  When the queue fills,
    the reader stops consuming and TCP flow control throttles the
    client; ``writer.drain()`` bounds the outgoing buffer.  Responses
    stay in request order because one worker drains the queue.
    """
    queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue(maxsize=queue_depth)

    async def read_requests() -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                # Blocks when the queue is full: the socket stops being
                # read and TCP flow control throttles the client.
                await queue.put(line)
        finally:
            await queue.put(None)

    async def answer_requests() -> None:
        while True:
            line = await queue.get()
            if line is None:
                break
            writer.write((await answer(line) + "\n").encode("utf-8"))
            await writer.drain()

    read_task = asyncio.ensure_future(read_requests())
    try:
        await answer_requests()
    finally:
        read_task.cancel()
        try:
            await read_task
        except (asyncio.CancelledError, Exception):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (asyncio.CancelledError, Exception):
            # Connection teardown races server shutdown; either way the
            # transport is gone and there is nothing left to release.
            pass


async def _handle_connection(
    manager: SessionManager,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    queue_depth: int,
) -> None:
    """One client connection: bounded queue between reader and worker."""

    async def answer(line: str) -> str:
        return handle_line(manager, line)

    await relay_lines(reader, writer, answer, queue_depth)


async def serve_tcp_async(
    manager: SessionManager,
    host: str = "127.0.0.1",
    port: int = 0,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ready: "Optional[asyncio.Future[int]]" = None,
) -> None:
    """Run the asyncio TCP server until cancelled.

    Binds ``host:port`` (``port=0`` picks a free port) and, when
    ``ready`` is given, resolves it with the bound port once the server
    is accepting connections — tests use this instead of polling.
    """

    async def on_connect(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await _handle_connection(manager, reader, writer, queue_depth)
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection handlers;
            # swallowing here keeps asyncio's stream machinery from
            # logging the cancellation as an unhandled error.
            pass

    server = await asyncio.start_server(on_connect, host=host, port=port)
    sockets = server.sockets or []
    bound_port = sockets[0].getsockname()[1] if sockets else port
    if ready is not None and not ready.done():
        ready.set_result(bound_port)
    async with server:
        await server.serve_forever()


def serve_tcp(
    manager: SessionManager,
    host: str = "127.0.0.1",
    port: int = 8472,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> None:
    """Blocking entry point for ``repro serve tcp``.

    Runs :func:`serve_tcp_async` on a fresh event loop until
    interrupted.
    """
    try:
        asyncio.run(
            serve_tcp_async(
                manager, host=host, port=port, queue_depth=queue_depth
            )
        )
    except KeyboardInterrupt:
        pass
