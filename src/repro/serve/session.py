"""Live phase-prediction sessions: the online analogue of the PMI loop.

A :class:`PhaseSession` is the software equivalent of the paper's
deployed kernel-module handler for one client: it owns a live
predictor + governor + phase table, is fed one ``(interval_index,
mem_per_uop, upc)`` sample at a time, and answers with the classified
phase, the predicted next phase and the recommended DVFS setting —
exactly the classify/observe/predict/translate cycle of Figure 8, but
driven by a remote caller instead of a counter overflow.

Correctness contract (the online/offline bridge): fed the same
``Mem/Uop`` series, a session emits *bit-for-bit* the prediction
sequence of :func:`repro.analysis.accuracy.evaluate_predictor` with the
same predictor configuration.  ``tests/properties/
test_serve_equivalence.py`` holds every supported predictor to this,
including across a mid-stream snapshot/restore.

Overload protection: when constructed with a ``clock`` and a latency
budget, a session that misses its budget degrades to last-value
prediction (the paper's own PHT-miss fallback, applied wholesale) until
``cooldown`` consecutive samples come back in budget.  Degradation
changes *predictions only* — the predictor keeps observing every actual
phase, so its history stays warm for recovery.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    overload,
)

from repro.core.governor import (
    IntervalCounters,
    PhasePredictionGovernor,
    ReactiveGovernor,
)
from repro.core.phases import PhaseTable
from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    PhaseObservation,
    PhasePredictor,
)
from repro.errors import ConfigurationError
from repro.obs.events import SessionDegraded
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

#: Injectable time source (seconds).  Sessions never read a clock
#: themselves — deterministic unless the frontend wires one in.
Clock = Callable[[], float]

#: Governor kinds a session can host (see :meth:`SessionConfig`).
SESSION_GOVERNORS = (
    "gpht",
    "reactive",
    "fixed_window",
    "learned_tree",
    "markov",
)

#: Checkpoint / wire payload: JSON-able scalars and containers only.
Payload = Dict[str, object]


@dataclass(frozen=True)
class SessionConfig:
    """Immutable per-session configuration.

    Attributes:
        governor: ``"gpht"`` (the paper's deployed predictor),
            ``"reactive"`` (last-value), ``"fixed_window"``,
            ``"learned_tree"`` (a :mod:`repro.learn` decision tree,
            typically restored from a trained artifact) or ``"markov"``
            (an order-``k`` smoothed Markov predictor).
        policy: Phase-to-DVFS policy registry name (see
            :func:`repro.exec.cells.build_policy`).
        gphr_depth: GPHT history depth (``gpht`` only).
        pht_entries: GPHT pattern-table capacity (``gpht`` only).
        window_size: Sliding-window length (``fixed_window`` only).
        history_length: Feature-window length (``learned_tree`` only).
        markov_order: Context length (``markov`` only).
        markov_alpha: Smoothing strength (``markov`` only).
        latency_budget_s: Per-sample latency budget; ``None`` disables
            degradation (and makes the session fully deterministic).
        cooldown: Consecutive in-budget samples required to leave
            degraded mode.
    """

    governor: str = "gpht"
    policy: str = "table2"
    gphr_depth: int = 8
    pht_entries: int = 128
    window_size: int = 8
    history_length: int = 4
    markov_order: int = 3
    markov_alpha: float = 0.5
    latency_budget_s: Optional[float] = None
    cooldown: int = 16

    def __post_init__(self) -> None:
        if self.governor not in SESSION_GOVERNORS:
            raise ConfigurationError(
                f"unknown session governor {self.governor!r}; "
                f"known: {SESSION_GOVERNORS}"
            )
        if self.latency_budget_s is not None and self.latency_budget_s <= 0:
            raise ConfigurationError(
                f"latency budget must be > 0, got {self.latency_budget_s}"
            )
        if self.cooldown < 1:
            raise ConfigurationError(
                f"cooldown must be >= 1, got {self.cooldown}"
            )

    def build_predictor(self) -> PhasePredictor:
        """A fresh predictor matching this configuration.

        ``learned_tree`` and ``markov`` sessions start *untrained* (the
        tree falls back to last-value, the Markov model to its online
        counts) — a trained model arrives via ``restore_state`` from a
        checkpoint or a :class:`repro.learn.ModelArtifact`.
        """
        if self.governor == "gpht":
            return GPHTPredictor(self.gphr_depth, self.pht_entries)
        if self.governor == "fixed_window":
            return FixedWindowPredictor(self.window_size)
        if self.governor in ("learned_tree", "markov"):
            # Function-scope import: serve must not pay repro.learn's
            # NumPy/training import cost for the common gpht sessions.
            from repro.learn.predictors import (
                DecisionTreePhasePredictor,
                MarkovKPredictor,
            )

            if self.governor == "learned_tree":
                return DecisionTreePhasePredictor(
                    history_length=self.history_length
                )
            return MarkovKPredictor(
                order=self.markov_order, alpha=self.markov_alpha
            )
        return LastValuePredictor()

    def to_payload(self) -> Payload:
        """JSON-able form, embedded in checkpoints and wire messages."""
        return {
            "governor": self.governor,
            "policy": self.policy,
            "gphr_depth": self.gphr_depth,
            "pht_entries": self.pht_entries,
            "window_size": self.window_size,
            "history_length": self.history_length,
            "markov_order": self.markov_order,
            "markov_alpha": self.markov_alpha,
            "latency_budget_s": self.latency_budget_s,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_payload(cls, payload: Payload) -> "SessionConfig":
        """Validate and rebuild a configuration from JSON-able form."""
        kwargs: Dict[str, object] = {}
        for key, kind in (
            ("governor", str),
            ("policy", str),
            ("gphr_depth", int),
            ("pht_entries", int),
            ("window_size", int),
            ("history_length", int),
            ("markov_order", int),
            ("cooldown", int),
        ):
            if key in payload:
                value = payload[key]
                if isinstance(value, bool) or not isinstance(value, kind):
                    raise ConfigurationError(
                        f"session config {key!r} must be {kind.__name__}, "
                        f"got {value!r}"
                    )
                kwargs[key] = value
        if "markov_alpha" in payload:
            alpha = payload["markov_alpha"]
            if isinstance(alpha, bool) or not isinstance(alpha, (int, float)):
                raise ConfigurationError(
                    f"markov_alpha must be a number, got {alpha!r}"
                )
            kwargs["markov_alpha"] = float(alpha)
        if "latency_budget_s" in payload:
            budget = payload["latency_budget_s"]
            if budget is not None and not isinstance(budget, (int, float)):
                raise ConfigurationError(
                    f"latency_budget_s must be a number or null, got {budget!r}"
                )
            kwargs["latency_budget_s"] = (
                None if budget is None else float(budget)
            )
        unknown = set(payload) - {
            "governor",
            "policy",
            "gphr_depth",
            "pht_entries",
            "window_size",
            "history_length",
            "markov_order",
            "markov_alpha",
            "latency_budget_s",
            "cooldown",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown session config fields: {sorted(unknown)}"
            )
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SampleOutcome:
    """Answer to one fed sample — the wire-level ``sample`` response.

    Attributes:
        interval: The sample's 0-based interval index.
        actual_phase: Phase classified for the finished interval.
        predicted_phase: Phase predicted for the next interval (raw
            predictor output, the value scored against the next actual).
        frequency_mhz: Recommended operating frequency for the next
            interval.
        degraded: Whether this sample was served in degraded
            (last-value) mode.
        hit: Whether the *previous* prediction matched this actual
            phase; ``None`` for the first sample (nothing to score).
    """

    interval: int
    actual_phase: int
    predicted_phase: int
    frequency_mhz: int
    degraded: bool
    hit: Optional[bool]


class BatchOutcomes(Sequence[SampleOutcome]):
    """Columnar answer to one :meth:`PhaseSession.feed_batch` call.

    Reads like an immutable sequence of :class:`SampleOutcome` — length,
    indexing, slicing, iteration, and equality against any sequence of
    outcomes — but stores the response fields as parallel columns and
    only materializes ``SampleOutcome`` objects on access.  Building one
    frozen dataclass per sample costs more than the entire batched
    decision cycle, so the fast path never does: the wire layer
    serializes straight from :meth:`rows`.
    """

    __slots__ = (
        "_start_interval",
        "_actual",
        "_predicted",
        "_frequencies",
        "_degraded",
        "_hits",
    )

    def __init__(
        self,
        start_interval: int,
        actual_phases: List[int],
        predicted_phases: List[int],
        frequencies_mhz: List[int],
        degraded: List[bool],
        hits: List[Optional[bool]],
    ) -> None:
        self._start_interval = start_interval
        self._actual = actual_phases
        self._predicted = predicted_phases
        self._frequencies = frequencies_mhz
        self._degraded = degraded
        self._hits = hits

    @classmethod
    def from_outcomes(
        cls, start_interval: int, outcomes: Sequence[SampleOutcome]
    ) -> "BatchOutcomes":
        """Column-pack already-materialized outcomes (the slow paths)."""
        return cls(
            start_interval,
            [outcome.actual_phase for outcome in outcomes],
            [outcome.predicted_phase for outcome in outcomes],
            [outcome.frequency_mhz for outcome in outcomes],
            [outcome.degraded for outcome in outcomes],
            [outcome.hit for outcome in outcomes],
        )

    def __len__(self) -> int:
        return len(self._actual)

    def _make(self, index: int) -> SampleOutcome:
        return SampleOutcome(
            interval=self._start_interval + index,
            actual_phase=self._actual[index],
            predicted_phase=self._predicted[index],
            frequency_mhz=self._frequencies[index],
            degraded=self._degraded[index],
            hit=self._hits[index],
        )

    @overload
    def __getitem__(self, index: int) -> SampleOutcome: ...

    @overload
    def __getitem__(self, index: slice) -> List[SampleOutcome]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[SampleOutcome, List[SampleOutcome]]:
        if isinstance(index, slice):
            return [
                self._make(i)
                for i in range(*index.indices(len(self._actual)))
            ]
        n = len(self._actual)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("batch outcome index out of range")
        return self._make(index)

    def __iter__(self) -> Iterator[SampleOutcome]:
        for i in range(len(self._actual)):
            yield self._make(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BatchOutcomes):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def rows(self) -> List[List[object]]:
        """Wire-protocol rows: ``[interval, phase, predicted,
        frequency_mhz, degraded, hit]`` per sample, ready to serialize
        without materializing any :class:`SampleOutcome`."""
        start = self._start_interval
        return [
            [start + i, actual, predicted, frequency, degraded, hit]
            for i, (actual, predicted, frequency, degraded, hit) in enumerate(
                zip(
                    self._actual,
                    self._predicted,
                    self._frequencies,
                    self._degraded,
                    self._hits,
                )
            )
        ]

    @property
    def degraded_count(self) -> int:
        """How many samples in the batch were served degraded."""
        return sum(self._degraded)

    def __repr__(self) -> str:
        return (
            f"<BatchOutcomes n={len(self._actual)} "
            f"start={self._start_interval}>"
        )


class PhaseSession:
    """One client's live predictor + governor + phase table.

    Args:
        config: Session configuration.
        session_id: Display id used in trace events and metrics.
        clock: Injectable time source for latency accounting; ``None``
            (the default) disables latency measurement and degradation.
        tracer: Trace collector for degradation events.
        metrics: Shared metrics registry (the serving
            ``SessionManager`` passes its own).
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        session_id: str = "",
        clock: Optional[Clock] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._config = config if config is not None else SessionConfig()  # repro-analyze: disable=checkpoint-completeness -- rebuilt by from_snapshot from the checkpoint's config payload (constructor argument)
        self._id = session_id
        self._clock = clock
        self._tracer = tracer
        self._metrics = metrics
        self._governor = self._build_governor(self._config)  # repro-analyze: disable=checkpoint-completeness -- rebuilt from config on restore; the predictor's mutable state is re-applied via restore_state
        self._frequency_by_phase: Optional[Dict[int, int]] = None  # repro-analyze: disable=checkpoint-completeness -- derived cache, rebuilt lazily from the policy assignments
        self._samples = 0
        self._scored = 0
        self._correct = 0
        self._degraded_scored = 0
        self._degraded_correct = 0
        self._pending: Optional[int] = None
        self._pending_degraded = False
        self._degraded = False
        self._degraded_events = 0
        self._in_budget_streak = 0

    @staticmethod
    def _build_governor(config: SessionConfig) -> PhasePredictionGovernor:
        """The governor hosting this session's predictor.

        Decision recording is off: a service session must hold bounded
        memory no matter how long it runs.
        """
        # Imported here, not at module scope: exec.cells eagerly pulls
        # the analysis stack, which sessions only need for policy names.
        from repro.exec.cells import build_policy

        policy = build_policy(config.policy)
        if config.governor == "reactive":
            return ReactiveGovernor(policy, record_decisions=False)
        return PhasePredictionGovernor(
            config.build_predictor(), policy, record_decisions=False
        )

    # -- introspection ------------------------------------------------------

    @property
    def config(self) -> SessionConfig:
        """The immutable session configuration."""
        return self._config

    @property
    def session_id(self) -> str:
        """The id assigned by the manager (empty when standalone)."""
        return self._id

    @property
    def predictor(self) -> PhasePredictor:
        """The live predictor steering this session."""
        return self._governor.predictor

    @property
    def phase_table(self) -> PhaseTable:
        """The phase definitions classifications use."""
        return self._governor.policy.phase_table

    @property
    def samples(self) -> int:
        """Samples fed so far."""
        return self._samples

    @property
    def scored(self) -> int:
        """Normal-mode predictions scored so far.

        Predictions produced while the session was degraded are scored
        separately (:attr:`degraded_scored`): last-value fallback hits
        must not be conflated with the configured predictor's accuracy.
        """
        return self._scored

    @property
    def correct(self) -> int:
        """Scored normal-mode predictions that matched the next actual."""
        return self._correct

    @property
    def accuracy(self) -> float:
        """Online prediction accuracy, matching the offline definition.

        Covers only predictions the configured predictor produced; the
        degraded-mode fallback has its own :attr:`degraded_accuracy`.
        """
        if self._scored == 0:
            return 1.0
        return self._correct / self._scored

    @property
    def degraded_scored(self) -> int:
        """Degraded-mode (last-value fallback) predictions scored."""
        return self._degraded_scored

    @property
    def degraded_correct(self) -> int:
        """Scored degraded-mode predictions that matched the next actual."""
        return self._degraded_correct

    @property
    def degraded_accuracy(self) -> float:
        """Accuracy of the degraded-mode last-value fallback alone."""
        if self._degraded_scored == 0:
            return 1.0
        return self._degraded_correct / self._degraded_scored

    @property
    def degraded(self) -> bool:
        """Whether the session is currently in degraded mode."""
        return self._degraded

    @property
    def degraded_events(self) -> int:
        """How many times the session entered degraded mode."""
        return self._degraded_events

    # -- the online loop ----------------------------------------------------

    def feed(
        self,
        interval_index: int,
        mem_per_uop: float,
        upc: float = 0.0,
    ) -> SampleOutcome:
        """Process one completed sampling interval.

        Samples must arrive in order: ``interval_index`` is validated
        against the session's own monotonic count so a replayed or
        reordered stream fails loudly instead of silently corrupting
        predictor history.
        """
        self._validate_sample(interval_index, mem_per_uop, self._samples)
        started = self._clock() if self._clock is not None else None
        outcome = self._feed_one(interval_index, mem_per_uop, upc)
        if started is not None and self._clock is not None:
            elapsed = self._clock() - started
            self._observe_latency(elapsed)
            self._update_degradation(elapsed)
        if self._metrics is not None:
            self._metrics.counter("serve.samples").inc()
            if outcome.degraded:
                self._metrics.counter("serve.degraded_samples").inc()
        return outcome

    def feed_batch(
        self,
        start_interval: int,
        samples: Sequence[Tuple[float, float]],
    ) -> BatchOutcomes:
        """Process N ordered samples for this session in one call.

        ``samples`` is a sequence of ``(mem_per_uop, upc)`` pairs whose
        first element corresponds to interval ``start_interval`` (which
        must equal the session's own sample count, like :meth:`feed`).
        Returns a :class:`BatchOutcomes` — a columnar sequence that
        compares equal to the list of :class:`SampleOutcome` objects N
        single :meth:`feed` calls would have produced.

        **Bit-for-bit contract:** fed the same values (and, when a
        latency budget is active, the same clock sequence), the returned
        outcomes are identical to N single :meth:`feed` calls — including
        degraded-mode entry/exit mid-batch.  ``tests/properties/
        test_serve_batching.py`` holds every governor to this for every
        partition of a stream into batches.

        **Fast path:** without a latency budget no per-sample clock
        reads are needed, so a session in its normal state takes the
        vectorized route (:meth:`PhaseTable.classify_batch` + the
        predictor's :meth:`~repro.core.predictors.base.PhasePredictor.
        predict_batch` kernel) instead of N scalar decision cycles.

        **Per-batch accounting:** metrics are updated once per batch
        (``serve.samples += N``, one ``serve.batch_size`` observation,
        one ``serve.sample_latency_s`` observation covering the whole
        batch) instead of once per sample — this is the point of the
        batched wire protocol.  The latency-budget degradation state
        machine still runs per sample when a budget is configured,
        because mid-batch transitions are part of the outcome contract.

        **Atomic validation:** the whole batch is validated before the
        first sample is processed, so a malformed batch leaves the
        session untouched instead of half-applied.
        """
        if start_interval != self._samples:
            raise ConfigurationError(
                f"out-of-order batch: expected start interval "
                f"{self._samples}, got {start_interval}"
            )
        for offset, (mem_per_uop, _) in enumerate(samples):
            if mem_per_uop < 0:
                raise ConfigurationError(
                    f"Mem/Uop must be >= 0, got {mem_per_uop} "
                    f"(batch sample {offset})"
                )
        clock = self._clock
        if clock is not None and self._config.latency_budget_s is not None:
            # The degradation state machine consumes one latency per
            # sample; anything coarser would diverge from N feed() calls.
            scalar_outcomes: List[SampleOutcome] = []
            batch_elapsed = 0.0
            for offset, (mem_per_uop, upc) in enumerate(samples):
                sample_started = clock()
                outcome = self._feed_one(
                    start_interval + offset, mem_per_uop, upc
                )
                elapsed = clock() - sample_started
                batch_elapsed += elapsed
                self._update_degradation(elapsed)
                scalar_outcomes.append(outcome)
            if samples:
                self._observe_latency(batch_elapsed)
            outcomes = BatchOutcomes.from_outcomes(
                start_interval, scalar_outcomes
            )
        elif clock is not None:
            started = clock()
            outcomes = self._feed_batch_unbudgeted(start_interval, samples)
            if samples:
                self._observe_latency(clock() - started)
        else:
            outcomes = self._feed_batch_unbudgeted(start_interval, samples)
        if self._metrics is not None and samples:
            self._metrics.counter("serve.samples").inc(len(samples))
            self._metrics.histogram("serve.batch_size").observe(
                float(len(samples))
            )
            degraded_count = outcomes.degraded_count
            if degraded_count:
                self._metrics.counter("serve.degraded_samples").inc(
                    degraded_count
                )
        return outcomes

    def _feed_batch_unbudgeted(
        self,
        start_interval: int,
        samples: Sequence[Tuple[float, float]],
    ) -> BatchOutcomes:
        """Batch body when no per-sample latency accounting is needed.

        Falls back to the scalar loop in the two states the fast path
        does not model: a session stuck in degraded mode (possible only
        via a restored checkpoint, since without a budget the state
        machine never transitions) and a predictor with a live tracer
        (the scalar cycle owns per-interval event emission).
        """
        if self._degraded or self.predictor.tracer.enabled:
            return BatchOutcomes.from_outcomes(
                start_interval,
                [
                    self._feed_one(start_interval + offset, mem_per_uop, upc)
                    for offset, (mem_per_uop, upc) in enumerate(samples)
                ],
            )
        return self._feed_batch_fast(start_interval, samples)

    def _feed_batch_fast(
        self,
        start_interval: int,
        samples: Sequence[Tuple[float, float]],
    ) -> BatchOutcomes:
        """Vectorized normal-mode decision cycle for a validated batch.

        Mirrors N :meth:`_feed_one` calls exactly, column-at-a-time:

        * classification — :meth:`PhaseTable.classify_batch` over the raw
          ``mem_per_uop`` values (the scalar path's unit-µop synthetic
          counters reproduce the value bit-exactly, so classifying it
          directly is identical);
        * prediction — the predictor's fused ``predict_batch`` cycle,
          then the governor's range clamp (skipped wholesale when every
          prediction is already in range, the overwhelmingly common
          case);
        * policy translation — a cached phase→frequency map plus one
          bulk :meth:`DVFSPolicy.record_lookups` call, advancing the
          per-phase residency counters exactly as N ``setting_for``
          lookups would;
        * scoring — the first sample settles the carried-over pending
          prediction (degraded-tagged if it was made in degraded mode),
          every later sample scores its predecessor's prediction into
          the normal counters.

        ``upc`` is ignored here as in the scalar path: it only feeds the
        synthetic TSC counter, which the Mem/Uop metric never reads.
        """
        n = len(samples)
        if n == 0:
            return BatchOutcomes(start_interval, [], [], [], [], [])
        mem_values = [sample[0] for sample in samples]
        table = self.phase_table
        actual = table.classify_batch(mem_values)
        predicted = self.predictor.predict_batch(actual, mem_values)
        num_phases = table.num_phases
        if min(predicted) < 1 or max(predicted) > num_phases:
            predicted = [
                min(max(phase, 1), num_phases) for phase in predicted
            ]
        frequency_map = self._frequency_by_phase
        if frequency_map is None:
            frequency_map = {
                phase_id: point.frequency_mhz
                for phase_id, point in (
                    self._governor.policy.assignments.items()
                )
            }
            self._frequency_by_phase = frequency_map
        frequencies = [frequency_map[phase] for phase in predicted]
        self._governor.policy.record_lookups(Counter(predicted))
        pending = self._pending
        first_hit: Optional[bool] = (
            None if pending is None else pending == actual[0]
        )
        hits: List[Optional[bool]] = [first_hit]
        rest_hits = [
            prediction == outcome
            for prediction, outcome in zip(predicted, actual[1:])
        ]
        hits.extend(rest_hits)
        if first_hit is not None:
            if self._pending_degraded:
                self._degraded_scored += 1
                if first_hit:
                    self._degraded_correct += 1
            else:
                self._scored += 1
                if first_hit:
                    self._correct += 1
        self._scored += len(rest_hits)
        self._correct += sum(rest_hits)
        self._pending = predicted[-1]
        self._pending_degraded = False
        self._samples += n
        return BatchOutcomes(
            start_interval, actual, predicted, frequencies, [False] * n, hits
        )

    @staticmethod
    def _validate_sample(
        interval_index: int, mem_per_uop: float, expected: int
    ) -> None:
        if interval_index != expected:
            raise ConfigurationError(
                f"out-of-order sample: expected interval {expected}, "
                f"got {interval_index}"
            )
        if mem_per_uop < 0:
            raise ConfigurationError(
                f"Mem/Uop must be >= 0, got {mem_per_uop}"
            )

    def _feed_one(
        self, interval_index: int, mem_per_uop: float, upc: float
    ) -> SampleOutcome:
        """Classify, score, train and predict for one validated sample.

        No clock reads, no metrics — the callers own latency accounting
        (per sample in :meth:`feed`, per batch in :meth:`feed_batch`).
        """
        if self._degraded:
            actual, predicted, frequency_mhz = self._decide_degraded(
                mem_per_uop
            )
        else:
            actual, predicted, frequency_mhz = self._decide(mem_per_uop, upc)
        hit: Optional[bool] = None
        if self._pending is not None:
            hit = self._pending == actual
            if self._pending_degraded:
                self._degraded_scored += 1
                if hit:
                    self._degraded_correct += 1
            else:
                self._scored += 1
                if hit:
                    self._correct += 1
        self._pending = predicted
        self._pending_degraded = self._degraded
        self._samples += 1
        return SampleOutcome(
            interval=interval_index,
            actual_phase=actual,
            predicted_phase=predicted,
            frequency_mhz=frequency_mhz,
            degraded=self._degraded,
            hit=hit,
        )

    def _decide(self, mem_per_uop: float, upc: float) -> "tuple[int, int, int]":
        """Normal path: one governor consultation.

        The counters are unit-µop synthetic: ``uops = 1`` makes the
        governor's ``mem_transactions / uops`` reproduce ``mem_per_uop``
        *exactly* (no float round trip), which the bit-for-bit
        online/offline equivalence depends on.
        """
        counters = IntervalCounters(
            uops=1.0,
            mem_transactions=mem_per_uop,
            instructions=1.0,
            tsc_cycles=(1.0 / upc) if upc > 0 else 0.0,
        )
        decision = self._governor.decide(counters)
        return (
            decision.actual_phase,
            decision.predicted_phase,
            decision.setting.frequency_mhz,
        )

    def _decide_degraded(self, mem_per_uop: float) -> "tuple[int, int, int]":
        """Degraded path: classify, train, predict last-value.

        The expensive predictor lookup is skipped; the predictor still
        observes the actual phase so its history stays warm, mirroring
        the GPHT's own miss fallback (predict the last observed phase).
        """
        policy = self._governor.policy
        actual = policy.phase_table.classify(mem_per_uop)
        self.predictor.observe(
            PhaseObservation(phase=actual, mem_per_uop=mem_per_uop)
        )
        setting = policy.setting_for(actual)
        return actual, actual, setting.frequency_mhz

    def predict(self) -> "tuple[int, int]":
        """The standing prediction and its recommended frequency.

        Before any sample has been fed this is the safe cold-start
        default (phase 1, the fastest setting).
        """
        predicted = (
            self._pending
            if self._pending is not None
            else PhasePredictor.DEFAULT_PHASE
        )
        table = self.phase_table
        clamped = min(max(predicted, 1), table.num_phases)
        setting = self._governor.policy.setting_for(clamped)
        return predicted, setting.frequency_mhz

    # -- degradation state machine ------------------------------------------

    def _observe_latency(self, seconds: float) -> None:
        """Record one latency observation (a sample's, or a batch's)."""
        if self._metrics is not None:
            self._metrics.histogram("serve.sample_latency_s").observe(seconds)

    def _update_degradation(self, seconds: float) -> None:
        """Advance the degradation state machine by one sample latency."""
        budget = self._config.latency_budget_s
        if budget is None:
            return
        if not self._degraded:
            if seconds > budget:
                self._degraded = True
                self._degraded_events += 1
                self._in_budget_streak = 0
                self._emit_degraded(active=True, latency_s=seconds)
            return
        if seconds <= budget:
            self._in_budget_streak += 1
            if self._in_budget_streak >= self._config.cooldown:
                self._degraded = False
                self._in_budget_streak = 0
                self._emit_degraded(active=False, latency_s=seconds)
        else:
            self._in_budget_streak = 0

    def _emit_degraded(self, active: bool, latency_s: float) -> None:
        if self._metrics is not None and active:
            self._metrics.counter("serve.degradation_events").inc()
        if self._tracer.enabled:
            self._tracer.emit(
                SessionDegraded(
                    interval=self._samples,
                    session=self._id,
                    active=active,
                    latency_s=latency_s,
                )
            )

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Payload:
        """A lossless JSON-able checkpoint of the whole session.

        Covers the configuration, the predictor's full state (for the
        GPHT: GPHR contents and PHT entries with tags and LRU order),
        scoring statistics and the degradation state machine, so a
        restored session continues *bit-for-bit* where this one stops.
        """
        from repro.serve.checkpoint import CHECKPOINT_VERSION

        return {
            "version": CHECKPOINT_VERSION,
            "config": self._config.to_payload(),
            "samples": self._samples,
            "scored": self._scored,
            "correct": self._correct,
            "degraded_scored": self._degraded_scored,
            "degraded_correct": self._degraded_correct,
            "pending_prediction": self._pending,
            "pending_degraded": self._pending_degraded,
            "degraded": self._degraded,
            "degraded_events": self._degraded_events,
            "in_budget_streak": self._in_budget_streak,
            "predictor": self.predictor.export_state(),
        }

    @classmethod
    def from_snapshot(
        cls,
        payload: Payload,
        session_id: str = "",
        clock: Optional[Clock] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "PhaseSession":
        """Rebuild a session from a :meth:`snapshot` payload.

        Raises:
            ConfigurationError: On a malformed or version-incompatible
                checkpoint.
        """
        from repro.serve.checkpoint import validate_checkpoint

        validate_checkpoint(payload)
        config_payload = payload["config"]
        assert isinstance(config_payload, dict)  # validate_checkpoint did
        config = SessionConfig.from_payload(config_payload)
        session = cls(
            config,
            session_id=session_id,
            clock=clock,
            tracer=tracer,
            metrics=metrics,
        )
        predictor_state = payload["predictor"]
        assert isinstance(predictor_state, dict)  # validate_checkpoint did
        session.predictor.restore_state(predictor_state)
        session._samples = _checkpoint_int(payload, "samples")
        session._scored = _checkpoint_int(payload, "scored")
        session._correct = _checkpoint_int(payload, "correct")
        # Degraded-mode counters are additive: a pre-split checkpoint
        # simply restores with empty fallback statistics.
        session._degraded_scored = _checkpoint_int(
            payload, "degraded_scored", default=0
        )
        session._degraded_correct = _checkpoint_int(
            payload, "degraded_correct", default=0
        )
        pending = payload.get("pending_prediction")
        if pending is not None and (
            isinstance(pending, bool) or not isinstance(pending, int)
        ):
            raise ConfigurationError(
                f"pending_prediction must be an int or null, got {pending!r}"
            )
        session._pending = pending
        session._pending_degraded = _checkpoint_bool(
            payload, "pending_degraded", default=False
        )
        degraded = payload.get("degraded", False)
        if not isinstance(degraded, bool):
            raise ConfigurationError(
                f"degraded must be a bool, got {degraded!r}"
            )
        session._degraded = degraded
        session._degraded_events = _checkpoint_int(
            payload, "degraded_events", default=0
        )
        session._in_budget_streak = _checkpoint_int(
            payload, "in_budget_streak", default=0
        )
        return session

    def stats(self) -> Payload:
        """JSON-able per-session statistics (the ``stats`` wire answer)."""
        return {
            "session": self._id,
            "governor": self._governor.name,
            "policy": self._governor.policy.name,
            "samples": self._samples,
            "scored": self._scored,
            "correct": self._correct,
            "accuracy": self.accuracy,
            "degraded": self._degraded,
            "degraded_events": self._degraded_events,
            "degraded_scored": self._degraded_scored,
            "degraded_correct": self._degraded_correct,
            "degraded_accuracy": self.degraded_accuracy,
        }

    def __repr__(self) -> str:
        return (
            f"<PhaseSession {self._id or '(anonymous)'} "
            f"{self._governor.name} samples={self._samples}>"
        )


def _checkpoint_int(payload: Payload, key: str, default: Optional[int] = None) -> int:
    """Extract a non-negative int field from a checkpoint payload."""
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"checkpoint {key!r} must be an int, got {value!r}"
        )
    if value < 0:
        raise ConfigurationError(
            f"checkpoint {key!r} must be >= 0, got {value}"
        )
    return value


def _checkpoint_bool(payload: Payload, key: str, default: bool) -> bool:
    """Extract a bool field from a checkpoint payload."""
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ConfigurationError(
            f"checkpoint {key!r} must be a bool, got {value!r}"
        )
    return value
