"""Session lifecycle: creation, lookup, idle eviction, overload limits.

The :class:`SessionManager` is the server-side registry every frontend
(stdio, TCP) dispatches into.  It enforces the service's protection
envelope:

* **overload** — at most ``max_sessions`` live sessions; a ``hello``
  beyond that is rejected with :class:`OverloadedError` (after first
  sweeping idle sessions), which the wire protocol maps to
  ``server_overloaded``;
* **idle eviction** — sessions untouched for ``idle_timeout_s`` are
  closed on the next sweep, so abandoned clients cannot pin memory.
  The wire dispatcher sweeps on *every* handled request (not only when
  a slot is reserved by ``hello``/``restore``), so eviction fires even
  when traffic consists solely of samples to other live sessions.

Time is injectable: with no ``clock`` the manager runs on a logical
clock that advances one unit per handled request, keeping every test
(and any clock-free deployment) deterministic.  Frontends inject
``time.monotonic`` for wall-clock idle timeouts and latency histograms.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.obs.events import SessionClosed, SessionOpened, SessionRestored
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.checkpoint import CheckpointStore
from repro.serve.session import Clock, Payload, PhaseSession, SessionConfig

#: Default live-session ceiling.
DEFAULT_MAX_SESSIONS = 64

#: ``close()`` reason marking a migration hand-off.  Unlike every other
#: close, a migration must *keep* the session's durable checkpoint: the
#: target worker takes ownership of the store entry and overwrites it
#: when it registers the restored session.
MIGRATED_CLOSE_REASON = "migrated"

#: Server-minted id shape (``s<seq>`` / ``s<seq>x<k>``); used to keep
#: the minting sequence ahead of ids adopted via :meth:`restore_as`.
_MINTED_ID_RE = re.compile(r"^s([0-9]+)(?:x[0-9]+)?$")


class OverloadedError(ReproError):
    """The server is at its live-session ceiling."""


class UnknownSessionError(ReproError):
    """The named session does not exist (never did, or was closed)."""


class _Entry:
    """One live session plus its bookkeeping."""

    __slots__ = ("session", "last_used", "protocol", "checkpointed_samples")

    def __init__(
        self,
        session: PhaseSession,
        last_used: float,
        protocol: Optional[int] = None,
    ) -> None:
        self.session = session
        self.last_used = last_used
        self.protocol = protocol
        # Sample count at the last durable checkpoint; drives the
        # checkpoint cadence (see SessionManager.maybe_checkpoint).
        self.checkpointed_samples = session.samples


class SessionManager:
    """Registry of live :class:`PhaseSession` objects.

    Args:
        max_sessions: Live-session ceiling (overload protection).
        idle_timeout_s: Evict sessions untouched for this long; ``None``
            disables eviction.  Measured on ``clock`` when provided,
            otherwise on the logical request clock (one unit per
            request).
        clock: Injectable time source shared with every session it
            creates; ``None`` keeps the manager fully deterministic.
        tracer: Trace collector for session lifecycle events.
        metrics: Metrics registry; a private one is created when omitted.
        id_minter: Maps the manager's monotonically increasing sequence
            number to a session id.  The default mints ``s1``, ``s2``,
            ...; shard workers inject
            :func:`repro.serve.shard.mint_shard_session_id` so every id
            consistent-hashes back to the worker that owns it.
        checkpoint_store: Durable checkpoint store.  When set, every
            session gets an initial checkpoint at registration (so the
            replay window is bounded from the first sample), the
            dispatcher re-checkpoints on the ``checkpoint_every``
            cadence, and closing/evicting a session drops its entry —
            except a :data:`MIGRATED_CLOSE_REASON` close, which hands
            the entry to the migration target.
        checkpoint_every: Re-checkpoint a session once it has advanced
            this many samples past its last durable checkpoint.  ``0``
            disables cadence checkpointing (initial checkpoints are
            still written when a store is configured).
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_timeout_s: Optional[float] = None,
        clock: Optional[Clock] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        id_minter: Optional[Callable[[int], str]] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_every: int = 0,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ConfigurationError(
                f"idle timeout must be > 0, got {idle_timeout_s}"
            )
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self._max_sessions = max_sessions
        self._idle_timeout_s = idle_timeout_s
        self._clock = clock
        self._tracer = tracer
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._id_minter = id_minter
        self._checkpoint_store = checkpoint_store
        self._checkpoint_every = checkpoint_every
        self._sessions: Dict[str, _Entry] = {}
        self._next_id = 1
        self._requests = 0

    # -- time ---------------------------------------------------------------

    @property
    def clock(self) -> Optional[Clock]:
        """The injected time source (``None`` = logical clock)."""
        return self._clock

    def now(self) -> float:
        """Current time: the injected clock, or the logical request count."""
        if self._clock is not None:
            return self._clock()
        return float(self._requests)

    def tick(self) -> None:
        """Advance the logical clock; called once per handled request."""
        self._requests += 1

    # -- lifecycle ----------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The shared metrics registry."""
        return self._metrics

    @property
    def active_sessions(self) -> int:
        """Number of live sessions."""
        return len(self._sessions)

    def session_ids(self) -> Tuple[str, ...]:
        """Ids of every live session, in creation order."""
        return tuple(self._sessions)

    def open(
        self,
        config: Optional[SessionConfig] = None,
        protocol: Optional[int] = None,
    ) -> PhaseSession:
        """Create a session, enforcing the overload ceiling.

        ``protocol`` records the wire protocol version negotiated in
        ``hello`` (``None`` = latest); :meth:`protocol_of` answers it.

        Raises:
            OverloadedError: When the server is full even after evicting
                idle sessions.
        """
        session = PhaseSession(
            config,
            session_id=self._reserve_slot(),
            clock=self._clock,
            tracer=self._tracer,
            metrics=self._metrics,
        )
        return self._register(session, protocol)

    def restore(
        self,
        checkpoint: Payload,
        protocol: Optional[int] = None,
    ) -> PhaseSession:
        """Open a session from a checkpoint (same overload rules).

        Raises:
            ConfigurationError: On a malformed checkpoint.
            OverloadedError: When the server is full.
        """
        session = PhaseSession.from_snapshot(
            checkpoint,
            session_id=self._reserve_slot(),
            clock=self._clock,
            tracer=self._tracer,
            metrics=self._metrics,
        )
        return self._register(session, protocol)

    def restore_as(
        self,
        session_id: str,
        checkpoint: Payload,
        protocol: Optional[int] = None,
    ) -> PhaseSession:
        """Restore a checkpoint *under its original id* (recovery path).

        Unlike :meth:`restore`, which mints a fresh id, this re-opens
        the session as the same wire identity — the contract worker
        recovery and session migration depend on: clients keep talking
        to the id they opened.  The minting sequence is bumped past the
        adopted id so a later ``hello`` can never collide with it.

        Raises:
            ConfigurationError: On a malformed checkpoint, an empty id,
                or an id that is already live on this manager.
            OverloadedError: When the server is full.
        """
        if not session_id:
            raise ConfigurationError("session id must be a non-empty string")
        if session_id in self._sessions:
            raise ConfigurationError(
                f"session {session_id!r} is already live on this server; "
                "close it before restoring over it"
            )
        self._ensure_capacity()
        session = PhaseSession.from_snapshot(
            checkpoint,
            session_id=session_id,
            clock=self._clock,
            tracer=self._tracer,
            metrics=self._metrics,
        )
        match = _MINTED_ID_RE.match(session_id)
        if match is not None:
            self._next_id = max(self._next_id, int(match.group(1)) + 1)
        self._register(session, protocol)
        self._metrics.counter("serve.sessions_restored").inc()
        if self._tracer.enabled:
            self._tracer.emit(
                SessionRestored(
                    interval=self._requests,
                    session=session_id,
                    samples=session.samples,
                )
            )
        return session

    def _reserve_slot(self) -> str:
        """Sweep idle sessions, enforce the ceiling, mint the next id."""
        self._ensure_capacity()
        if self._id_minter is not None:
            session_id = self._id_minter(self._next_id)
        else:
            session_id = f"s{self._next_id}"
        self._next_id += 1
        return session_id

    def _ensure_capacity(self) -> None:
        """Sweep idle sessions, then enforce the live-session ceiling."""
        self.evict_idle()
        if len(self._sessions) >= self._max_sessions:
            raise OverloadedError(
                f"server is at its session ceiling ({self._max_sessions}); "
                "close a session or retry later"
            )

    def protocol_of(self, session_id: str) -> Optional[int]:
        """The protocol version negotiated for a live session.

        ``None`` means the session was opened without explicit
        negotiation (treated as the latest version by the dispatcher).

        Raises:
            UnknownSessionError: If the id names no live session.
        """
        entry = self._sessions.get(session_id)
        if entry is None:
            raise UnknownSessionError(
                f"unknown session {session_id!r} (closed, evicted or never "
                "opened)"
            )
        return entry.protocol

    def maybe_checkpoint(self, session_id: str) -> bool:
        """Persist ``session_id`` if it advanced a full cadence.

        Called by the wire dispatcher after every successful request
        that names a session; cheap when nothing is due (one dict
        lookup and an integer compare).  Returns whether a checkpoint
        was written.
        """
        store = self._checkpoint_store
        if store is None or self._checkpoint_every <= 0:
            return False
        entry = self._sessions.get(session_id)
        if entry is None:
            return False
        session = entry.session
        if session.samples - entry.checkpointed_samples < (
            self._checkpoint_every
        ):
            return False
        store.save(session_id, session.snapshot(), entry.protocol)
        entry.checkpointed_samples = session.samples
        self._metrics.counter("serve.checkpoints_written").inc()
        return True

    def _register(
        self, session: PhaseSession, protocol: Optional[int] = None
    ) -> PhaseSession:
        self._sessions[session.session_id] = _Entry(
            session, self.now(), protocol
        )
        if self._checkpoint_store is not None:
            # Initial checkpoint: from this moment the session survives
            # a worker death with a replay window of at most
            # checkpoint_every samples (plus any in-flight batch).
            self._checkpoint_store.save(
                session.session_id, session.snapshot(), protocol
            )
            self._metrics.counter("serve.checkpoints_written").inc()
        self._metrics.counter("serve.sessions_opened").inc()
        self._metrics.gauge("serve.sessions_active").set(
            float(len(self._sessions))
        )
        if self._tracer.enabled:
            self._tracer.emit(
                SessionOpened(
                    interval=self._requests,
                    session=session.session_id,
                    governor=session.config.governor,
                    policy=session.config.policy,
                )
            )
        return session

    def get(self, session_id: str) -> PhaseSession:
        """Look up a live session and refresh its idle timer.

        Raises:
            UnknownSessionError: If the id names no live session.
        """
        entry = self._sessions.get(session_id)
        if entry is None:
            raise UnknownSessionError(
                f"unknown session {session_id!r} (closed, evicted or never "
                "opened)"
            )
        entry.last_used = self.now()
        return entry.session

    def close(self, session_id: str, reason: str = "bye") -> PhaseSession:
        """Close a session explicitly.

        Raises:
            UnknownSessionError: If the id names no live session.
        """
        entry = self._sessions.pop(session_id, None)
        if entry is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        if (
            self._checkpoint_store is not None
            and reason != MIGRATED_CLOSE_REASON
        ):
            self._checkpoint_store.delete(session_id)
        self._note_closed(entry.session, reason)
        return entry.session

    def evict_idle(self) -> List[str]:
        """Close every session idle past the timeout; returns their ids."""
        if self._idle_timeout_s is None:
            return []
        now = self.now()
        expired = [
            session_id
            for session_id, entry in self._sessions.items()
            if now - entry.last_used > self._idle_timeout_s
        ]
        for session_id in expired:
            entry = self._sessions.pop(session_id)
            if self._checkpoint_store is not None:
                self._checkpoint_store.delete(session_id)
            self._metrics.counter("serve.sessions_evicted").inc()
            self._note_closed(entry.session, "evicted")
        return expired

    def _note_closed(self, session: PhaseSession, reason: str) -> None:
        self._metrics.counter("serve.sessions_closed").inc()
        self._metrics.gauge("serve.sessions_active").set(
            float(len(self._sessions))
        )
        if self._tracer.enabled:
            self._tracer.emit(
                SessionClosed(
                    interval=self._requests,
                    session=session.session_id,
                    reason=reason,
                    samples=session.samples,
                )
            )

    # -- observability ------------------------------------------------------

    def stats(self) -> Payload:
        """Server-level statistics (the session-less ``stats`` answer)."""
        return {
            "sessions_active": len(self._sessions),
            "max_sessions": self._max_sessions,
            "idle_timeout_s": self._idle_timeout_s,
            "requests": self._requests,
            "metrics": self._metrics.to_dict(),
        }
