"""Versioned line-delimited JSON wire protocol for the serving layer.

One request per line, one response per line, in order.  Every request
is a JSON object with an ``op`` field; every response carries ``ok``
(and, on failure, a stable ``error`` code plus a human ``message``).
The same dispatcher serves both frontends — stdio and TCP differ only
in transport.

Operations (protocol version 2; version 1 still negotiable in ``hello``):

=========  ==============================================================
``hello``  Open a session.  Optional ``protocol`` (any version in
           :data:`SUPPORTED_PROTOCOLS`; the response echoes the
           negotiated version) and any
           :class:`~repro.serve.session.SessionConfig` fields.
``sample`` Feed one interval: ``session``, ``interval``, ``mem_per_uop``
           and optional ``upc``.  Answers the classified phase, the
           predicted next phase, the recommended frequency, the degraded
           flag and whether the previous prediction hit.
``sample_batch`` (v2) Feed N ordered intervals in one round trip:
           ``session``, ``start_interval`` and ``samples`` — an array
           whose elements are each either a number (``mem_per_uop``) or
           a ``[mem_per_uop, upc]`` pair.  Answers ``outcomes``: one
           ``[interval, phase, predicted, frequency_mhz, degraded,
           hit]`` row per sample, bit-for-bit what N ``sample`` requests
           would have answered.  Validation is atomic: a malformed
           batch is rejected whole and the session is untouched.
``predict`` The standing prediction without feeding a sample.
``snapshot`` The session's lossless checkpoint (see
           :mod:`repro.serve.checkpoint`) plus the negotiated
           ``protocol`` version, so a restore elsewhere can preserve
           the session's protocol pinning.
``restore`` Open a session from a checkpoint payload.  By default a
           fresh id is minted; with an explicit ``session`` field the
           checkpoint is restored *under that id* (the recovery and
           migration path — the id must not be live), and an optional
           ``protocol`` field re-pins the negotiated version.
``stats``  Per-session (with ``session``) or server statistics.
``bye``    Close a session.  Optional ``reason`` is recorded in the
           ``session_closed`` trace event; the reserved reason
           ``migrated`` keeps the session's durable checkpoint (the
           migration target owns it now).
=========  ==============================================================

Error codes: ``bad_request``, ``unknown_session``, ``server_overloaded``,
``unsupported_protocol``, ``internal`` — plus ``worker_unavailable`` and
``worker_recovering``, emitted by the shard router
(:mod:`repro.serve.shard`) when the worker owning a session's shard has
died (permanently, or while its auto-restarted replacement is still
coming up; such error responses carry a boolean ``recovering`` detail).

The dispatcher also sweeps idle sessions once per handled request, so
``idle_timeout_s`` eviction fires under steady-state traffic, not only
when ``hello``/``restore`` reserve a slot.
"""

from __future__ import annotations

import json
import re
from typing import List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.serve.checkpoint import validate_checkpoint
from repro.serve.manager import (
    OverloadedError,
    SessionManager,
    UnknownSessionError,
)
from repro.serve.session import Payload, SessionConfig

#: Current (preferred) wire protocol version.
PROTOCOL_VERSION = 2

#: Versions ``hello`` accepts.  Version 1 is the PR 4 protocol without
#: ``sample_batch``; a v1 session is served exactly as before.
SUPPORTED_PROTOCOLS = (1, 2)

#: Hard per-request ceiling on ``sample_batch`` size (memory bound).
MAX_BATCH_SAMPLES = 4096

#: Server identification string sent in ``hello`` responses.
SERVER_NAME = "repro-serve"

#: Every error code the serve tier may put on the wire.  This is the
#: closed registry clients program against; ``repro analyze``'s
#: protocol-conformance check cross-references each code produced
#: anywhere in the serve package against it (and flags phantom codes
#: that are declared but never produced).
ERROR_CODES = (
    "bad_request",
    "unknown_session",
    "server_overloaded",
    "unsupported_protocol",
    "worker_unavailable",
    "worker_recovering",
    "internal",
)

#: Ids accepted in a restore-with-id request: conservative filesystem-
#: and log-safe charset, bounded length.  Server-minted ids (``s1``,
#: ``s17x3``) are a strict subset.
_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: ``SessionConfig`` fields accepted inline in a ``hello`` request.
_CONFIG_FIELDS = (
    "governor",
    "policy",
    "gphr_depth",
    "pht_entries",
    "window_size",
    "latency_budget_s",
    "cooldown",
)


class _ProtocolError(ReproError):
    """Internal: a request failure with a stable wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _error(code: str, message: str) -> Payload:
    return {"ok": False, "error": code, "message": message}


def _require(payload: Mapping[str, object], key: str) -> object:
    try:
        return payload[key]
    except KeyError:
        raise _ProtocolError(
            "bad_request", f"request is missing required field {key!r}"
        ) from None


def _require_str(payload: Mapping[str, object], key: str) -> str:
    value = _require(payload, key)
    if not isinstance(value, str):
        raise _ProtocolError(
            "bad_request", f"field {key!r} must be a string, got {value!r}"
        )
    return value


def _require_int(payload: Mapping[str, object], key: str) -> int:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _ProtocolError(
            "bad_request", f"field {key!r} must be an integer, got {value!r}"
        )
    return value


def _require_number(payload: Mapping[str, object], key: str) -> float:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _ProtocolError(
            "bad_request", f"field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def _optional_number(
    payload: Mapping[str, object], key: str, default: float
) -> float:
    if key not in payload:
        return default
    return _require_number(payload, key)


def handle_request(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    """Dispatch one already-parsed request; never raises.

    Every domain failure is mapped onto a stable error code so clients
    can branch without parsing messages.
    """
    manager.tick()
    # Sweep on request cadence: with constant traffic to live sessions
    # and no new opens, _reserve_slot() never runs, so this is the only
    # place abandoned sessions can be evicted on time.
    manager.evict_idle()
    clock = manager.clock
    started = clock() if clock is not None else None
    try:
        response = _dispatch(manager, payload)
    except _ProtocolError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error(error.code, str(error))
    except UnknownSessionError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error("unknown_session", str(error))
    except OverloadedError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error("server_overloaded", str(error))
    except ConfigurationError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error("bad_request", str(error))
    except Exception as error:  # pragma: no cover - defensive last resort
        manager.metrics.counter("serve.errors").inc()
        response = _error(
            "internal", f"{type(error).__name__}: {error}"
        )
    if started is not None and clock is not None:
        manager.metrics.histogram("serve.request_latency_s").observe(
            clock() - started
        )
    if response.get("ok"):
        # Cadence checkpointing rides the dispatcher: any successful op
        # that names a session (sample/sample_batch advance it; the
        # rest are free no-ops) may trigger a durable checkpoint.
        session_id = response.get("session")
        if isinstance(session_id, str):
            manager.maybe_checkpoint(session_id)
    return response


def _dispatch(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    op = _require_str(payload, "op")
    handler = _OPS.get(op)
    if handler is None:
        raise _ProtocolError(
            "bad_request", f"unknown op {op!r}; known: {sorted(_OPS)}"
        )
    return handler(manager, payload)


def _op_hello(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    version = payload.get("protocol", PROTOCOL_VERSION)
    if (
        isinstance(version, bool)
        or not isinstance(version, int)
        or version not in SUPPORTED_PROTOCOLS
    ):
        raise _ProtocolError(
            "unsupported_protocol",
            f"protocol {version!r} is not supported; this server speaks "
            f"versions {SUPPORTED_PROTOCOLS}",
        )
    config_payload = {
        key: payload[key] for key in _CONFIG_FIELDS if key in payload
    }
    unexpected = set(payload) - set(_CONFIG_FIELDS) - {"op", "protocol"}
    if unexpected:
        raise _ProtocolError(
            "bad_request", f"unknown hello fields: {sorted(unexpected)}"
        )
    config = SessionConfig.from_payload(config_payload)
    session = manager.open(config, protocol=version)
    return {
        "ok": True,
        "op": "hello",
        "protocol": version,
        "server": SERVER_NAME,
        "session": session.session_id,
        "governor": config.governor,
        "policy": config.policy,
    }


def _op_sample(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session = manager.get(_require_str(payload, "session"))
    interval = _require_int(payload, "interval")
    mem_per_uop = _require_number(payload, "mem_per_uop")
    upc = _optional_number(payload, "upc", 0.0)
    outcome = session.feed(interval, mem_per_uop, upc)
    return {
        "ok": True,
        "op": "sample",
        "session": session.session_id,
        "interval": outcome.interval,
        "phase": outcome.actual_phase,
        "predicted": outcome.predicted_phase,
        "frequency_mhz": outcome.frequency_mhz,
        "degraded": outcome.degraded,
        "hit": outcome.hit,
    }


def _parse_batch_sample(element: object, index: int) -> Tuple[float, float]:
    """Normalize one ``samples`` array element to ``(mem_per_uop, upc)``."""
    if isinstance(element, bool):
        raise _ProtocolError(
            "bad_request",
            f"batch sample {index} must be a number or a "
            f"[mem_per_uop, upc] pair, got {element!r}",
        )
    if isinstance(element, (int, float)):
        return float(element), 0.0
    if isinstance(element, list) and 1 <= len(element) <= 2:
        values: List[float] = []
        for part in element:
            if isinstance(part, bool) or not isinstance(part, (int, float)):
                raise _ProtocolError(
                    "bad_request",
                    f"batch sample {index} values must be numbers, "
                    f"got {part!r}",
                )
            values.append(float(part))
        return values[0], (values[1] if len(values) == 2 else 0.0)
    raise _ProtocolError(
        "bad_request",
        f"batch sample {index} must be a number or a "
        f"[mem_per_uop, upc] pair, got {element!r}",
    )


def _op_sample_batch(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session_id = _require_str(payload, "session")
    session = manager.get(session_id)
    negotiated = manager.protocol_of(session_id)
    if negotiated is not None and negotiated < 2:
        raise _ProtocolError(
            "unsupported_protocol",
            "sample_batch requires protocol >= 2; this session negotiated "
            f"protocol {negotiated} in hello",
        )
    start_interval = _require_int(payload, "start_interval")
    raw = _require(payload, "samples")
    if not isinstance(raw, list) or not raw:
        raise _ProtocolError(
            "bad_request", "field 'samples' must be a non-empty array"
        )
    if len(raw) > MAX_BATCH_SAMPLES:
        raise _ProtocolError(
            "bad_request",
            f"batch of {len(raw)} samples exceeds the per-request ceiling "
            f"of {MAX_BATCH_SAMPLES}; split it",
        )
    samples = [
        _parse_batch_sample(element, index) for index, element in enumerate(raw)
    ]
    outcomes = session.feed_batch(start_interval, samples)
    return {
        "ok": True,
        "op": "sample_batch",
        "session": session.session_id,
        "start_interval": start_interval,
        "count": len(outcomes),
        # Straight from the columnar container — the fast path never
        # materializes per-sample outcome objects.
        "outcomes": outcomes.rows(),
    }


def _op_predict(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session = manager.get(_require_str(payload, "session"))
    predicted, frequency_mhz = session.predict()
    return {
        "ok": True,
        "op": "predict",
        "session": session.session_id,
        "predicted": predicted,
        "frequency_mhz": frequency_mhz,
    }


def _op_snapshot(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session_id = _require_str(payload, "session")
    session = manager.get(session_id)
    return {
        "ok": True,
        "op": "snapshot",
        "session": session.session_id,
        # The negotiated protocol travels with the checkpoint so a
        # restore on another worker preserves the session's pinning.
        "protocol": manager.protocol_of(session_id),
        "checkpoint": session.snapshot(),
    }


def _restore_protocol(payload: Mapping[str, object]) -> Optional[int]:
    """The optional ``protocol`` re-pin of a restore request."""
    if "protocol" not in payload:
        return None
    version = _require_int(payload, "protocol")
    if version not in SUPPORTED_PROTOCOLS:
        raise _ProtocolError(
            "unsupported_protocol",
            f"protocol {version!r} is not supported; this server speaks "
            f"versions {SUPPORTED_PROTOCOLS}",
        )
    return version


def _op_restore(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    checkpoint = _require(payload, "checkpoint")
    if not isinstance(checkpoint, dict):
        raise _ProtocolError(
            "bad_request", "field 'checkpoint' must be an object"
        )
    validate_checkpoint(checkpoint)
    version = _restore_protocol(payload)
    if "session" in payload:
        session_id = _require_str(payload, "session")
        if _SESSION_ID_RE.match(session_id) is None:
            raise _ProtocolError(
                "bad_request",
                f"invalid session id {session_id!r}: expected 1-64 "
                "characters from [A-Za-z0-9_.-], starting alphanumeric",
            )
        session = manager.restore_as(session_id, checkpoint, version)
    else:
        session = manager.restore(checkpoint, version)
    return {
        "ok": True,
        "op": "restore",
        "session": session.session_id,
        "samples": session.samples,
    }


def _op_stats(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    if "session" in payload:
        session = manager.get(_require_str(payload, "session"))
        return {"ok": True, "op": "stats", "stats": session.stats()}
    return {"ok": True, "op": "stats", "stats": manager.stats()}


def _op_bye(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    reason = "bye"
    if "reason" in payload:
        reason = _require_str(payload, "reason")
        if not reason or len(reason) > 64:
            raise _ProtocolError(
                "bad_request",
                "field 'reason' must be a non-empty string of at most "
                "64 characters",
            )
    session = manager.close(_require_str(payload, "session"), reason=reason)
    return {
        "ok": True,
        "op": "bye",
        "session": session.session_id,
        "samples": session.samples,
    }


_OPS = {
    "hello": _op_hello,
    "sample": _op_sample,
    "sample_batch": _op_sample_batch,
    "predict": _op_predict,
    "snapshot": _op_snapshot,
    "restore": _op_restore,
    "stats": _op_stats,
    "bye": _op_bye,
}


def handle_line(manager: SessionManager, line: str) -> str:
    """Parse one request line, dispatch it, serialize the response.

    Transport-agnostic: both the stdio and the TCP frontend feed raw
    lines through here.  Malformed JSON never kills the connection — it
    answers a ``bad_request`` error like any other failure.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        manager.tick()
        manager.metrics.counter("serve.errors").inc()
        return _serialize(_error("bad_request", f"invalid JSON: {exc}"))
    if not isinstance(payload, dict):
        manager.tick()
        manager.metrics.counter("serve.errors").inc()
        return _serialize(
            _error("bad_request", "request must be a JSON object")
        )
    return _serialize(handle_request(manager, payload))


def _serialize(response: Payload) -> str:
    return json.dumps(response, sort_keys=False, separators=(",", ":"))


def error_response(code: str, message: str) -> Payload:
    """A failure payload with a stable error code (router/frontend use)."""
    return _error(code, message)


def serialize_response(response: Payload) -> str:
    """Serialize a response payload to its single wire line."""
    return _serialize(response)


def parse_response(line: str) -> Tuple[bool, Payload]:
    """Client-side helper: parse a response line into ``(ok, payload)``.

    Raises:
        ConfigurationError: On malformed response JSON.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(f"invalid response JSON: {exc}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ConfigurationError(f"malformed response: {line!r}")
    return bool(payload["ok"]), payload
