"""Versioned line-delimited JSON wire protocol for the serving layer.

One request per line, one response per line, in order.  Every request
is a JSON object with an ``op`` field; every response carries ``ok``
(and, on failure, a stable ``error`` code plus a human ``message``).
The same dispatcher serves both frontends — stdio and TCP differ only
in transport.

Operations (protocol version 1):

=========  ==============================================================
``hello``  Open a session.  Optional ``protocol`` (must be 1 when given)
           and any :class:`~repro.serve.session.SessionConfig` fields.
``sample`` Feed one interval: ``session``, ``interval``, ``mem_per_uop``
           and optional ``upc``.  Answers the classified phase, the
           predicted next phase, the recommended frequency, the degraded
           flag and whether the previous prediction hit.
``predict`` The standing prediction without feeding a sample.
``snapshot`` The session's lossless checkpoint (see
           :mod:`repro.serve.checkpoint`).
``restore`` Open a *new* session from a checkpoint payload.
``stats``  Per-session (with ``session``) or server statistics.
``bye``    Close a session.
=========  ==============================================================

Error codes: ``bad_request``, ``unknown_session``, ``server_overloaded``,
``unsupported_protocol``, ``internal``.
"""

from __future__ import annotations

import json
from typing import Mapping, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.serve.checkpoint import validate_checkpoint
from repro.serve.manager import (
    OverloadedError,
    SessionManager,
    UnknownSessionError,
)
from repro.serve.session import Payload, SessionConfig

#: Wire protocol version; ``hello`` rejects anything else.
PROTOCOL_VERSION = 1

#: Server identification string sent in ``hello`` responses.
SERVER_NAME = "repro-serve"

#: ``SessionConfig`` fields accepted inline in a ``hello`` request.
_CONFIG_FIELDS = (
    "governor",
    "policy",
    "gphr_depth",
    "pht_entries",
    "window_size",
    "latency_budget_s",
    "cooldown",
)


class _ProtocolError(ReproError):
    """Internal: a request failure with a stable wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _error(code: str, message: str) -> Payload:
    return {"ok": False, "error": code, "message": message}


def _require(payload: Mapping[str, object], key: str) -> object:
    try:
        return payload[key]
    except KeyError:
        raise _ProtocolError(
            "bad_request", f"request is missing required field {key!r}"
        ) from None


def _require_str(payload: Mapping[str, object], key: str) -> str:
    value = _require(payload, key)
    if not isinstance(value, str):
        raise _ProtocolError(
            "bad_request", f"field {key!r} must be a string, got {value!r}"
        )
    return value


def _require_int(payload: Mapping[str, object], key: str) -> int:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _ProtocolError(
            "bad_request", f"field {key!r} must be an integer, got {value!r}"
        )
    return value


def _require_number(payload: Mapping[str, object], key: str) -> float:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _ProtocolError(
            "bad_request", f"field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def _optional_number(
    payload: Mapping[str, object], key: str, default: float
) -> float:
    if key not in payload:
        return default
    return _require_number(payload, key)


def handle_request(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    """Dispatch one already-parsed request; never raises.

    Every domain failure is mapped onto a stable error code so clients
    can branch without parsing messages.
    """
    manager.tick()
    clock = manager.clock
    started = clock() if clock is not None else None
    try:
        response = _dispatch(manager, payload)
    except _ProtocolError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error(error.code, str(error))
    except UnknownSessionError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error("unknown_session", str(error))
    except OverloadedError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error("server_overloaded", str(error))
    except ConfigurationError as error:
        manager.metrics.counter("serve.errors").inc()
        response = _error("bad_request", str(error))
    except Exception as error:  # pragma: no cover - defensive last resort
        manager.metrics.counter("serve.errors").inc()
        response = _error(
            "internal", f"{type(error).__name__}: {error}"
        )
    if started is not None and clock is not None:
        manager.metrics.histogram("serve.request_latency_s").observe(
            clock() - started
        )
    return response


def _dispatch(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    op = _require_str(payload, "op")
    handler = _OPS.get(op)
    if handler is None:
        raise _ProtocolError(
            "bad_request", f"unknown op {op!r}; known: {sorted(_OPS)}"
        )
    return handler(manager, payload)


def _op_hello(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    version = payload.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise _ProtocolError(
            "unsupported_protocol",
            f"protocol {version!r} is not supported; this server speaks "
            f"version {PROTOCOL_VERSION}",
        )
    config_payload = {
        key: payload[key] for key in _CONFIG_FIELDS if key in payload
    }
    unexpected = set(payload) - set(_CONFIG_FIELDS) - {"op", "protocol"}
    if unexpected:
        raise _ProtocolError(
            "bad_request", f"unknown hello fields: {sorted(unexpected)}"
        )
    config = SessionConfig.from_payload(config_payload)
    session = manager.open(config)
    return {
        "ok": True,
        "op": "hello",
        "protocol": PROTOCOL_VERSION,
        "server": SERVER_NAME,
        "session": session.session_id,
        "governor": config.governor,
        "policy": config.policy,
    }


def _op_sample(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session = manager.get(_require_str(payload, "session"))
    interval = _require_int(payload, "interval")
    mem_per_uop = _require_number(payload, "mem_per_uop")
    upc = _optional_number(payload, "upc", 0.0)
    outcome = session.feed(interval, mem_per_uop, upc)
    return {
        "ok": True,
        "op": "sample",
        "session": session.session_id,
        "interval": outcome.interval,
        "phase": outcome.actual_phase,
        "predicted": outcome.predicted_phase,
        "frequency_mhz": outcome.frequency_mhz,
        "degraded": outcome.degraded,
        "hit": outcome.hit,
    }


def _op_predict(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session = manager.get(_require_str(payload, "session"))
    predicted, frequency_mhz = session.predict()
    return {
        "ok": True,
        "op": "predict",
        "session": session.session_id,
        "predicted": predicted,
        "frequency_mhz": frequency_mhz,
    }


def _op_snapshot(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session = manager.get(_require_str(payload, "session"))
    return {
        "ok": True,
        "op": "snapshot",
        "session": session.session_id,
        "checkpoint": session.snapshot(),
    }


def _op_restore(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    checkpoint = _require(payload, "checkpoint")
    if not isinstance(checkpoint, dict):
        raise _ProtocolError(
            "bad_request", "field 'checkpoint' must be an object"
        )
    validate_checkpoint(checkpoint)
    session = manager.restore(checkpoint)
    return {
        "ok": True,
        "op": "restore",
        "session": session.session_id,
        "samples": session.samples,
    }


def _op_stats(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    if "session" in payload:
        session = manager.get(_require_str(payload, "session"))
        return {"ok": True, "op": "stats", "stats": session.stats()}
    return {"ok": True, "op": "stats", "stats": manager.stats()}


def _op_bye(
    manager: SessionManager, payload: Mapping[str, object]
) -> Payload:
    session = manager.close(_require_str(payload, "session"))
    return {
        "ok": True,
        "op": "bye",
        "session": session.session_id,
        "samples": session.samples,
    }


_OPS = {
    "hello": _op_hello,
    "sample": _op_sample,
    "predict": _op_predict,
    "snapshot": _op_snapshot,
    "restore": _op_restore,
    "stats": _op_stats,
    "bye": _op_bye,
}


def handle_line(manager: SessionManager, line: str) -> str:
    """Parse one request line, dispatch it, serialize the response.

    Transport-agnostic: both the stdio and the TCP frontend feed raw
    lines through here.  Malformed JSON never kills the connection — it
    answers a ``bad_request`` error like any other failure.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        manager.tick()
        manager.metrics.counter("serve.errors").inc()
        return _serialize(_error("bad_request", f"invalid JSON: {exc}"))
    if not isinstance(payload, dict):
        manager.tick()
        manager.metrics.counter("serve.errors").inc()
        return _serialize(
            _error("bad_request", "request must be a JSON object")
        )
    return _serialize(handle_request(manager, payload))


def _serialize(response: Payload) -> str:
    return json.dumps(response, sort_keys=False, separators=(",", ":"))


def parse_response(line: str) -> Tuple[bool, Payload]:
    """Client-side helper: parse a response line into ``(ok, payload)``.

    Raises:
        ConfigurationError: On malformed response JSON.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(f"invalid response JSON: {exc}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ConfigurationError(f"malformed response: {line!r}")
    return bool(payload["ok"]), payload
